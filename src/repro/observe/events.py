"""The event core of ``repro.observe``: a low-overhead, thread-safe
:class:`Recorder` of spans, instants and counters.

Design constraints (this sits on the engine's hot path):

- **One branch when off.**  Every instrumentation site in the codebase
  is gated by a single ``if RECORDER.enabled:`` attribute check — the
  disabled dispatch path pays one attribute load and one branch, nothing
  else (verified by the instrumentation-overhead row in
  ``benchmarks/test_dispatch_overhead.py``).
- **Lock-free event emission.**  Events are tuples appended to a
  ``collections.deque(maxlen=capacity)`` — a *ring buffer*: appends are
  atomic under the GIL (no lock on the emit path, concurrent emitters
  never corrupt the buffer) and once full the oldest events fall off
  instead of growing memory under sustained tracing.
- **Counters stay live.**  Metric counters (`plan-cache hits, feed
  donations, serving requests`) accumulate whether or not event
  recording is enabled, behind a small lock — they are incremented at
  per-call/per-request frequency, never per step, and feed the
  ``GET /v1/metrics`` surface of a running server.

Event representation — one tuple per event, matching the Chrome
trace-event phases the exporter emits::

    (phase, name, category, start, duration_or_value, tid, pid, args)

with ``phase`` one of ``"X"`` (complete span, ``duration`` seconds),
``"i"`` (instant, duration 0) or ``"C"`` (counter sample, the field
carries the *value*).  Timestamps are ``time.perf_counter()`` seconds —
monotonic, comparable within one process.

Processes created via ``fork`` inherit the parent's buffer; an
``os.register_at_fork`` hook clears the child's copy and re-stamps the
cached pid, so a fleet worker's recorder only ever holds its own events.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

__all__ = ["Recorder", "RECORDER", "enable", "disable", "enabled",
           "counter", "counters", "clear_counters"]

_perf = time.perf_counter

#: Default ring capacity: ~64k events comfortably holds several seconds
#: of step-level tracing while bounding memory to a few MB.
DEFAULT_CAPACITY = 65536

_PID = os.getpid()


def _refresh_pid():
    global _PID
    _PID = os.getpid()


class _Span:
    """Context-manager form of a complete span (enabled path only)."""

    __slots__ = ("_recorder", "_name", "_cat", "_args", "_t0")

    def __init__(self, recorder, name, cat, args):
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        self._t0 = _perf()
        return self

    def __exit__(self, exc_type, exc, tb):
        t0 = self._t0
        self._recorder._events.append(
            ("X", self._name, self._cat, t0, _perf() - t0,
             threading.get_ident(), _PID, self._args))
        return False


class Recorder:
    """A thread-safe ring buffer of trace events plus live counters.

    The process-global instance is :data:`RECORDER`; instrumentation
    sites read its ``enabled`` attribute (a plain bool — one branch)
    before doing any tracing work.  Independent recorders can be
    constructed for tests.
    """

    __slots__ = ("enabled", "capacity", "_events", "_counters",
                 "_counter_lock")

    def __init__(self, capacity=DEFAULT_CAPACITY):
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = False
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self._counters = {}
        self._counter_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def enable(self):
        """Start recording events (counters were always live)."""
        self.enabled = True

    def disable(self):
        self.enabled = False

    def clear(self):
        """Drop recorded events (counters are kept; see
        :meth:`clear_counters`)."""
        self._events.clear()

    # -- event emission (callers gate on ``enabled`` themselves) -----------

    def span(self, name, cat="", args=None):
        """A ``with``-block complete span.  Only call when enabled —
        the site's ``if recorder.enabled`` branch IS the off switch."""
        return _Span(self, name, cat, args)

    def begin(self):
        """Span start token (a perf-counter stamp) for the hand-rolled
        emit sites that cannot afford a context manager per step."""
        return _perf()

    def end(self, name, cat, t0, args=None):
        """Complete the span opened at ``t0``."""
        self._events.append(
            ("X", name, cat, t0, _perf() - t0,
             threading.get_ident(), _PID, args))

    def instant(self, name, cat="", args=None):
        self._events.append(
            ("i", name, cat, _perf(), 0.0,
             threading.get_ident(), _PID, args))

    # -- counters (always live) --------------------------------------------

    def counter(self, name, value=1):
        """Add ``value`` to the live metric ``name``.

        Counters accumulate regardless of ``enabled`` (they feed
        ``/v1/metrics``); when event recording is on, each increment
        additionally lands a ``"C"`` sample in the ring so counter
        series show up on the trace timeline.
        """
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + value
        if self.enabled:
            self._events.append(
                ("C", name, "counter", _perf(), value,
                 threading.get_ident(), _PID, None))

    def counters(self):
        """A snapshot dict of every live counter."""
        with self._counter_lock:
            return dict(self._counters)

    def clear_counters(self):
        with self._counter_lock:
            self._counters.clear()

    # -- reading -----------------------------------------------------------

    def events(self, since=None):
        """A snapshot list of recorded events (oldest first).

        ``since``: only events whose start stamp is ``>= since`` (a
        value previously returned by :meth:`begin` /
        ``time.perf_counter()``).
        """
        snapshot = list(self._events)
        if since is None:
            return snapshot
        return [e for e in snapshot if e[3] >= since]

    def __len__(self):
        return len(self._events)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return (f"<Recorder {state} events={len(self._events)}"
                f"/{self.capacity} counters={len(self._counters)}>")


#: The process-global recorder every built-in instrumentation site uses.
RECORDER = Recorder()


def enable():
    """Enable event recording on the global recorder."""
    RECORDER.enable()


def disable():
    RECORDER.disable()


def enabled():
    """Whether the global recorder is currently recording events."""
    return RECORDER.enabled


def counter(name, value=1):
    """Increment a live metric on the global recorder."""
    RECORDER.counter(name, value)


def counters():
    """Snapshot of the global recorder's live counters."""
    return RECORDER.counters()


def clear_counters():
    RECORDER.clear_counters()


def _after_fork_in_child():
    # A forked worker starts with an empty buffer, zeroed counters, its
    # own pid stamp and recording off — parent events/counts must not
    # leak into a child's export (a fleet would merge them N times).
    _refresh_pid()
    RECORDER._events.clear()
    # Fresh lock, not an acquire: a parent thread could have held the
    # counter lock at fork time, leaving the child's copy locked forever.
    RECORDER._counter_lock = threading.Lock()
    RECORDER._counters = {}
    RECORDER.enabled = False


os.register_at_fork(after_in_child=_after_fork_in_child)
