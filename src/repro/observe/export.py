"""Exporters for recorded events: Chrome trace-event JSON and flat stats.

:func:`chrome_trace` produces the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON object that ``chrome://tracing`` and `Perfetto <https://ui.
perfetto.dev>`_ load directly:

- ``"X"`` complete events carry ``ts``/``dur`` in microseconds;
- ``"i"`` instants and ``"C"`` counter samples ride along;
- ``"M"`` metadata events name each process and thread, so a trace
  merged from fleet workers shows one labelled track per worker process
  (pid) and per emitting thread (tid).

Timestamps are rebased to the earliest event in the export (Chrome's
viewer is happiest near zero) but keep their relative spacing, so
events recorded by different threads of one process stay aligned.
"""

from __future__ import annotations

import json

__all__ = ["chrome_trace", "save_chrome_trace", "stats_summary"]


def chrome_trace(events, process_names=None, counters=None):
    """Build a Chrome trace-event JSON object from recorder events.

    Args:
      events: an iterable of recorder event tuples
        (``(phase, name, cat, start, dur_or_value, tid, pid, args)``).
      process_names: optional ``{pid: label}`` mapping emitted as
        ``process_name`` metadata (fleet exports label each worker).
      counters: optional final counter snapshot; emitted as one ``"C"``
        sample per counter at the end of the trace so the totals are
        visible even when individual increments predate the ring.

    Returns:
      A JSON-serializable dict: ``{"traceEvents": [...],
      "displayTimeUnit": "ms"}``.
    """
    events = list(events)
    t_zero = min((e[3] for e in events), default=0.0)
    trace = []
    seen_procs = {}
    seen_threads = set()
    for phase, name, cat, start, dur_or_value, tid, pid, args in events:
        ts = (start - t_zero) * 1e6
        entry = {
            "name": name,
            "cat": cat or "repro",
            "ph": phase,
            "ts": round(ts, 3),
            "pid": pid,
            "tid": tid,
        }
        if phase == "X":
            entry["dur"] = round(dur_or_value * 1e6, 3)
        elif phase == "C":
            entry["args"] = {"value": dur_or_value}
        elif phase == "i":
            entry["s"] = "t"  # thread-scoped instant
        if args:
            entry.setdefault("args", {}).update(args)
        trace.append(entry)
        seen_procs.setdefault(pid, None)
        seen_threads.add((pid, tid))

    meta = []
    names = dict(process_names or {})
    for pid in sorted(seen_procs):
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": names.get(pid, f"repro pid {pid}")},
        })
    for pid, tid in sorted(seen_threads):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"thread {tid}"},
        })

    if counters:
        end_ts = max(
            ((e[3] - t_zero) + (e[4] if e[0] == "X" else 0.0)
             for e in events), default=0.0) * 1e6
        pid = events[-1][6] if events else 0
        for name in sorted(counters):
            trace.append({
                "name": name, "cat": "counter", "ph": "C",
                "ts": round(end_ts, 3), "pid": pid, "tid": 0,
                "args": {"value": counters[name]},
            })

    return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}


def save_chrome_trace(path, events, process_names=None, counters=None):
    """Write :func:`chrome_trace` output to ``path`` as JSON; returns
    the path (load the file in ``chrome://tracing`` or Perfetto)."""
    doc = chrome_trace(events, process_names=process_names,
                       counters=counters)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path


def stats_summary(events):
    """A flat per-name summary of the span events in ``events``.

    Returns:
      ``{name: {"count", "total_s", "mean_s", "max_s"}}`` over ``"X"``
      events — the quick textual answer to "where did the time go"
      without loading a trace viewer.
    """
    summary = {}
    for phase, name, _cat, _start, dur, _tid, _pid, _args in events:
        if phase != "X":
            continue
        entry = summary.get(name)
        if entry is None:
            entry = summary[name] = {
                "count": 0, "total_s": 0.0, "max_s": 0.0}
        entry["count"] += 1
        entry["total_s"] += dur
        if dur > entry["max_s"]:
            entry["max_s"] = dur
    for entry in summary.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return summary
