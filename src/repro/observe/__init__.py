"""``repro.observe``: cross-layer tracing and metrics.

One observability surface over every layer of the stack:

- the **runtime engine** emits per-step kernel spans, per-wavefront
  level spans and plan/donation counters;
- the **function layer** emits trace/retrace/cache-lookup spans keyed
  by input signature;
- **blocks** emit per-block worker-task spans (one track per pool
  thread in the trace viewer);
- **serving** emits per-request spans and batch-coalesce instants, and
  every :class:`~repro.serving.ModelServer` (and fleet worker) serves
  the live counter snapshot at ``GET /v1/metrics``.

The core is a process-global ring-buffer :class:`Recorder` whose
disabled path costs a single branch — leaving it off is free, and
:func:`profile` turns it on for exactly one ``with`` block::

    with repro.observe.profile() as timeline:
        traced_fn(x, w)

    for name, total, count in timeline.top_kernels(5):
        print(f"{name:24s} {total * 1e3:8.3f} ms  x{count}")
    timeline.save_chrome_trace("trace.json")   # chrome://tracing

Counters are always live (they are incremented at call/request
frequency, never per step): :func:`counters` snapshots them in-process
and ``GET /v1/metrics`` serves them — fleet-merged — over HTTP.
"""

from .events import (
    RECORDER,
    Recorder,
    clear_counters,
    counter,
    counters,
    disable,
    enable,
    enabled,
)
from .export import chrome_trace, save_chrome_trace, stats_summary
from .profile import Span, Timeline, profile

__all__ = [
    "RECORDER",
    "Recorder",
    "Span",
    "Timeline",
    "chrome_trace",
    "clear_counters",
    "counter",
    "counters",
    "disable",
    "enable",
    "enabled",
    "profile",
    "save_chrome_trace",
    "stats_summary",
]
