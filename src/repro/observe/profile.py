"""``repro.observe.profile()``: the user-facing tracing entry point.

::

    with repro.observe.profile() as timeline:
        fn(x, w)                      # any instrumented work

    timeline.spans                    # every recorded span
    timeline.top_kernels(5)           # hottest plan steps by total time
    timeline.total_time("MatMul_1")   # summed duration of one span name
    timeline.save_chrome_trace("trace.json")   # -> chrome://tracing

The context manager enables the process-global recorder on entry and
disables it on exit (restoring the previous state, so nested profiles
compose); the returned :class:`Timeline` holds only the events recorded
*inside* the block.
"""

from __future__ import annotations

from collections import namedtuple

from . import export as export_lib
from .events import RECORDER

__all__ = ["Span", "Timeline", "profile"]


#: One recorded span, durations in seconds.
Span = namedtuple("Span", ["name", "cat", "start", "duration", "tid",
                           "pid", "args"])


class Timeline:
    """A queryable view over the events one :func:`profile` recorded."""

    def __init__(self, events=(), counters=None):
        self._events = list(events)
        self._counters = dict(counters or {})

    # -- raw access --------------------------------------------------------

    @property
    def events(self):
        """The raw recorder event tuples, oldest first."""
        return list(self._events)

    @property
    def counters(self):
        """Counter snapshot deltas accumulated during the profile."""
        return dict(self._counters)

    @property
    def spans(self):
        """Every complete span, as :class:`Span` tuples."""
        return [
            Span(name, cat, start, dur, tid, pid, args)
            for phase, name, cat, start, dur, tid, pid, args in self._events
            if phase == "X"
        ]

    def query(self, name=None, cat=None):
        """Spans filtered by exact ``name`` and/or ``cat``."""
        return [
            s for s in self.spans
            if (name is None or s.name == name)
            and (cat is None or s.cat == cat)
        ]

    # -- aggregation -------------------------------------------------------

    def total_time(self, name=None, cat=None):
        """Summed duration (seconds) of the matching spans."""
        return sum(s.duration for s in self.query(name=name, cat=cat))

    def self_times(self):
        """Per-span *self* time: duration minus enclosed child spans.

        Nesting is computed per (pid, tid) from the time intervals —
        a span is a child of the innermost same-thread span whose
        interval contains it.  Returns ``[(Span, self_seconds), ...]``
        in start order.
        """
        by_thread = {}
        for s in self.spans:
            by_thread.setdefault((s.pid, s.tid), []).append(s)
        out = []
        for spans in by_thread.values():
            spans.sort(key=lambda s: (s.start, -s.duration))
            stack = []  # (span, accumulated child time)
            for s in spans:
                while stack and s.start >= (stack[-1][0].start
                                            + stack[-1][0].duration):
                    parent, child_time = stack.pop()
                    out.append((parent, max(0.0,
                                            parent.duration - child_time)))
                if stack:
                    stack[-1][1] += s.duration
                stack.append([s, 0.0])
            while stack:
                parent, child_time = stack.pop()
                out.append((parent, max(0.0, parent.duration - child_time)))
        out.sort(key=lambda pair: pair[0].start)
        return [(s, st) for s, st in out]

    def top_kernels(self, k=10, cat="step"):
        """The ``k`` hottest span names of ``cat`` by total time.

        Defaults to the runtime engine's per-step kernel spans.  Returns
        ``[(name, total_seconds, count), ...]``, hottest first.
        """
        totals = {}
        for s in self.spans:
            if cat is not None and s.cat != cat:
                continue
            total, count = totals.get(s.name, (0.0, 0))
            totals[s.name] = (total + s.duration, count + 1)
        ranked = sorted(
            ((name, total, count) for name, (total, count) in totals.items()),
            key=lambda row: -row[1])
        return ranked[:k]

    def summary(self):
        """Flat per-name stats (see :func:`repro.observe.stats_summary`)."""
        return export_lib.stats_summary(self._events)

    # -- export ------------------------------------------------------------

    def chrome_trace(self, process_names=None):
        """This timeline as a Chrome trace-event JSON object."""
        return export_lib.chrome_trace(
            self._events, process_names=process_names,
            counters=self._counters)

    def save_chrome_trace(self, path, process_names=None):
        """Write the Chrome trace JSON to ``path``; returns the path."""
        return export_lib.save_chrome_trace(
            path, self._events, process_names=process_names,
            counters=self._counters)

    def __len__(self):
        return len(self._events)

    def __repr__(self):
        return (f"<Timeline events={len(self._events)} "
                f"spans={sum(1 for e in self._events if e[0] == 'X')}>")


class _Profile:
    """The ``with repro.observe.profile()`` context manager."""

    def __init__(self, recorder=None):
        self._recorder = recorder if recorder is not None else RECORDER
        self.timeline = Timeline()

    def __enter__(self):
        rec = self._recorder
        self._was_enabled = rec.enabled
        self._t0 = rec.begin()
        self._counters0 = rec.counters()
        rec.enable()
        return self.timeline

    def __exit__(self, exc_type, exc, tb):
        rec = self._recorder
        rec.enabled = self._was_enabled
        deltas = {}
        before = self._counters0
        for name, value in rec.counters().items():
            delta = value - before.get(name, 0)
            if delta:
                deltas[name] = delta
        self.timeline._events = rec.events(since=self._t0)
        self.timeline._counters = deltas
        return False


def profile(recorder=None):
    """Record instrumented work into a :class:`Timeline`.

    Enables the (global, unless ``recorder`` is given) recorder for the
    duration of the ``with`` block; the yielded :class:`Timeline` is
    populated when the block exits — query it *after* the ``with``.
    """
    return _Profile(recorder)
