"""Block-partitioned tensors with parallel per-block dispatch.

A :class:`BlockArray` is a dense tensor cut into a grid of contiguous
blocks (:class:`BlockGrid`).  Ops on block arrays dispatch one registry
kernel per block — independent blocks fan out on a
:class:`BlockScheduler` thread pool — and every accumulation (matmul
inner products, reductions, gradient all-reduce) combines partials with
a *fixed pairwise tree*, so results are bit-identical to the dense
computation regardless of worker count.

Two ways in:

- **Eager**: ``repro.blocks.matmul(a, b)``, operators on
  :class:`BlockArray`, reductions, ``concat`` — all eager NumPy-kernel
  dispatch, blocked.
- **Staged**: pass a :class:`BlockArray` to a ``@repro.function`` — the
  traced graph is *lowered* to per-block steps and executed
  level-parallel by the runtime engine (``num_workers`` on the
  decorator sizes the pool).

:class:`DataParallelTrainer` closes the loop for training: batch
shards along axis 0, per-shard tape gradients, tree all-reduce.
"""

from .array import BlockArray
from .data_parallel import DataParallelTrainer
from .grid import BlockGrid
from .lowering import lower_blocked_graph
from .ops import (
    add,
    concat,
    divide,
    equal,
    greater,
    greater_equal,
    less,
    less_equal,
    matmul,
    maximum,
    minimum,
    multiply,
    not_equal,
    pair_tree,
    reduce_max,
    reduce_mean,
    reduce_min,
    reduce_sum,
    subtract,
    transpose,
    where,
)
from .scheduler import BlockScheduler
from .spec import BlockSpec

__all__ = [
    "BlockArray",
    "BlockGrid",
    "BlockScheduler",
    "BlockSpec",
    "DataParallelTrainer",
    "add",
    "concat",
    "divide",
    "equal",
    "greater",
    "greater_equal",
    "less",
    "less_equal",
    "lower_blocked_graph",
    "matmul",
    "maximum",
    "minimum",
    "multiply",
    "not_equal",
    "pair_tree",
    "reduce_max",
    "reduce_mean",
    "reduce_min",
    "reduce_sum",
    "subtract",
    "transpose",
    "where",
]
