"""Data-parallel training over block shards of the batch dimension.

:class:`DataParallelTrainer` is the training-side consumer of the blocks
subsystem: it cuts each batch along axis 0 (a :class:`BlockArray`'s row
splits, or an even partition for dense inputs), runs the loss/gradient
computation per shard, and **all-reduces** the per-shard gradients with
the same fixed pairwise tree every other blocked accumulation uses —
so the combined gradient does not depend on shard count scheduling.

Per-shard gradients run *serially* on the calling thread: eager dispatch
and the tape are Python-bound, so threading them buys nothing — the
parallelism of this subsystem lives in the per-block kernels of blocked
plans.  The all-reduce itself fans out on an optional scheduler (one
task per variable).
"""

from __future__ import annotations

import numpy as np

from ..framework.eager.tape import GradientTape
from .array import BlockArray
from .ops import pair_tree
from .scheduler import BlockScheduler

__all__ = ["DataParallelTrainer"]


def _shard_offsets(batch, num_shards):
    """The axis-0 cut points: a BlockArray's row splits when one is
    present (all blocked inputs must agree), else an even partition."""
    splits = None
    size = None
    for b in batch:
        if isinstance(b, BlockArray):
            row = b.grid.splits[0]
            if splits is not None and row != splits:
                raise ValueError(
                    f"blocked batch inputs disagree on row splits: "
                    f"{splits} vs {row}"
                )
            splits = row
        else:
            arr = np.asarray(b)
            if arr.ndim == 0:
                raise ValueError("batch inputs must have a leading axis")
            size = arr.shape[0] if size is None else size
    if splits is None:
        if size is None:
            raise ValueError("cannot shard an empty batch")
        num_shards = min(num_shards, size)
        base, rem = divmod(size, num_shards)
        splits = tuple(
            base + (1 if i < rem else 0) for i in range(num_shards)
        )
    offsets = [0]
    for s in splits:
        offsets.append(offsets[-1] + s)
    return tuple(splits), tuple(offsets)


def _shard_input(value, shard_index, offsets):
    if isinstance(value, BlockArray):
        # Row splits match the shard plan; one shard = one row of blocks,
        # reassembled dense for the eager loss function.
        rows = value.grid.grid_shape[0]
        if rows == len(offsets) - 1:
            return value[offsets[shard_index]:offsets[shard_index + 1]] \
                .to_dense()
        return value.to_dense()[
            offsets[shard_index]:offsets[shard_index + 1]]
    return np.asarray(value)[
        offsets[shard_index]:offsets[shard_index + 1]]


class DataParallelTrainer:
    """Sharded-batch training with tree all-reduced gradients.

    Args:
      loss_fn: ``loss_fn(*shard_inputs) -> scalar loss`` — the *mean*
        loss over its shard (the all-reduce re-weights by shard size, so
        uneven shards still produce the exact full-batch gradient).
      variables: the trainable :class:`Variable`s to differentiate.
      num_shards: shard count for dense batches (ignored when a
        ``BlockArray`` input supplies row splits); default 2.
      optimizer: optional object with ``apply_gradients(grads_and_vars)``
        called with the combined gradients after every step.
      scheduler: optional :class:`BlockScheduler` fanning the per-variable
        all-reduce out.
    """

    def __init__(self, loss_fn, variables, *, num_shards=None,
                 optimizer=None, scheduler=None):
        self._loss_fn = loss_fn
        self._variables = list(variables)
        self._num_shards = int(num_shards) if num_shards else 2
        if self._num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._optimizer = optimizer
        self._scheduler = scheduler if scheduler is not None \
            else BlockScheduler(num_workers=1)

    @property
    def variables(self):
        return list(self._variables)

    def step(self, *batch):
        """One sharded step: per-shard gradients, tree all-reduce,
        optional optimizer update.

        Returns:
          ``(loss, grads)`` — the batch-weighted mean loss (ndarray) and
          the combined per-variable gradients (ndarrays, ``None`` where
          no shard produced one).
        """
        splits, offsets = _shard_offsets(batch, self._num_shards)
        total = offsets[-1]
        shard_grads = []   # [shard][var] ndarray | None
        shard_losses = []
        for s in range(len(splits)):
            inputs = [_shard_input(b, s, offsets) for b in batch]
            with GradientTape() as tape:
                for v in self._variables:
                    tape.watch(v)
                loss = self._loss_fn(*inputs)
            grads = tape.gradient(loss, self._variables)
            shard_losses.append(np.asarray(loss))
            shard_grads.append([
                None if g is None else g.numpy() for g in grads
            ])

        weights = [n / total for n in splits]
        loss = pair_tree(
            [w * l for w, l in zip(weights, shard_losses)], np.add)

        def combine_var(i):
            parts = [
                # Weighted copies owned by this step — the tree
                # accumulates into its left operand.
                np.multiply(shard_grads[s][i], weights[s])
                for s in range(len(splits))
                if shard_grads[s][i] is not None
            ]
            if not parts:
                return None
            return pair_tree(parts, lambda x, y: np.add(x, y, out=x))

        grads = self._scheduler.map(
            combine_var, list(range(len(self._variables))))
        if self._optimizer is not None:
            self._optimizer.apply_gradients(zip(grads, self._variables))
        return loss, grads
