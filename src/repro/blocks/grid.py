"""``BlockGrid``: the partition metadata of a block-partitioned tensor.

A grid describes how one dense shape is cut into a Cartesian grid of
blocks: per dimension, an ordered tuple of block sizes that sums to the
dense extent.  Every block is addressed by a *grid entry* — a tuple of
per-dimension block indices — following the nums kernel-interface idiom
(each kernel call carries grid-entry/grid-meta addressing, never raw
offsets).

The grid is pure metadata: hashable, comparable, and shared between the
eager block-op layer (:mod:`repro.blocks.ops`), the graph lowering
(:mod:`repro.blocks.lowering`) and the signature cache
(:class:`repro.blocks.spec.BlockSpec`), so "same partitioning" means one
thing everywhere.
"""

from __future__ import annotations

import itertools

__all__ = ["BlockGrid"]


def _normalize_splits(shape, splits):
    shape = tuple(int(d) for d in shape)
    splits = tuple(tuple(int(b) for b in dim) for dim in splits)
    if len(splits) != len(shape):
        raise ValueError(
            f"splits cover {len(splits)} dimensions for a rank-{len(shape)} "
            "shape"
        )
    for d, (extent, dim) in enumerate(zip(shape, splits)):
        if not dim:
            raise ValueError(f"dimension {d} has no blocks")
        if any(b <= 0 for b in dim):
            raise ValueError(
                f"dimension {d} has a non-positive block size in {dim}"
            )
        if sum(dim) != extent:
            raise ValueError(
                f"dimension {d} block sizes {dim} sum to {sum(dim)}, "
                f"expected extent {extent}"
            )
    return shape, splits


class BlockGrid:
    """An immutable description of one block partitioning.

    Attributes:
      shape: the dense tensor shape.
      splits: per-dimension tuples of block sizes (summing to the extent).
      grid_shape: number of blocks per dimension.
    """

    __slots__ = ("_shape", "_splits", "_grid_shape", "_offsets")

    def __init__(self, shape, splits):
        self._shape, self._splits = _normalize_splits(shape, splits)
        self._grid_shape = tuple(len(dim) for dim in self._splits)
        offsets = []
        for dim in self._splits:
            acc = [0]
            for b in dim:
                acc.append(acc[-1] + b)
            offsets.append(tuple(acc))
        self._offsets = tuple(offsets)

    @classmethod
    def regular(cls, shape, block_shape):
        """The ceil-partition of ``shape`` into blocks of ``block_shape``.

        Every block along a dimension has the requested size except the
        last, which takes the remainder; a block size larger than the
        extent yields a single block.
        """
        shape = tuple(int(d) for d in shape)
        block_shape = tuple(int(b) for b in block_shape)
        if len(block_shape) != len(shape):
            raise ValueError(
                f"block_shape {block_shape} does not match rank of {shape}"
            )
        splits = []
        for extent, b in zip(shape, block_shape):
            if b <= 0:
                raise ValueError(f"block sizes must be positive, got {b}")
            if extent <= 0:
                raise ValueError(
                    f"cannot partition a dimension of extent {extent}"
                )
            full, rem = divmod(extent, b)
            dim = (b,) * full + ((rem,) if rem else ())
            splits.append(dim or (extent,))
        return cls(shape, splits)

    # -- metadata ------------------------------------------------------------

    @property
    def shape(self):
        return self._shape

    @property
    def splits(self):
        return self._splits

    @property
    def grid_shape(self):
        return self._grid_shape

    @property
    def ndim(self):
        return len(self._shape)

    @property
    def num_blocks(self):
        n = 1
        for g in self._grid_shape:
            n *= g
        return n

    def entries(self):
        """All grid entries, row-major (last dimension varies fastest).

        This order *is* the storage order of
        :meth:`repro.blocks.array.BlockArray.block_list` and the feed
        order of blocked plan placeholders; everything that flattens
        blocks agrees on it.
        """
        return itertools.product(*(range(g) for g in self._grid_shape))

    def entry_index(self, entry):
        """The row-major flat index of ``entry``."""
        idx = 0
        for e, g in zip(entry, self._grid_shape):
            if not 0 <= e < g:
                raise IndexError(f"entry {entry} outside grid {self._grid_shape}")
            idx = idx * g + e
        return idx

    def block_shape(self, entry):
        """The dense shape of the block at ``entry``."""
        return tuple(dim[e] for dim, e in zip(self._splits, entry))

    def block_bounds(self, entry):
        """Per-dimension ``(start, stop)`` of the block at ``entry``."""
        return tuple(
            (off[e], off[e + 1]) for off, e in zip(self._offsets, entry)
        )

    def block_slices(self, entry):
        """Per-dimension ``slice`` objects addressing the block."""
        return tuple(slice(s, e) for s, e in self.block_bounds(entry))

    def dim_offsets(self, dim):
        """Cumulative block start offsets along ``dim`` (incl. the end)."""
        return self._offsets[dim]

    # -- derived grids -------------------------------------------------------

    def transposed(self, perm=None):
        """The grid of the transposed tensor."""
        if perm is None:
            perm = tuple(range(self.ndim - 1, -1, -1))
        perm = tuple(int(p) % self.ndim for p in perm)
        if sorted(perm) != list(range(self.ndim)):
            raise ValueError(f"bad permutation {perm} for rank {self.ndim}")
        return BlockGrid(
            tuple(self._shape[p] for p in perm),
            tuple(self._splits[p] for p in perm),
        )

    def reduced(self, axis, keepdims=False):
        """The grid after reducing dimension ``axis`` to a single value."""
        axis = int(axis) % self.ndim
        shape, splits = [], []
        for d in range(self.ndim):
            if d == axis:
                if keepdims:
                    shape.append(1)
                    splits.append((1,))
            else:
                shape.append(self._shape[d])
                splits.append(self._splits[d])
        return BlockGrid(tuple(shape), tuple(splits))

    # -- operand alignment ----------------------------------------------------

    def operand_block_bounds(self, entry, operand_shape):
        """How a broadcast-compatible dense operand lines up with a block.

        For a binary elementwise op between this grid's block at
        ``entry`` and a dense operand of ``operand_shape``, returns per
        operand dimension either ``None`` (size-1 dimension: broadcast
        whole) or the ``(start, stop)`` window of the operand that pairs
        with the block.

        Raises:
          ValueError: when the operand cannot be blocked against this
            grid (higher rank than the grid, or a dimension that is
            neither 1 nor the dense extent).
        """
        operand_shape = tuple(int(d) for d in operand_shape)
        if len(operand_shape) > self.ndim:
            raise ValueError(
                f"operand rank {len(operand_shape)} exceeds grid rank "
                f"{self.ndim}"
            )
        bounds = self.block_bounds(entry)
        shift = self.ndim - len(operand_shape)
        out = []
        for j, extent in enumerate(operand_shape):
            d = j + shift
            if extent == 1:
                out.append(None)
            elif extent == self._shape[d]:
                out.append(bounds[d])
            else:
                raise ValueError(
                    f"operand dimension {j} of extent {extent} matches "
                    f"neither 1 nor the dense extent {self._shape[d]}"
                )
        return tuple(out)

    def slice_plan(self, index):
        """Resolve basic indexing into per-dimension block selections.

        Args:
          index: a tuple (len <= ndim) of ``int`` / ``slice`` entries;
            missing trailing dimensions are kept whole.  Slices must have
            step 1 (or None).

        Returns:
          A list with one element per dimension:
          ``("slice", [(src_block, local_start, local_stop), ...])`` for
          kept dimensions or ``("idx", src_block, local_index)`` for
          integer-indexed (dropped) dimensions.  Empty selections raise.
        """
        if len(index) > self.ndim:
            raise IndexError(
                f"too many indices ({len(index)}) for rank {self.ndim}"
            )
        index = tuple(index) + (slice(None),) * (self.ndim - len(index))
        plan = []
        for d, ix in enumerate(index):
            extent = self._shape[d]
            offsets = self._offsets[d]
            if isinstance(ix, (int,)) and not isinstance(ix, bool):
                i = ix + extent if ix < 0 else ix
                if not 0 <= i < extent:
                    raise IndexError(
                        f"index {ix} out of bounds for dimension {d} "
                        f"of extent {extent}"
                    )
                src = 0
                while offsets[src + 1] <= i:
                    src += 1
                plan.append(("idx", src, i - offsets[src]))
            elif isinstance(ix, slice):
                if ix.step not in (None, 1):
                    raise ValueError(
                        "block slicing supports step 1 only"
                    )
                start, stop, _ = ix.indices(extent)
                if stop <= start:
                    raise ValueError(
                        f"empty slice {ix} along dimension {d}"
                    )
                parts = []
                for src, (s, e) in enumerate(
                        zip(offsets[:-1], offsets[1:])):
                    lo = max(start, s)
                    hi = min(stop, e)
                    if hi > lo:
                        parts.append((src, lo - s, hi - s))
                plan.append(("slice", parts))
            else:
                raise TypeError(
                    f"unsupported block index {ix!r}; use ints and "
                    "step-1 slices"
                )
        return plan

    # -- identity --------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, BlockGrid):
            return NotImplemented
        return self._splits == other._splits

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self):
        return hash(self._splits)

    def __repr__(self):
        return f"BlockGrid(shape={self._shape}, grid={self._grid_shape})"
