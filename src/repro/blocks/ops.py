"""The eager block-op layer: per-block dispatch through the kernel registry.

Every function here decomposes one logical op on :class:`BlockArray`
inputs into independent per-block calls of the *registered* kernels
(:func:`repro.framework.registry.get_op_def`), optionally fanned out on a
:class:`~repro.blocks.scheduler.BlockScheduler`:

- elementwise ops map block-wise (dense operands are sliced per block,
  scalars broadcast whole);
- ``matmul`` runs the blocked inner product — one ``MatMul`` per
  ``(i, k) x (k, j)`` pair accumulated through the registry's in-place
  kernel into a fixed pairwise tree, so results do not depend on
  scheduling;
- reductions reduce per block, then tree-combine across the grid;
- ``concat`` / slicing / ``transpose`` re-grid metadata (no bulk copies).

The graph lowering (:mod:`repro.blocks.lowering`) mirrors these exact
decompositions symbolically, so a traced blocked function computes
bit-identical results to the eager path.
"""

from __future__ import annotations

import numpy as np

from ..framework import registry
from .array import BlockArray
from .grid import BlockGrid
from .scheduler import BlockScheduler

__all__ = [
    "map_unary", "map_binary", "matmul", "reduce_sum", "reduce_mean",
    "reduce_max", "reduce_min", "concat", "transpose",
    "exp", "log", "tanh", "sigmoid", "relu", "sqrt", "square", "sign",
    "floor", "negative", "abs",  # noqa: A001 - mirrors the op registry
    "add", "subtract", "multiply", "divide", "power", "maximum", "minimum",
    "mod", "floor_divide",
    "greater", "greater_equal", "less", "less_equal", "equal", "not_equal",
    "where",
]

#: Elementwise op names safe for block-wise mapping (shape-preserving,
#: value-local).  Shared with the graph lowering.
UNARY_ELEMENTWISE = frozenset({
    "Neg", "Abs", "Exp", "Log", "Tanh", "Sigmoid", "Relu", "Sqrt",
    "Square", "Sign", "Floor", "LogicalNot",
})
BINARY_ELEMENTWISE = frozenset({
    "Add", "Sub", "Mul", "Div", "Pow", "Maximum", "Minimum", "Mod",
    "FloorDiv", "Greater", "GreaterEqual", "Less", "LessEqual", "Equal",
    "NotEqual", "LogicalAnd", "LogicalOr",
})

_SERIAL = BlockScheduler(num_workers=1)


def _sched(scheduler):
    return scheduler if scheduler is not None else _SERIAL


def pair_tree(items, combine):
    """Fixed pairwise combine: ((a+b), (c+d)) + ... — the one tree shape
    every accumulation in the blocks subsystem uses, eager or lowered."""
    items = list(items)
    if not items:
        raise ValueError("cannot combine an empty sequence")
    while len(items) > 1:
        merged = []
        for i in range(0, len(items) - 1, 2):
            merged.append(combine(items[i], items[i + 1]))
        if len(items) % 2:
            merged.append(items[-1])
        items = merged
    return items[0]


# ---------------------------------------------------------------------------
# Elementwise
# ---------------------------------------------------------------------------


def map_unary(op_name, a, scheduler=None):
    """Apply a registered unary elementwise kernel block-wise."""
    if op_name not in UNARY_ELEMENTWISE:
        raise ValueError(f"{op_name!r} is not a blocked unary elementwise op")
    if not isinstance(a, BlockArray):
        raise TypeError(f"expected a BlockArray, got {type(a).__name__}")
    kernel = registry.get_op_def(op_name).kernel
    blocks = _sched(scheduler).map(kernel, a.block_list())
    return BlockArray.from_blocks(a.grid, blocks)


def _operand_views(grid, operand):
    """Per-entry views of a dense operand, aligned to a grid's blocks."""
    operand = np.asarray(operand)
    if operand.ndim == 0:
        return [operand] * grid.num_blocks
    views = []
    for entry in grid.entries():
        bounds = grid.operand_block_bounds(entry, operand.shape)
        views.append(operand[tuple(
            slice(None) if b is None else slice(b[0], b[1]) for b in bounds
        )])
    return views


def map_binary(op_name, x, y, scheduler=None):
    """Apply a registered binary elementwise kernel block-wise.

    At least one operand must be a :class:`BlockArray`; the other may be
    a same-grid ``BlockArray``, a scalar, or a dense array whose shape
    broadcasts against the blocked operand (it is sliced per block).
    """
    if op_name not in BINARY_ELEMENTWISE:
        raise ValueError(f"{op_name!r} is not a blocked binary elementwise op")
    kernel = registry.get_op_def(op_name).kernel
    sched = _sched(scheduler)
    if isinstance(x, BlockArray) and isinstance(y, BlockArray):
        if y.grid != x.grid:
            if y.shape != x.shape:
                raise ValueError(
                    f"blocked operands have different shapes {x.shape} "
                    f"and {y.shape}"
                )
            y = y.regrid(grid=x.grid)
        pairs = list(zip(x.block_list(), y.block_list()))
        blocks = sched.map(lambda p: kernel(p[0], p[1]), pairs)
        return BlockArray.from_blocks(x.grid, blocks)
    if isinstance(x, BlockArray):
        pairs = list(zip(x.block_list(), _operand_views(x.grid, y)))
        grid = x.grid
    else:
        pairs = list(zip(_operand_views(y.grid, x), y.block_list()))
        grid = y.grid
    blocks = sched.map(lambda p: kernel(p[0], p[1]), pairs)
    return BlockArray.from_blocks(grid, blocks)


def _unary_fn(op_name):
    def fn(a, scheduler=None):
        return map_unary(op_name, a, scheduler=scheduler)

    fn.__name__ = op_name.lower()
    fn.__doc__ = f"Blocked elementwise {op_name!r} (registry kernel per block)."
    return fn


def _binary_fn(op_name):
    def fn(x, y, scheduler=None):
        return map_binary(op_name, x, y, scheduler=scheduler)

    fn.__name__ = op_name.lower()
    fn.__doc__ = f"Blocked elementwise {op_name!r} (registry kernel per block)."
    return fn


exp = _unary_fn("Exp")
log = _unary_fn("Log")
tanh = _unary_fn("Tanh")
sigmoid = _unary_fn("Sigmoid")
relu = _unary_fn("Relu")
sqrt = _unary_fn("Sqrt")
square = _unary_fn("Square")
sign = _unary_fn("Sign")
floor = _unary_fn("Floor")
negative = _unary_fn("Neg")
abs = _unary_fn("Abs")  # noqa: A001 - mirrors the op registry name

add = _binary_fn("Add")
subtract = _binary_fn("Sub")
multiply = _binary_fn("Mul")
divide = _binary_fn("Div")
power = _binary_fn("Pow")
maximum = _binary_fn("Maximum")
minimum = _binary_fn("Minimum")
mod = _binary_fn("Mod")
floor_divide = _binary_fn("FloorDiv")

greater = _binary_fn("Greater")
greater_equal = _binary_fn("GreaterEqual")
less = _binary_fn("Less")
less_equal = _binary_fn("LessEqual")
equal = _binary_fn("Equal")
not_equal = _binary_fn("NotEqual")


def where(cond, x, y, scheduler=None):
    """Blocked ``Select``: ``where(cond, x, y)`` block-wise.

    At least one of the three operands must be a :class:`BlockArray`;
    its grid becomes the result grid (same-shape blocked operands are
    re-gridded to it, dense operands are sliced per block, scalars
    broadcast).  The registry's ``Select`` kernel keeps the legacy
    rank-1-condition semantics — a rank-1 ``cond`` over rank-2 operands
    selects whole *rows* — so a rank-1 condition is sliced along the
    grid's leading axis, not broadcast numpy-style against the trailing
    one.
    """
    ref = next((v for v in (x, y, cond) if isinstance(v, BlockArray)), None)
    if ref is None:
        raise TypeError("blocked where needs at least one BlockArray")
    grid = ref.grid

    def lift(v, label):
        if not isinstance(v, BlockArray):
            return _operand_views(grid, v)
        if v.grid == grid:
            return v.block_list()
        if v.shape != grid.shape:
            raise ValueError(
                f"blocked where operand {label} has shape {v.shape}, "
                f"expected {grid.shape}"
            )
        return v.regrid(grid=grid).block_list()

    def leading(c, rank):
        # Lower-rank condition over a higher-rank grid: slice its axes
        # against the grid's *leading* axes, one view per block (shared
        # across the trailing block dimensions).
        if isinstance(c, BlockArray):
            c = c.to_dense()
        c = np.asarray(c)
        return [
            c[tuple(slice(*grid.block_bounds(entry)[d])
                    for d in range(rank))]
            for entry in grid.entries()
        ]

    cond_rank = cond.ndim if isinstance(cond, BlockArray) else np.ndim(cond)
    if 0 < cond_rank < len(grid.shape):
        cond_shape = tuple(cond.shape if isinstance(cond, BlockArray)
                           else np.shape(cond))
        if cond_shape != grid.shape[:cond_rank]:
            raise ValueError(
                f"low-rank where condition has shape {cond_shape}, "
                f"expected leading dimensions "
                f"{grid.shape[:cond_rank]}"
            )
        conds = leading(cond, cond_rank)
    else:
        conds = lift(cond, "cond")

    kernel = registry.get_op_def("Select").kernel
    triples = list(zip(conds, lift(x, "x"), lift(y, "y")))
    blocks = _sched(scheduler).map(
        lambda t: kernel(t[0], t[1], t[2]), triples)
    return BlockArray.from_blocks(grid, blocks)


# ---------------------------------------------------------------------------
# Matmul: blocked inner product with tree-combined partial sums
# ---------------------------------------------------------------------------


def _as_matmul_operand(value, other, side):
    """Lift a dense matmul operand to a BlockArray compatible with the
    blocked side: k-splits shared, the free dimension unsplit."""
    arr = np.asarray(value)
    if arr.ndim != 2:
        raise ValueError(f"blocked matmul needs rank-2 operands, got {arr.ndim}")
    if side == "left":
        grid = BlockGrid(arr.shape, ((arr.shape[0],), other.grid.splits[0]))
    else:
        grid = BlockGrid(arr.shape, (other.grid.splits[1], (arr.shape[1],)))
    return BlockArray.from_dense(arr, grid=grid)


def matmul(a, b, scheduler=None):
    """Blocked matrix product.

    ``C[i, j] = sum_k A[i, k] @ B[k, j]`` — every per-block ``MatMul``
    goes through the registry kernel's in-place variant, accumulating
    into buffers this function owns, and the ``k`` partial sums combine
    in a fixed pairwise tree (deterministic under any scheduler).
    """
    if not isinstance(a, BlockArray) and not isinstance(b, BlockArray):
        raise TypeError("blocked matmul needs at least one BlockArray")
    if not isinstance(a, BlockArray):
        a = _as_matmul_operand(a, b, "left")
    if not isinstance(b, BlockArray):
        b = _as_matmul_operand(b, a, "right")
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"blocked matmul needs rank-2 operands, got {a.ndim} and {b.ndim}"
        )
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"matmul shape mismatch: {a.shape} @ {b.shape}"
        )
    if a.grid.splits[1] != b.grid.splits[0]:
        # Align the contraction splits to the left operand's.
        b = b.regrid(grid=BlockGrid(
            b.shape, (a.grid.splits[1], b.grid.splits[1])))

    mm = registry.get_op_def("MatMul")
    add_ik = registry.get_op_def("Add").inplace_kernel
    rows = a.grid.splits[0]
    cols = b.grid.splits[1]
    gk = len(a.grid.splits[1])
    out_dtype = np.result_type(a.dtype, b.dtype)

    def one_tile(task):
        i, j = task
        parts = []
        for q in range(gk):
            buf = np.empty((rows[i], cols[j]), dtype=out_dtype)
            parts.append(mm.inplace_kernel(
                a.block((i, q)), b.block((q, j)), out=buf))
        # Buffers are owned by this call, so the tree accumulates into
        # its left operand via the Add in-place kernel.
        return pair_tree(parts, lambda x, y: add_ik(x, y, out=x))

    tasks = [(i, j) for i in range(len(rows)) for j in range(len(cols))]
    blocks = _sched(scheduler).map(one_tile, tasks)
    grid = BlockGrid((a.shape[0], b.shape[1]), (rows, cols))
    return BlockArray.from_blocks(grid, blocks)


# ---------------------------------------------------------------------------
# Reductions: per-block reduce + tree-combine across the grid
# ---------------------------------------------------------------------------

_REDUCE_COMBINE = {
    "Sum": np.add,
    "Max": np.maximum,
    "Min": np.minimum,
}


def _reduce(op_name, a, axis, keepdims, scheduler):
    if not isinstance(a, BlockArray):
        raise TypeError(f"expected a BlockArray, got {type(a).__name__}")
    kernel = registry.get_op_def(op_name).kernel
    combine = _REDUCE_COMBINE[op_name]
    sched = _sched(scheduler)
    if axis is None:
        reduced = sched.map(
            lambda b: kernel(b, axis=None, keepdims=keepdims), a.block_list())
        return pair_tree(reduced, combine)
    axis = int(axis) % a.ndim
    reduced = sched.map(
        lambda b: kernel(b, axis=axis, keepdims=keepdims), a.block_list())
    grid = a.grid
    out_grid = grid.reduced(axis, keepdims=keepdims)
    gd = grid.grid_shape[axis]
    if gd == 1:
        return BlockArray.from_blocks(out_grid, reduced)

    def one_entry(out_entry):
        out_entry = list(out_entry)
        if keepdims:
            template = out_entry
        else:
            template = out_entry[:axis] + [0] + out_entry[axis:]
        parts = []
        for q in range(gd):
            src = list(template)
            src[axis] = q
            parts.append(reduced[grid.entry_index(tuple(src))])
        return pair_tree(parts, combine)

    blocks = sched.map(one_entry, list(out_grid.entries()))
    return BlockArray.from_blocks(out_grid, blocks)


def reduce_sum(a, axis=None, keepdims=False, scheduler=None):
    """Blocked ``Sum``: dense result for ``axis=None``, re-gridded
    :class:`BlockArray` for an integer axis."""
    return _reduce("Sum", a, axis, keepdims, scheduler)


def reduce_max(a, axis=None, keepdims=False, scheduler=None):
    return _reduce("Max", a, axis, keepdims, scheduler)


def reduce_min(a, axis=None, keepdims=False, scheduler=None):
    return _reduce("Min", a, axis, keepdims, scheduler)


def _mean_divide(total, count, in_dtype):
    # Match the dense Mean kernel's dtype rule: floats stay put,
    # integers go through true division (float64).
    if np.dtype(in_dtype).kind == "f":
        return np.true_divide(total, np.asarray(count, dtype=in_dtype))
    return np.true_divide(total, float(count))


def reduce_mean(a, axis=None, keepdims=False, scheduler=None):
    """Blocked ``Mean``: summed via the grid tree, divided once."""
    in_dtype = a.dtype
    total = reduce_sum(a, axis=axis, keepdims=keepdims, scheduler=scheduler)
    if axis is None:
        return _mean_divide(total, np.prod(a.shape, dtype=np.int64), in_dtype)
    count = a.shape[int(axis) % a.ndim]
    blocks = [
        _mean_divide(b, count, in_dtype) for b in total.block_list()
    ]
    return BlockArray.from_blocks(total.grid, blocks)


# ---------------------------------------------------------------------------
# Layout ops: metadata re-gridding
# ---------------------------------------------------------------------------


def concat(arrays, axis=0, scheduler=None):
    """Concatenate blocked arrays along ``axis`` — pure re-gridding: the
    result shares the input blocks, no bulk copies."""
    arrays = list(arrays)
    if not arrays or not all(isinstance(a, BlockArray) for a in arrays):
        raise TypeError("concat expects a non-empty list of BlockArrays")
    first = arrays[0]
    axis = int(axis) % first.ndim
    aligned = [first]
    for a in arrays[1:]:
        want = tuple(
            a.grid.splits[d] if d == axis else first.grid.splits[d]
            for d in range(first.ndim)
        )
        if a.grid.splits != want:
            a = a.regrid(grid=BlockGrid(a.shape, want))
        aligned.append(a)
    splits = list(first.grid.splits)
    splits[axis] = tuple(
        b for a in aligned for b in a.grid.splits[axis]
    )
    shape = list(first.shape)
    shape[axis] = sum(splits[axis])
    out_grid = BlockGrid(tuple(shape), tuple(splits))
    # Map each output entry back to (source array, source entry).
    starts = []
    acc = 0
    for a in aligned:
        starts.append(acc)
        acc += a.grid.grid_shape[axis]
    blocks = []
    for entry in out_grid.entries():
        g = entry[axis]
        src = 0
        while src + 1 < len(aligned) and starts[src + 1] <= g:
            src += 1
        src_entry = list(entry)
        src_entry[axis] = g - starts[src]
        blocks.append(aligned[src].block(tuple(src_entry)))
    return BlockArray.from_blocks(out_grid, blocks)


def transpose(a, perm=None, scheduler=None):
    """Blocked transpose: per-block ``Transpose`` kernel + permuted grid."""
    if not isinstance(a, BlockArray):
        raise TypeError(f"expected a BlockArray, got {type(a).__name__}")
    if perm is None:
        perm = tuple(range(a.ndim - 1, -1, -1))
    perm = tuple(int(p) % a.ndim for p in perm)
    kernel = registry.get_op_def("Transpose").kernel
    out_grid = a.grid.transposed(perm)
    entries = list(out_grid.entries())

    def one(entry):
        src = [0] * a.ndim
        for j, p in enumerate(perm):
            src[p] = entry[j]
        return kernel(a.block(tuple(src)), perm=perm)

    blocks = _sched(scheduler).map(one, entries)
    return BlockArray.from_blocks(out_grid, blocks)
