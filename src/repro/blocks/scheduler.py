"""``BlockScheduler``: the worker pool behind per-block kernel dispatch.

Independent per-block kernel calls are embarrassingly parallel, and the
NumPy kernels the registry dispatches to release the GIL on non-trivial
arrays — so a plain ``ThreadPoolExecutor`` buys real multi-core speedup
without any serialization of block data.

The scheduler is deliberately dumb: an order-preserving ``map`` with a
serial fallback.  Determinism comes from structure, not scheduling —
every combine tree (blocked matmul partial sums, grid reductions,
gradient all-reduce) is a fixed pairwise shape, so results are
bit-identical whether ``map`` runs on one thread or eight.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

from ..observe.events import RECORDER as _REC

__all__ = ["BlockScheduler"]


class BlockScheduler:
    """Runs independent block tasks on a lazily-created thread pool.

    Args:
      num_workers: pool size; ``None`` uses ``os.cpu_count()``.  With
        ``num_workers <= 1`` every ``map`` runs serially on the calling
        thread and no pool is ever created.
    """

    def __init__(self, num_workers=None):
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        num_workers = int(num_workers)
        if num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self._num_workers = num_workers
        self._pool = None
        self._lock = threading.Lock()

    @property
    def num_workers(self):
        return self._num_workers

    @property
    def parallel(self):
        """Whether this scheduler can run tasks concurrently at all."""
        return self._num_workers > 1

    def _ensure_pool(self):
        pool = self._pool
        if pool is None:
            with self._lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self._num_workers,
                        thread_name_prefix="repro-block",
                    )
                    self._pool = pool
        return pool

    def map(self, fn, items):
        """``[fn(item) for item in items]``, possibly concurrently.

        Order-preserving; the first exception propagates (remaining
        tasks are left to finish in the pool, matching executor
        semantics).  Single-item and serial schedulers never touch a
        pool, so the fallback path has zero threading overhead.
        """
        items = list(items)
        if _REC.enabled:
            # Per-task spans: each pool thread gets its own track in the
            # trace viewer, so block-level parallelism is visible.
            inner = fn

            def fn(item, _fn=inner, _rec=_REC):
                t0 = _rec.begin()
                try:
                    return _fn(item)
                finally:
                    _rec.end("block_task", "block", t0)

        if self._num_workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def close(self):
        """Shut the pool down (idempotent); serial use stays valid."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - finalizer best-effort
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self):
        state = "pooled" if self._pool is not None else "idle"
        return f"<BlockScheduler workers={self._num_workers} {state}>"
