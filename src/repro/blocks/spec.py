"""``BlockSpec``: the signature-cache atom for block-partitioned feeds.

A :class:`BlockSpec` is a :class:`~repro.function.tensor_spec.TensorSpec`
that additionally pins a :class:`~repro.blocks.grid.BlockGrid`.  Two
calls hit the same concrete function only when their ``BlockArray``
arguments share dtype *and* grid — the compiled blocked plan has one
placeholder per block, so a different partitioning really is a different
executable.

Because the grid fixes every dimension, block specs never shape-relax:
``most_general()`` is the identity.
"""

from __future__ import annotations

from ..framework import dtypes
from ..framework.shapes import TensorShape
from ..function.tensor_spec import TensorSpec
from .array import BlockArray
from .grid import BlockGrid

__all__ = ["BlockSpec"]


class BlockSpec(TensorSpec):
    """A (grid, dtype) description of a block-partitioned argument."""

    __slots__ = ("_grid",)

    def __init__(self, grid, dtype=dtypes.float32, name=None):
        if not isinstance(grid, BlockGrid):
            raise TypeError(
                f"BlockSpec needs a BlockGrid, got {type(grid).__name__}"
            )
        super().__init__(TensorShape(grid.shape), dtype, name=name)
        self._grid = grid

    @property
    def grid(self):
        return self._grid

    @classmethod
    def from_value(cls, value, name=None):
        if isinstance(value, BlockSpec):
            return cls(value.grid, value.dtype, name=name or value.name)
        if isinstance(value, BlockArray):
            return cls(value.grid, dtypes.from_numpy(value.dtype), name=name)
        raise TypeError(
            f"BlockSpec.from_value expects a BlockArray, got "
            f"{type(value).__name__}"
        )

    def most_general(self):
        """Block grids pin every dimension; nothing to relax."""
        return self

    def is_compatible_with(self, value):
        if isinstance(value, BlockArray) or isinstance(value, BlockSpec):
            other = BlockSpec.from_value(value)
        else:
            return False
        return self.dtype == other.dtype and self._grid == other._grid

    def __eq__(self, other):
        if not isinstance(other, BlockSpec):
            # Never equal to a plain TensorSpec: a blocked feed compiles
            # to a different executable than a dense feed of the same
            # shape.  (Python tries this reflected __eq__ first because
            # BlockSpec subclasses TensorSpec, so returning False — not
            # NotImplemented — also blocks TensorSpec.__eq__'s
            # shape-only answer.)
            return False if isinstance(other, TensorSpec) else NotImplemented
        return self.dtype == other.dtype and self._grid == other._grid

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self):
        return hash((self.dtype, self._grid))

    def __repr__(self):
        return (f"BlockSpec(shape={self.shape}, "
                f"grid={self._grid.grid_shape}, dtype={self.dtype.name})")
