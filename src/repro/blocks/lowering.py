"""Graph lowering: rewrite a traced graph into per-block steps.

:func:`lower_blocked_graph` takes a trace graph plus the grids of its
block-partitioned feeds and produces a *new* graph in which every op
touching blocked data is decomposed into independent per-block ops —
the exact decompositions of the eager layer (:mod:`repro.blocks.ops`),
staged symbolically:

- a blocked placeholder becomes one placeholder per block (row-major
  entry order — the feed order of :meth:`BlockArray.block_list`);
- elementwise ops map block-wise; dense operands with static shapes are
  sliced per block through ``GetItem``, scalars broadcast whole;
- ``MatMul`` becomes the blocked inner product — per-tile partials
  combined in the same fixed pairwise tree as the eager path, so traced
  and eager results are bit-identical;
- reductions reduce per block and tree-combine across the grid;
- ``Concat`` / basic ``GetItem`` slicing / ``Transpose`` re-grid;
- everything else (``Reshape``, stateful ops, opaque-attr control flow)
  falls back to *materializing* its blocked inputs — a ``Concat`` tree
  assembling the dense value — and copying the op unchanged.

The per-block ops of one logical op share no data dependencies, so they
land in the same wavefront level of the compiled plan
(:func:`repro.runtime.plan.compile_plan`) and fan out on the bound
scheduler.
"""

from __future__ import annotations

from ..framework.graph.graph import Graph
from .grid import BlockGrid
from .ops import BINARY_ELEMENTWISE, UNARY_ELEMENTWISE, pair_tree

__all__ = ["BlockedValue", "LoweredGraph", "lower_blocked_graph"]

_REDUCE_COMBINE_OP = {"Sum": "Add", "Max": "Maximum", "Min": "Minimum"}


class BlockedValue:
    """A symbolic block-partitioned value: a grid plus one graph tensor
    per block (row-major entry order)."""

    __slots__ = ("grid", "blocks")

    def __init__(self, grid, blocks):
        self.grid = grid
        self.blocks = tuple(blocks)

    def block(self, entry):
        return self.blocks[self.grid.entry_index(tuple(entry))]

    def __repr__(self):
        return f"<BlockedValue grid={self.grid.grid_shape}>"


class LoweredGraph:
    """The result of :func:`lower_blocked_graph`.

    Attributes:
      graph: the new, per-block graph.
      feeds: the new feed tensors — old feed order, each blocked feed
        expanded to its per-block placeholders (row-major).
      feed_widths: how many new feeds each old feed expanded to (1 for
        dense feeds), in old feed order — the call-side contract for
        flattening argument values.
      fetches: the new fetch tensors (dense; blocked intermediates are
        materialized), ``None`` entries preserved.
    """

    __slots__ = ("graph", "feeds", "feed_widths", "fetches")

    def __init__(self, graph, feeds, feed_widths, fetches):
        self.graph = graph
        self.feeds = tuple(feeds)
        self.feed_widths = tuple(feed_widths)
        self.fetches = tuple(fetches)


class _Lowering:
    def __init__(self, old_graph, block_grids):
        self.old = old_graph
        self.new = Graph(name=f"{old_graph.name}/blocked")
        self.block_grids = block_grids  # id(old feed tensor) -> BlockGrid
        self.tmap = {}    # id(old tensor) -> Tensor | BlockedValue
        self.opmap = {}   # id(old op) -> tuple of new Operations
        self.dense = {}   # id(old tensor) -> materialized dense Tensor

    # -- plumbing ----------------------------------------------------------

    def _controls(self, op):
        return [nc for c in op.control_inputs
                for nc in self.opmap.get(id(c), ())]

    def _op(self, op_type, inputs, attrs, ctrl, name=None):
        return self.new.create_op(op_type, inputs, attrs, name=name,
                                  control_inputs=ctrl)

    def mapped(self, t):
        return self.tmap[id(t)]

    def to_dense(self, t):
        """The dense tensor for an old tensor (materializing if blocked)."""
        v = self.tmap[id(t)]
        if not isinstance(v, BlockedValue):
            return v
        cached = self.dense.get(id(t))
        if cached is not None:
            return cached
        dense = self._materialize(v)
        dense.set_shape(t.shape)
        self.dense[id(t)] = dense
        return dense

    def _materialize(self, bv):
        """Concat-tree assembly of a blocked value, last grid axis first
        (groups of row-major-consecutive blocks share all outer indices)."""
        blocks = list(bv.blocks)
        shapes = [bv.grid.block_shape(e) for e in bv.grid.entries()]
        for axis in range(bv.grid.ndim - 1, -1, -1):
            g = bv.grid.grid_shape[axis]
            merged, merged_shapes = [], []
            for i in range(0, len(blocks), g):
                group = blocks[i:i + g]
                if g == 1:
                    merged.append(group[0])
                    merged_shapes.append(shapes[i])
                    continue
                out = self._op("Concat", group, {"axis": axis}, ()).outputs[0]
                shp = list(shapes[i])
                shp[axis] = sum(s[axis] for s in shapes[i:i + g])
                out.set_shape(tuple(shp))
                merged.append(out)
                merged_shapes.append(tuple(shp))
            blocks, shapes = merged, merged_shapes
        return blocks[0]

    def to_blocked(self, tensor, grid, ctrl):
        """Partition a dense tensor of statically known shape ``grid.shape``
        into per-block ``GetItem`` slices."""
        blocks = []
        for entry in grid.entries():
            bounds = grid.block_bounds(entry)
            if all(s == 0 and e == grid.shape[d]
                   for d, (s, e) in enumerate(bounds)):
                blocks.append(tensor)
                continue
            spec = tuple(("slice", int(s), int(e), None) for s, e in bounds)
            out = self._op("GetItem", [tensor], {"spec": spec},
                           ctrl).outputs[0]
            out.set_shape(grid.block_shape(entry))
            blocks.append(out)
        return BlockedValue(grid, blocks)

    def _slice_operand(self, grid, entry, tensor, dims, ctrl):
        """One block-aligned window of a broadcast-compatible dense
        operand (mirrors ``ops._operand_views``)."""
        if not dims:
            return tensor  # scalar: broadcast whole
        bounds = grid.operand_block_bounds(entry, dims)
        if all(b is None for b in bounds):
            return tensor
        spec = tuple(
            ("slice", None, None, None) if b is None
            else ("slice", int(b[0]), int(b[1]), None)
            for b in bounds
        )
        out = self._op("GetItem", [tensor], {"spec": spec}, ctrl).outputs[0]
        out.set_shape(tuple(
            d if b is None else b[1] - b[0] for d, b in zip(dims, bounds)
        ))
        return out

    def _fallback(self, op):
        """Copy ``op`` unchanged, with blocked inputs materialized."""
        ctrl = self._controls(op)
        inputs = [self.to_dense(t) for t in op.inputs]
        new_op = self._op(op.type, inputs, dict(op.attrs), ctrl, name=op.name)
        for old_t, new_t in zip(op.outputs, new_op.outputs):
            new_t.set_shape(old_t.shape)
            self.tmap[id(old_t)] = new_t

    # -- per-op lowering ----------------------------------------------------

    def lower_op(self, op):
        before = len(self.new.ops)
        self._dispatch(op)
        self.opmap[id(op)] = tuple(self.new.ops[before:])

    def _dispatch(self, op):
        t = op.type
        if t == "Placeholder":
            return self._lower_placeholder(op)
        blocked_in = [x for x in op.inputs
                      if isinstance(self.tmap[id(x)], BlockedValue)]
        if not blocked_in:
            # Pure dense region: copy 1:1 (Const included).
            return self._fallback(op)
        done = False
        if t in UNARY_ELEMENTWISE and len(op.inputs) == 1:
            done = self._lower_unary(op)
        elif t in BINARY_ELEMENTWISE and len(op.inputs) == 2:
            done = self._lower_binary(op)
        elif t == "MatMul":
            done = self._lower_matmul(op)
        elif t in ("Sum", "Max", "Min"):
            done = self._lower_reduce(op)
        elif t == "Mean":
            done = self._lower_mean(op)
        elif t == "Concat":
            done = self._lower_concat(op)
        elif t == "Transpose":
            done = self._lower_transpose(op)
        elif t == "GetItem":
            done = self._lower_getitem(op)
        if not done:
            self._fallback(op)

    def _lower_placeholder(self, op):
        out = op.outputs[0]
        grid = self.block_grids.get(id(out))
        if grid is None:
            new_out = self.new.placeholder(out.dtype, shape=out.shape,
                                           name=op.name)
            self.tmap[id(out)] = new_out
            return
        blocks = []
        for i, entry in enumerate(grid.entries()):
            blocks.append(self.new.placeholder(
                out.dtype, shape=grid.block_shape(entry),
                name=f"{op.name}/b{i}"))
        self.tmap[id(out)] = BlockedValue(grid, blocks)

    def _lower_unary(self, op):
        ctrl = self._controls(op)
        bv = self.mapped(op.inputs[0])
        blocks = [
            self._op(op.type, [b], {}, ctrl).outputs[0] for b in bv.blocks
        ]
        self.tmap[id(op.outputs[0])] = BlockedValue(bv.grid, blocks)
        return True

    def _lower_binary(self, op):
        ctrl = self._controls(op)
        x = self.mapped(op.inputs[0])
        y = self.mapped(op.inputs[1])
        xb, yb = isinstance(x, BlockedValue), isinstance(y, BlockedValue)
        if xb and yb:
            if y.grid != x.grid:
                if y.grid.shape != x.grid.shape:
                    return False  # genuinely broadcasting blocked pair
                # Grids disagree: realign the right operand to the left's.
                y = self.to_blocked(self.to_dense(op.inputs[1]), x.grid, ctrl)
            blocks = [
                self._op(op.type, [a, b], {}, ctrl).outputs[0]
                for a, b in zip(x.blocks, y.blocks)
            ]
            self.tmap[id(op.outputs[0])] = BlockedValue(x.grid, blocks)
            return True
        if xb:
            bv, other, other_t, flip = x, y, op.inputs[1], False
        else:
            bv, other, other_t, flip = y, x, op.inputs[0], True
        dims = other_t.shape.dims
        if dims is not None and None in dims:
            dims = None
        if dims is None and other_t.shape.rank != 0:
            return False  # unknown dense shape: materialize instead
        dims = tuple(dims or ())
        try:
            views = [
                self._slice_operand(bv.grid, entry, other, dims, ctrl)
                for entry in bv.grid.entries()
            ]
        except ValueError:
            return False  # operand does not align with the grid
        blocks = []
        for b, v in zip(bv.blocks, views):
            pair = [v, b] if flip else [b, v]
            blocks.append(self._op(op.type, pair, {}, ctrl).outputs[0])
        self.tmap[id(op.outputs[0])] = BlockedValue(bv.grid, blocks)
        return True

    # -- matmul -------------------------------------------------------------

    def _lower_matmul(self, op):
        ctrl = self._controls(op)
        ta = bool(op.attrs.get("transpose_a"))
        tb = bool(op.attrs.get("transpose_b"))
        a, b = (self.mapped(t) for t in op.inputs)

        def effective_grid(v, flag):
            g = v.grid
            if g.ndim != 2:
                return None
            return g.transposed() if flag else g

        ga = effective_grid(a, ta) if isinstance(a, BlockedValue) else None
        gb = effective_grid(b, tb) if isinstance(b, BlockedValue) else None
        if isinstance(a, BlockedValue) and ga is None:
            return False
        if isinstance(b, BlockedValue) and gb is None:
            return False

        def lift(old_t, eff_grid, flag):
            # Partition a dense operand so its *effective* (transposed)
            # grid is eff_grid; slicing happens on the raw layout.
            dims = old_t.shape.dims
            if dims is None or None in dims or len(dims) != 2:
                return None
            raw = eff_grid.transposed() if flag else eff_grid
            if raw.shape != tuple(dims):
                return None
            return self.to_blocked(self.to_dense(old_t), raw, ctrl)

        if ga is None:
            k = gb.splits[0]
            dims = op.inputs[0].shape.dims
            if dims is None or None in dims or len(dims) != 2:
                return False
            m = dims[1] if ta else dims[0]
            ga = BlockGrid((m, sum(k)), ((m,), k))
            a = lift(op.inputs[0], ga, ta)
            if a is None:
                return False
        elif gb is None:
            k = ga.splits[1]
            dims = op.inputs[1].shape.dims
            if dims is None or None in dims or len(dims) != 2:
                return False
            n = dims[0] if tb else dims[1]
            gb = BlockGrid((sum(k), n), (k, (n,)))
            b = lift(op.inputs[1], gb, tb)
            if b is None:
                return False
        elif ga.splits[1] != gb.splits[0]:
            # Contraction splits disagree: re-block the right operand.
            gb = BlockGrid((sum(ga.splits[1]), sum(gb.splits[1])),
                           (ga.splits[1], gb.splits[1]))
            b = lift(op.inputs[1], gb, tb)
            if b is None:
                return False

        def a_block(i, q):
            return a.block((q, i) if ta else (i, q))

        def b_block(q, j):
            return b.block((j, q) if tb else (q, j))

        rows, cols = ga.splits[0], gb.splits[1]
        gk = len(ga.splits[1])
        attrs = {"transpose_a": ta, "transpose_b": tb}
        blocks = []
        for i in range(len(rows)):
            for j in range(len(cols)):
                parts = [
                    self._op("MatMul", [a_block(i, q), b_block(q, j)],
                             dict(attrs), ctrl).outputs[0]
                    for q in range(gk)
                ]
                blocks.append(pair_tree(
                    parts,
                    lambda u, v: self._op("Add", [u, v], {}, ctrl).outputs[0],
                ))
        grid = BlockGrid((sum(rows), sum(cols)), (rows, cols))
        self.tmap[id(op.outputs[0])] = BlockedValue(grid, blocks)
        return True

    # -- reductions -----------------------------------------------------------

    def _lower_reduce(self, op, combine_name=None, out_key=None):
        ctrl = self._controls(op)
        bv = self.mapped(op.inputs[0])
        axis = op.attrs.get("axis")
        keepdims = bool(op.attrs.get("keepdims", False))
        if isinstance(axis, (list, tuple)):
            return False  # multi-axis: materialize
        combine_name = combine_name or _REDUCE_COMBINE_OP[op.type]

        def combine(u, v):
            return self._op(combine_name, [u, v], {}, ctrl).outputs[0]

        grid = bv.grid
        if axis is None:
            reduced = [
                self._op(op.type, [b], {"axis": None, "keepdims": keepdims},
                         ctrl).outputs[0]
                for b in bv.blocks
            ]
            result = pair_tree(reduced, combine)
            self._store_reduced(op, result, out_key)
            return True
        axis = int(axis) % grid.ndim
        reduced = [
            self._op(op.type, [b], {"axis": axis, "keepdims": keepdims},
                     ctrl).outputs[0]
            for b in bv.blocks
        ]
        out_grid = grid.reduced(axis, keepdims=keepdims)
        gd = grid.grid_shape[axis]
        if gd == 1:
            self._store_reduced(op, BlockedValue(out_grid, reduced), out_key)
            return True
        blocks = []
        for out_entry in out_grid.entries():
            out_entry = list(out_entry)
            if keepdims:
                template = out_entry
            else:
                template = out_entry[:axis] + [0] + out_entry[axis:]
            parts = []
            for q in range(gd):
                src = list(template)
                src[axis] = q
                parts.append(reduced[grid.entry_index(tuple(src))])
            blocks.append(pair_tree(parts, combine))
        self._store_reduced(op, BlockedValue(out_grid, blocks), out_key)
        return True

    def _store_reduced(self, op, value, out_key):
        self.tmap[out_key if out_key is not None else id(op.outputs[0])] = \
            value

    def _lower_mean(self, op):
        # Sum through the grid tree, divide once — the eager layer's
        # reduce_mean, staged (same dtype rule as the dense Mean kernel:
        # floats keep their dtype, integers go through float64).
        ctrl = self._controls(op)
        bv = self.mapped(op.inputs[0])
        axis = op.attrs.get("axis")
        if isinstance(axis, (list, tuple)):
            return False
        in_dtype = op.inputs[0].dtype
        if axis is None:
            count = 1
            for d in bv.grid.shape:
                count *= d
        else:
            count = bv.grid.shape[int(axis) % bv.grid.ndim]
        key = ("mean-sum", id(op.outputs[0]))
        sum_op = _FakeSum(op)
        if not self._lower_reduce(sum_op, combine_name="Add", out_key=key):
            return False
        total = self.tmap.pop(key)
        if in_dtype.is_floating:
            divisor = self.new.constant(count, dtype=in_dtype)
        else:
            divisor = self.new.constant(float(count), dtype="float64")

        def div(t):
            return self._op("Div", [t, divisor], {}, ctrl).outputs[0]

        if isinstance(total, BlockedValue):
            result = BlockedValue(total.grid, [div(b) for b in total.blocks])
        else:
            result = div(total)
        self.tmap[id(op.outputs[0])] = result
        return True

    # -- layout ops -----------------------------------------------------------

    def _lower_concat(self, op):
        ctrl = self._controls(op)
        vals = [self.mapped(t) for t in op.inputs]
        if not vals or not all(isinstance(v, BlockedValue) for v in vals):
            return False
        first = vals[0]
        ndim = first.grid.ndim
        axis = int(op.attrs.get("axis", 0)) % ndim
        aligned = [first]
        for t, v in zip(op.inputs[1:], vals[1:]):
            want = tuple(
                v.grid.splits[d] if d == axis else first.grid.splits[d]
                for d in range(ndim)
            )
            if v.grid.splits != want:
                v = self.to_blocked(
                    self.to_dense(t), BlockGrid(v.grid.shape, want), ctrl)
            aligned.append(v)
        splits = list(first.grid.splits)
        splits[axis] = tuple(
            b for v in aligned for b in v.grid.splits[axis])
        shape = list(first.grid.shape)
        shape[axis] = sum(splits[axis])
        out_grid = BlockGrid(tuple(shape), tuple(splits))
        starts, acc = [], 0
        for v in aligned:
            starts.append(acc)
            acc += v.grid.grid_shape[axis]
        blocks = []
        for entry in out_grid.entries():
            g = entry[axis]
            src = 0
            while src + 1 < len(aligned) and starts[src + 1] <= g:
                src += 1
            src_entry = list(entry)
            src_entry[axis] = g - starts[src]
            blocks.append(aligned[src].block(tuple(src_entry)))
        self.tmap[id(op.outputs[0])] = BlockedValue(out_grid, blocks)
        return True

    def _lower_transpose(self, op):
        ctrl = self._controls(op)
        bv = self.mapped(op.inputs[0])
        perm = op.attrs.get("perm")
        ndim = bv.grid.ndim
        if perm is None:
            perm = tuple(range(ndim - 1, -1, -1))
        perm = tuple(int(p) % ndim for p in perm)
        out_grid = bv.grid.transposed(perm)
        blocks = []
        for entry in out_grid.entries():
            src = [0] * ndim
            for j, p in enumerate(perm):
                src[p] = entry[j]
            blocks.append(self._op(
                "Transpose", [bv.block(tuple(src))], {"perm": perm},
                ctrl).outputs[0])
        self.tmap[id(op.outputs[0])] = BlockedValue(out_grid, blocks)
        return True

    def _lower_getitem(self, op):
        if len(op.inputs) != 1:
            return False  # tensor-valued indices: materialize
        ctrl = self._controls(op)
        bv = self.mapped(op.inputs[0])
        index = []
        for entry in op.attrs.get("spec", ()):
            if entry[0] == "idx":
                index.append(int(entry[1]))
            elif entry[0] == "slice" and entry[3] in (None, 1):
                index.append(slice(entry[1], entry[2], None))
            else:
                return False
        try:
            plan = bv.grid.slice_plan(tuple(index))
        except (ValueError, IndexError, TypeError):
            return False
        kept = [d for d, p in enumerate(plan) if p[0] == "slice"]
        new_splits = tuple(
            tuple(hi - lo for _, lo, hi in plan[d][1]) for d in kept)
        if not kept:
            # Fully integer-indexed: a scalar out of one source block.
            entry = tuple(p[1] for p in plan)
            spec = tuple(("idx", p[2]) for p in plan)
            out = self._op("GetItem", [bv.block(entry)], {"spec": spec},
                           ctrl).outputs[0]
            out.set_shape(())
            self.tmap[id(op.outputs[0])] = out
            return True
        new_grid = BlockGrid(tuple(sum(d) for d in new_splits), new_splits)
        blocks = []
        for entry in new_grid.entries():
            src_entry, spec, shp = [], [], []
            it = iter(entry)
            for p in plan:
                if p[0] == "idx":
                    src_entry.append(p[1])
                    spec.append(("idx", p[2]))
                else:
                    src, lo, hi = p[1][next(it)]
                    src_entry.append(src)
                    spec.append(("slice", lo, hi, None))
                    shp.append(hi - lo)
            src_block = bv.block(tuple(src_entry))
            if (len(spec) == len(shp)
                    and tuple(shp) == bv.grid.block_shape(tuple(src_entry))):
                blocks.append(src_block)  # whole block kept as-is
                continue
            out = self._op("GetItem", [src_block], {"spec": tuple(spec)},
                           ctrl).outputs[0]
            out.set_shape(tuple(shp))
            blocks.append(out)
        self.tmap[id(op.outputs[0])] = BlockedValue(new_grid, blocks)
        return True


class _FakeSum:
    """A ``Sum`` view of a ``Mean`` op for :meth:`_Lowering._lower_reduce`."""

    __slots__ = ("type", "inputs", "attrs", "outputs", "control_inputs")

    def __init__(self, mean_op):
        self.type = "Sum"
        self.inputs = mean_op.inputs
        self.attrs = mean_op.attrs
        self.outputs = mean_op.outputs
        self.control_inputs = mean_op.control_inputs


def lower_blocked_graph(graph, feed_tensors, fetch_tensors, block_grids):
    """Lower ``graph`` into a per-block graph.

    Args:
      graph: the traced (and optimized) source graph.
      feed_tensors: the runtime feed tensors of ``graph``, in binding
        order.
      fetch_tensors: the fetch tensors (``None`` entries allowed).
      block_grids: ``{id(feed tensor): BlockGrid}`` for the feeds that
        arrive block-partitioned.

    Returns:
      A :class:`LoweredGraph`; its fetches are always dense.
    """
    lw = _Lowering(graph, block_grids)
    for op in graph.ops:
        lw.lower_op(op)

    feeds, widths = [], []
    for t in feed_tensors:
        v = lw.tmap[id(t)]
        if isinstance(v, BlockedValue):
            feeds.extend(v.blocks)
            widths.append(len(v.blocks))
        else:
            feeds.append(v)
            widths.append(1)

    fetches = []
    for t in fetch_tensors:
        if t is None:
            fetches.append(None)
        else:
            fetches.append(lw.to_dense(t))
    return LoweredGraph(lw.new, feeds, widths, fetches)
