"""``BlockArray``: a dense tensor stored as a grid of NumPy blocks.

The array is just ``(BlockGrid, row-major tuple of ndarrays)``; every
operation on it goes through :mod:`repro.blocks.ops`, which dispatches
each block through the same :mod:`repro.framework.registry` kernels the
eager executor and the compiled plans use — block-partitioned execution
is a *layout*, not a second math library.

Blocks are stored row-major in grid-entry order
(:meth:`BlockGrid.entries`); ``block_list`` exposes exactly that order,
which is also the placeholder feed order of blocked execution plans.
"""

from __future__ import annotations

import numpy as np

from .grid import BlockGrid

__all__ = ["BlockArray"]


class BlockArray:
    """A dense tensor partitioned into a block grid."""

    __slots__ = ("_grid", "_blocks")

    def __init__(self, grid, blocks):
        if not isinstance(grid, BlockGrid):
            raise TypeError(f"grid must be a BlockGrid, got {type(grid).__name__}")
        blocks = tuple(np.asarray(b) for b in blocks)
        if len(blocks) != grid.num_blocks:
            raise ValueError(
                f"grid has {grid.num_blocks} blocks, got {len(blocks)} arrays"
            )
        for entry, b in zip(grid.entries(), blocks):
            want = grid.block_shape(entry)
            if b.shape != want:
                raise ValueError(
                    f"block {entry} has shape {b.shape}, grid expects {want}"
                )
        if blocks:
            dt = blocks[0].dtype
            for b in blocks[1:]:
                if b.dtype != dt:
                    raise ValueError(
                        f"blocks mix dtypes {dt} and {b.dtype}"
                    )
        self._grid = grid
        self._blocks = blocks

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dense(cls, value, block_shape=None, grid=None):
        """Partition a dense array.

        Exactly one of ``block_shape`` (ceil-partitioned via
        :meth:`BlockGrid.regular`) or ``grid`` must be given.
        """
        arr = np.asarray(value)
        if (block_shape is None) == (grid is None):
            raise ValueError("pass exactly one of block_shape or grid")
        if grid is None:
            grid = BlockGrid.regular(arr.shape, block_shape)
        elif grid.shape != arr.shape:
            raise ValueError(
                f"grid shape {grid.shape} does not match array shape "
                f"{arr.shape}"
            )
        blocks = tuple(
            np.ascontiguousarray(arr[grid.block_slices(entry)])
            for entry in grid.entries()
        )
        return cls(grid, blocks)

    @classmethod
    def from_blocks(cls, grid, blocks):
        """Wrap already-partitioned blocks (row-major entry order)."""
        return cls(grid, blocks)

    # -- metadata --------------------------------------------------------------

    @property
    def grid(self):
        return self._grid

    @property
    def shape(self):
        return self._grid.shape

    @property
    def ndim(self):
        return self._grid.ndim

    @property
    def dtype(self):
        return self._blocks[0].dtype if self._blocks else np.dtype(np.float32)

    @property
    def num_blocks(self):
        return self._grid.num_blocks

    # -- block access ----------------------------------------------------------

    def block(self, entry):
        """The ndarray at grid ``entry``."""
        return self._blocks[self._grid.entry_index(tuple(entry))]

    def block_list(self):
        """All blocks, row-major (the canonical flattening order)."""
        return list(self._blocks)

    def to_dense(self):
        """Assemble the dense ndarray."""
        grid = self._grid
        out = np.empty(grid.shape, dtype=self.dtype)
        for entry, b in zip(grid.entries(), self._blocks):
            out[grid.block_slices(entry)] = b
        return out

    # NumPy-protocol interop: dense on demand.
    numpy = to_dense

    def __array__(self, dtype=None):
        dense = self.to_dense()
        return dense if dtype is None else dense.astype(dtype)

    # -- re-gridding -----------------------------------------------------------

    def regrid(self, grid=None, block_shape=None):
        """The same values under a different partitioning.

        Currently assembles dense and re-partitions — correct for any
        grid pair; a zero-copy block-overlap path is a follow-up.
        """
        if (block_shape is None) == (grid is None):
            raise ValueError("pass exactly one of block_shape or grid")
        if grid is None:
            grid = BlockGrid.regular(self.shape, block_shape)
        if grid == self._grid:
            return self
        return BlockArray.from_dense(self.to_dense(), grid=grid)

    def reshape(self, new_shape, block_shape=None):
        """Reshape (dense round-trip), optionally re-partitioned."""
        dense = self.to_dense().reshape(tuple(int(d) for d in new_shape))
        if block_shape is None:
            block_shape = dense.shape
        return BlockArray.from_dense(dense, block_shape=block_shape)

    def __getitem__(self, index):
        """Basic indexing (ints, step-1 slices): trims blocks, no copies
        across block boundaries — slicing *re-grids*."""
        if not isinstance(index, tuple):
            index = (index,)
        plan = self._grid.slice_plan(index)
        kept_dims = [d for d, p in enumerate(plan) if p[0] == "slice"]
        new_splits = tuple(
            tuple(hi - lo for _, lo, hi in plan[d][1]) for d in kept_dims
        )
        new_shape = tuple(sum(dim) for dim in new_splits)
        if not kept_dims:
            # All dimensions integer-indexed: a scalar.
            ix = tuple(p[2] for p in plan)
            entry = tuple(p[1] for p in plan)
            return self.block(entry)[ix]
        new_grid = BlockGrid(new_shape, new_splits)
        blocks = []
        for entry in new_grid.entries():
            src_entry = []
            src_index = []
            it = iter(entry)
            for p in plan:
                if p[0] == "idx":
                    src_entry.append(p[1])
                    src_index.append(p[2])
                else:
                    src, lo, hi = p[1][next(it)]
                    src_entry.append(src)
                    src_index.append(slice(lo, hi))
            blocks.append(self.block(tuple(src_entry))[tuple(src_index)])
        return BlockArray(new_grid, blocks)

    # -- arithmetic (dispatches through repro.blocks.ops) ----------------------

    def _ops(self):
        from . import ops

        return ops

    def __add__(self, other):
        return self._ops().add(self, other)

    def __radd__(self, other):
        return self._ops().add(other, self)

    def __sub__(self, other):
        return self._ops().subtract(self, other)

    def __rsub__(self, other):
        return self._ops().subtract(other, self)

    def __mul__(self, other):
        return self._ops().multiply(self, other)

    def __rmul__(self, other):
        return self._ops().multiply(other, self)

    def __truediv__(self, other):
        return self._ops().divide(self, other)

    def __rtruediv__(self, other):
        return self._ops().divide(other, self)

    def __pow__(self, other):
        return self._ops().power(self, other)

    def __matmul__(self, other):
        return self._ops().matmul(self, other)

    def __rmatmul__(self, other):
        return self._ops().matmul(other, self)

    def __neg__(self):
        return self._ops().negative(self)

    def __abs__(self):
        return self._ops().abs(self)

    def sum(self, axis=None, keepdims=False):
        return self._ops().reduce_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        return self._ops().reduce_mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        return self._ops().reduce_max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims=False):
        return self._ops().reduce_min(self, axis=axis, keepdims=keepdims)

    def transpose(self, perm=None):
        return self._ops().transpose(self, perm=perm)

    @property
    def T(self):
        return self.transpose()

    def __repr__(self):
        return (f"<BlockArray shape={self.shape} grid={self._grid.grid_shape} "
                f"dtype={self.dtype}>")
