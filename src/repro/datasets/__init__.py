"""Synthetic datasets standing in for the paper's (see DESIGN.md §2)."""

from .mnist import load_mnist_synthetic
from .sequences import random_sequences, random_token_batches
from .treebank import Tree, load_treebank_synthetic

__all__ = [
    "load_mnist_synthetic",
    "random_sequences",
    "random_token_batches",
    "Tree",
    "load_treebank_synthetic",
]
