"""Synthetic MNIST substitute (DESIGN.md §2).

Table 2 measures training-machinery throughput, not accuracy, so shape
fidelity is what matters: 784-dim float32 "images", 10 integer classes.
The data is a deterministic mixture of Gaussian class prototypes, which
makes the linear model's loss actually decrease — handy for correctness
tests of the training loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["load_mnist_synthetic"]


def load_mnist_synthetic(num_examples=10000, num_classes=10, dim=784, seed=0):
    """Deterministic MNIST-shaped dataset.

    Returns:
      (images, labels): float32 [n, dim] in [0, 1]-ish range and int64 [n].
    """
    rng = np.random.default_rng(seed)
    prototypes = rng.normal(0.0, 1.0, size=(num_classes, dim))
    labels = rng.integers(0, num_classes, size=num_examples)
    noise = rng.normal(0.0, 0.5, size=(num_examples, dim))
    images = prototypes[labels] + noise
    # Squash into a pixel-like range.
    images = (1.0 / (1.0 + np.exp(-images))).astype(np.float32)
    return images, labels.astype(np.int64)
