"""Random sequence data for the RNN / seq2seq / beam search experiments."""

from __future__ import annotations

import numpy as np

__all__ = ["random_sequences", "random_token_batches"]


def random_sequences(batch_size, max_len, dim, min_len=None, seed=0):
    """Dense float sequences with per-example lengths.

    Returns:
      (data, lengths): float32 [batch, max_len, dim] and int32 [batch].
    """
    rng = np.random.default_rng(seed)
    data = rng.normal(0.0, 1.0, size=(batch_size, max_len, dim)).astype(np.float32)
    if min_len is None:
        min_len = max(1, max_len // 2)
    lengths = rng.integers(min_len, max_len + 1, size=batch_size).astype(np.int32)
    return data, lengths


def random_token_batches(batch_size, seq_len, vocab_size, num_batches=1, seed=0):
    """Integer token batches for seq2seq-style models.

    Returns:
      int64 [num_batches, batch, seq_len] (squeezed when num_batches == 1).
    """
    rng = np.random.default_rng(seed)
    out = rng.integers(
        1, vocab_size, size=(num_batches, batch_size, seq_len)
    ).astype(np.int64)
    return out[0] if num_batches == 1 else out
