"""Synthetic sentiment treebank (DESIGN.md §2).

Stands in for the Stanford Sentiment Treebank in Table 3: binary parse
trees with leaf word-embeddings and a 5-way root sentiment label.  Tree
shapes are sampled from a seeded branching process so the recursion depth
distribution resembles parse trees of short sentences.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tree", "load_treebank_synthetic"]


class Tree:
    """A binary parse-tree node.

    Attributes:
      left/right: child Trees (None for leaves).
      embedding: float32 [1, dim] leaf embedding (leaves only).
      label: int sentiment class (root carries the sentence label).
    """

    __slots__ = ("left", "right", "embedding", "label", "is_leaf", "value", "is_empty")

    def __init__(self, left=None, right=None, embedding=None, label=0, value=None):
        self.left = left
        self.right = right
        self.embedding = embedding
        self.label = label
        self.is_leaf = left is None and right is None
        # Fields used by the paper's §8 tree_prod example.
        self.value = value
        self.is_empty = False

    def num_leaves(self):
        if self.is_leaf:
            return 1
        return self.left.num_leaves() + self.right.num_leaves()

    def depth(self):
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())


class _EmptyTree:
    """Sentinel for the §8 ``tree_prod`` example (``tree.is_empty``)."""

    is_empty = True
    is_leaf = True
    left = None
    right = None
    value = None


EMPTY = _EmptyTree()


def _random_tree(rng, num_leaves, dim, label_pool):
    if num_leaves == 1:
        embedding = rng.normal(0.0, 1.0, size=(1, dim)).astype(np.float32)
        return Tree(embedding=embedding, label=int(rng.choice(label_pool)))
    split = int(rng.integers(1, num_leaves))
    left = _random_tree(rng, split, dim, label_pool)
    right = _random_tree(rng, num_leaves - split, dim, label_pool)
    return Tree(left=left, right=right, label=int(rng.choice(label_pool)))


def load_treebank_synthetic(num_trees=100, embed_dim=64, num_classes=5,
                            min_leaves=4, max_leaves=18, seed=0):
    """A list of random labelled parse trees."""
    rng = np.random.default_rng(seed)
    label_pool = np.arange(num_classes)
    trees = []
    for _ in range(num_trees):
        n = int(rng.integers(min_leaves, max_leaves + 1))
        trees.append(_random_tree(rng, n, embed_dim, label_pool))
    return trees
