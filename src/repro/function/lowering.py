"""Backend dispatch for ``repro.function``: lowering traces to Lantern.

``@repro.function(backend=...)`` routes each signature to one of two
compilation pipelines:

- ``"graph"`` — the PR-1 pipeline: AutoGraph trace → ``optimize_graph``
  → cached ``Session`` plan (:class:`~repro.function.ConcreteFunction`);
- ``"lantern"`` — this module: the same front-end lowered to the §8
  S-expression backend.  Non-recursive tensor traces are translated
  *from the optimized graph* (:func:`repro.lantern.lower_graph`);
  recursive functions and functions over runtime trees are staged
  directly through the shared AutoGraph SCT with a
  :class:`~repro.lantern.Stager`, discovering re-entrant helpers as it
  goes.  Either way the result is compiled once per signature with
  :func:`~repro.lantern.compile_program`, and the CPS backward pass is
  wired into the ``GradientTape`` bridge exactly like the graph
  backend's session-replayed gradient;
- ``"auto"`` — :func:`choose_backend` inspects the callable and the
  signature: self-recursion or runtime tree arguments ⇒ lantern,
  anything else ⇒ graph.

Lantern signatures are *more* polymorphic than graph ones: trees key by
kind (one compiled program serves every tree shape — the point of §8)
and numeric Python scalars become runtime tensor arguments instead of
baked constants.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
import threading

import numpy as np

from ..framework import dtypes, nest
from ..framework.eager import tape as tape_module
from ..framework.eager.tensor import EagerTensor
from ..framework.errors import StagingError
from ..framework.graph.optimize import optimize_graph
from ..lantern.compiler import compile_program
from ..lantern.lowering import LanternLoweringError, lower_graph
from ..lantern.staging import ReentrantStagingError, StagedArityError, Stager
from . import signature as signature_lib
from .concrete_function import classify_outputs, trace_func_graph
from .executable import BackendBuilder, Executable, ExportError, ExportSpec, \
    register_backend_builder
from .tensor_spec import TensorSpec

__all__ = [
    "LanternConcreteFunction",
    "LanternLoweringError",
    "choose_backend",
    "detect_self_recursion",
    "has_tree_leaves",
    "lanternize_signature",
]

# Staging restarts allowed while discovering re-entrant helpers /
# correcting output arities before giving up.
_MAX_STAGING_ATTEMPTS = 16


# ---------------------------------------------------------------------------
# Trace inspection: what should "auto" do, and which lantern route?
# ---------------------------------------------------------------------------


def _is_tree(leaf):
    """Duck-typed check for §8 runtime tree data (Tree / EMPTY sentinel)."""
    return (
        hasattr(leaf, "is_empty")
        and hasattr(leaf, "is_leaf")
        and hasattr(leaf, "left")
        and not isinstance(leaf, type)
    )


def has_tree_leaves(canonical):
    """True when any argument leaf is runtime tree data."""
    return any(_is_tree(leaf) for leaf in canonical.flat_leaves)


def closes_over_params(fn):
    """True when ``fn`` references lantern Params — through closure
    cells, default arguments or module globals it names — directly or
    one container deep.  Such functions must take the staged route: a
    graph trace would bake the Params into Const nodes and training
    would silently stop updating the compiled artifact."""
    from ..lantern.ir import Param

    candidates = list(getattr(fn, "__defaults__", None) or ())
    for cell in getattr(fn, "__closure__", None) or ():
        try:
            candidates.append(cell.cell_contents)
        except ValueError:  # empty cell
            continue
    code = getattr(fn, "__code__", None)
    fn_globals = getattr(fn, "__globals__", None)
    if code is not None and fn_globals is not None:
        for name in code.co_names:
            if name in fn_globals:
                candidates.append(fn_globals[name])
    for value in candidates:
        if isinstance(value, Param):
            return True
        if isinstance(value, dict):
            items = value.values()
        elif isinstance(value, (list, tuple)):
            items = value
        else:
            continue
        if any(isinstance(item, Param) for item in items):
            return True
    return False


def _function_ast(fn):
    """The ast.FunctionDef of ``fn``'s own source, or None."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        module = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    name = getattr(fn, "__name__", None)
    for node in ast.walk(module):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def detect_self_recursion(fn):
    """True when ``fn``'s body contains a call to its own name.

    This is the static face of the paper's re-entrant staged call: a
    function that recurses can only lower to the Lantern backend, whose
    IR supports staged function calls; the graph IR would unroll it
    against one concrete input (or never terminate).
    """
    node = _function_ast(fn)
    if node is None:
        return False
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == node.name):
            return True
    return False


class _ReturnArity(ast.NodeVisitor):
    """Collects return-statement arities, skipping nested functions."""

    def __init__(self):
        self.arities = set()

    def visit_FunctionDef(self, node):
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node):
        pass

    def visit_Return(self, node):
        value = node.value
        if isinstance(value, ast.Tuple):
            self.arities.add(len(value.elts))
        else:
            self.arities.add(1)


def infer_n_outputs(fn):
    """Statically infer how many values ``fn`` returns (default 1).

    Recursive functions must declare their output arity *before* the
    body finishes tracing (an IR ``call`` needs it); consistent
    ``return a, b`` statements let us infer it instead of asking.
    """
    node = _function_ast(fn)
    if node is None:
        return 1
    visitor = _ReturnArity()
    for stmt in node.body:
        visitor.visit(stmt)
    if len(visitor.arities) == 1:
        return visitor.arities.pop()
    return 1


def choose_backend(fn, canonical, recursive=None):
    """The ``backend="auto"`` decision for one call signature.

    Returns:
      ``(backend, reason)`` — re-entrant staged calls / recursion or
      runtime tree arguments pick lantern; plain tensor traces pick the
      graph backend.
    """
    if has_tree_leaves(canonical):
        return "lantern", "runtime tree arguments"
    if recursive is None:
        recursive = detect_self_recursion(fn)
    if recursive:
        return "lantern", "self-recursive function"
    return "graph", "tensor trace"


# ---------------------------------------------------------------------------
# Lantern signatures
# ---------------------------------------------------------------------------


def _scalar_spec(leaf):
    return TensorSpec(
        (), dtypes.int32 if isinstance(leaf, int) else dtypes.float32)


def lanternize_signature(canonical):
    """Re-key a canonical signature for the Lantern backend.

    Returns ``(canonical, leaf_plan)`` where ``leaf_plan`` maps each flat
    leaf to ``"tensor"`` (runtime numeric argument), ``"tree"`` (runtime
    tree data) or ``"const"`` (baked into the trace).  Compared to the
    graph backend: trees key by *kind* instead of identity, and numeric
    Python scalars become runtime tensor arguments instead of
    value-specialized constants — one compiled program serves every tree
    and every scalar value.
    """
    st, tokens = canonical.key
    new_tokens = []
    leaf_plan = []
    tensor_indices = []
    specs = []
    keepalive = []
    spec_iter = iter(canonical.specs)
    tensor_set = set(canonical.tensor_indices)

    for i, leaf in enumerate(canonical.flat_leaves):
        if i in tensor_set:
            spec = next(spec_iter)
            leaf_plan.append("tensor")
            tensor_indices.append(i)
            specs.append(spec)
            new_tokens.append(("T", spec))
        elif _is_tree(leaf):
            leaf_plan.append("tree")
            new_tokens.append(("LT", "tree"))
        elif isinstance(leaf, (int, float)) and not isinstance(leaf, bool):
            spec = _scalar_spec(leaf)
            leaf_plan.append("tensor")
            tensor_indices.append(i)
            specs.append(spec)
            new_tokens.append(("T", spec))
        else:
            leaf_plan.append("const")
            new_tokens.append(tokens[i])
            if tokens[i][0] in ("V", "O"):
                keepalive.append(leaf)

    key = ("lantern", st, tuple(new_tokens))
    lanternized = signature_lib.CanonicalSignature(
        key=key,
        relaxed_key=key,
        structure=canonical.structure,
        flat_leaves=canonical.flat_leaves,
        tensor_indices=tensor_indices,
        specs=specs,
        keepalive=keepalive,
    )
    return lanternized, leaf_plan


# ---------------------------------------------------------------------------
# The lantern concrete function
# ---------------------------------------------------------------------------


class LanternConcreteFunction(Executable):
    """One signature of a ``repro.function`` compiled to the §8 backend.

    Two construction routes, both producing a
    :class:`~repro.lantern.CompiledProgram` cached for the signature:

    - **graph-lowered**: trace with AutoGraph into a ``FuncGraph``,
      optimize, then translate the optimized graph to Lantern IR;
    - **staged**: stage the callable directly with a ``Stager`` (needed
      for recursion and runtime trees), promoting re-entrant helper
      functions to IR functions as discovery finds them.
    """

    backend = "lantern"

    def __init__(self, python_function, canonical, leaf_plan, name,
                 autograph=True, optimize=True, freeze_captures=False):
        self._python_function = python_function
        self._canonical = canonical
        self._leaf_plan = list(leaf_plan)
        self._py_signature = signature_lib.signature_of(python_function)
        self.name = name
        # The IR function name becomes a Python identifier in the
        # generated source; sanitize <lambda> and the like.
        raw = getattr(python_function, "__name__", "fn")
        fn_name = re.sub(r"\W", "_", raw)
        if not fn_name or fn_name[0].isdigit():
            fn_name = f"fn_{fn_name}"
        self._fn_name = fn_name
        self._param_kinds = [p for p in self._leaf_plan if p != "const"]
        # External captures (graph-lowered route only; the staged route's
        # state carriers are lantern Params, already mutable in place).
        self._capture_entries = []
        self._capture_params = []
        self._capture_lock = threading.Lock()

        needs_staging = ("tree" in self._param_kinds
                         or detect_self_recursion(python_function)
                         or closes_over_params(python_function))
        if needs_staging:
            # freeze_captures does not apply here: the staged route's
            # closed-over state carriers are lantern Params, which are
            # runtime storage by construction.
            self.route = "staged"
            self._build_staged()
        else:
            self.route = "graph-lowered"
            self._build_graph_lowered(autograph, optimize,
                                      freeze_captures=freeze_captures)

    # -- construction ------------------------------------------------------

    def _staged_params_and_leaves(self, stager):
        staged_params = []
        call_leaves = list(self._canonical.flat_leaves)
        for i, plan in enumerate(self._leaf_plan):
            if plan == "const":
                continue
            param = stager.staged_arg(plan, f"a_{self._fn_name}_")
            staged_params.append(param)
            call_leaves[i] = param
        return staged_params, call_leaves

    def _helper_ir_name(self, target, helpers):
        """A unique, identifier-safe IR name for a promoted helper."""
        base = re.sub(r"\W", "_", getattr(target, "__name__", "helper"))
        if not base or base[0].isdigit():
            base = f"fn_{base}"
        taken = {h["ir_name"] for h in helpers.values()} | {self._fn_name}
        name, i = base, 1
        while name in taken:
            name = f"{base}_{i}"
            i += 1
        return name

    def _build_staged(self):
        fn = self._python_function
        n_outputs = infer_n_outputs(fn)
        # Promoted re-entrant helpers, keyed by the function *object*
        # (two same-named closures must not collide).
        helpers = {}
        for _ in range(_MAX_STAGING_ATTEMPTS):
            stager = Stager()
            try:
                with stager.active():
                    # Declare every known helper before tracing any body:
                    # recursive helpers that call each other intercept
                    # instead of inlining forever.
                    for target, h in helpers.items():
                        stager.declare_staged(
                            target, h["kinds"], n_outputs=h["n_outputs"],
                            name=h["ir_name"])
                    stager.trace_declared()
                    staged_params, call_leaves = \
                        self._staged_params_and_leaves(stager)
                    call_args, call_kwargs = nest.pack_sequence_as(
                        self._canonical.structure, call_leaves)
                    fdef = stager.stage_function(
                        fn, staged_params, list(call_args), call_kwargs,
                        n_outputs=n_outputs, name=self._fn_name)
            except ReentrantStagingError as e:
                if e.target not in helpers:
                    helpers[e.target] = {
                        "kinds": e.arg_kinds,
                        "n_outputs": infer_n_outputs(e.target),
                        "ir_name": self._helper_ir_name(e.target, helpers),
                    }
                continue
            except StagedArityError as e:
                for h in helpers.values():
                    if h["ir_name"] == e.name:
                        h["n_outputs"] = e.actual
                        break
                else:
                    n_outputs = e.actual
                continue
            self.program = stager.program
            self._compiled = compile_program(stager.program, with_grad=True)
            self._n_outputs = fdef.n_outputs
            self._output_template = [("t", i) for i in range(fdef.n_outputs)]
            self._output_structure = (
                tuple([None] * fdef.n_outputs) if fdef.n_outputs > 1
                else None)
            return
        raise LanternLoweringError(
            f"Staging {self._fn_name!r} to Lantern did not converge after "
            f"{_MAX_STAGING_ATTEMPTS} attempts (re-entrant helper or "
            "output-arity discovery loop)"
        )

    def _build_graph_lowered(self, autograph, optimize, freeze_captures=False):
        fn = self._python_function
        fg, placeholders, result = trace_func_graph(
            fn, self._canonical, self.name, autograph=autograph,
            freeze_captures=freeze_captures)
        if fg.get_collection("variables"):
            raise LanternLoweringError(
                f"{self._fn_name!r} creates Variables; the Lantern backend "
                "has no variable state — use Params or backend='graph'"
            )
        stateful = [op.name for op in fg.ops if op.op_def.stateful]
        if stateful:
            raise LanternLoweringError(
                f"{self._fn_name!r} stages stateful ops {stateful}; the "
                "Lantern backend is purely functional — use backend='graph'"
            )
        self._output_template, tensor_outs = classify_outputs(
            fg, result, self.name)
        if not tensor_outs:
            raise LanternLoweringError(
                f"{self._fn_name!r} returns no tensors (constant-only "
                "outputs); there is nothing to compile for the Lantern "
                "backend — use backend='graph'"
            )
        self._output_structure = result
        self._capture_entries = list(fg.external_captures)
        capture_phs = [c.placeholder for c in self._capture_entries]
        anchors = tensor_outs + placeholders + capture_phs
        if optimize and tensor_outs:
            opt_graph, fmap = optimize_graph(fg, anchors)
            remap = fmap.__getitem__
        else:
            opt_graph = fg
            remap = lambda t: t  # noqa: E731
        self.optimized_graph = opt_graph
        program, fdef, capture_params = lower_graph(
            opt_graph,
            [remap(ph) for ph in placeholders],
            [remap(t) for t in tensor_outs],
            name=self._fn_name,
            captures=[
                (remap(c.placeholder), c.name, c.resolve())
                for c in self._capture_entries
            ],
        )
        # entry -> the Param mirroring it in the compiled program; the
        # Param's storage is refreshed from the capture source before
        # every execution, so optimizer steps and weight hot-swaps are
        # visible with no recompilation (same contract as the graph
        # backend's capture feeds).
        self._capture_params = [
            (c, capture_params[c.name]) for c in self._capture_entries
            if c.name in capture_params
        ]
        self.program = program
        self._compiled = compile_program(program, with_grad=True)
        self._n_outputs = fdef.n_outputs

    # -- introspection -----------------------------------------------------

    @property
    def compiled_program(self):
        """The executable lantern artifact (``.source`` is inspectable)."""
        return self._compiled

    @property
    def source(self):
        """Generated Python source (stand-in for Lantern's emitted C++)."""
        return self._compiled.source

    @property
    def params(self):
        """Closure Params staged into the program (name -> Param)."""
        return self._compiled.params

    @property
    def structured_input_signature(self):
        spec_iter = iter(self._canonical.specs)
        out = []
        for plan in self._leaf_plan:
            if plan == "tensor":
                out.append(next(spec_iter))
            elif plan == "tree":
                out.append("Tree")
        return out

    @property
    def variables(self):
        """The program's Params (lantern's state carriers)."""
        return list(self._compiled.params.values())

    # -- captures -----------------------------------------------------------

    @property
    def captures(self):
        """Ordered external captures (graph-lowered route; may be empty)."""
        return list(self._capture_entries)

    def capture_values(self):
        """Current capture values (and staged-route Param values), by name."""
        with self._capture_lock:
            out = {c.name: np.asarray(c.resolve())
                   for c in self._capture_entries}
            for name, param in self._compiled.params.items():
                out.setdefault(name, np.asarray(param.value))
        return out

    def set_capture_values(self, mapping):
        """Atomically replace capture (or Param) values — no recompile.

        Keys name either an external capture (graph-lowered route:
        Variables / eager tensors, which are written through) or a
        staged-route lantern Param (updated in place).
        """
        by_name = {c.name: c for c in self._capture_entries}
        staged = []
        for name, value in mapping.items():
            entry = by_name.get(name)
            if entry is None and name not in self._compiled.params:
                known = sorted(set(by_name) | set(self._compiled.params))
                raise KeyError(
                    f"{self.name!r} has no capture or Param named "
                    f"{name!r}; known: {known}"
                )
            value = np.asarray(value, np.float32)
            # Validate every entry before writing any: a bad value in a
            # multi-tensor swap must not leave the model half-swapped.
            if entry is not None:
                if not entry.placeholder.shape.is_compatible_with(
                        value.shape):
                    raise ValueError(
                        f"Capture {name!r} expects shape "
                        f"{entry.placeholder.shape}, got {value.shape}"
                    )
            else:
                expect = self._compiled.params[name].value.shape
                if value.shape != expect:
                    raise ValueError(
                        f"Param {name!r} expects shape {expect}, "
                        f"got {value.shape}"
                    )
            staged.append((entry, name, value))
        with self._capture_lock:
            for entry, name, value in staged:
                if entry is not None:
                    if entry.kind == "variable":
                        entry.source._state.write(value)
                        entry.source._eager_value_cache = None
                    else:
                        # Rebind, don't mutate: an in-flight call keeps
                        # the consistent array it already read.
                        entry.source._value = value
                else:
                    self._rebind_param(self._compiled.params[name], value)
            self._sync_captures_locked()

    def _rebind_param(self, param, value):
        # Rebinding (not writing into) the Param's storage keeps a
        # concurrently executing compiled call on the array it already
        # read; _P must follow the rebind since it was built from the
        # old array object.
        param.value = value
        self._compiled.namespace["_P"][param.name] = value

    def _sync_captures_locked(self):
        for entry, param in self._capture_params:
            value = np.asarray(entry.resolve(), np.float32)
            if value is not param.value:
                self._rebind_param(param, value)

    def _sync_captures(self):
        """Refresh capture Params from their sources before executing."""
        if not self._capture_params:
            return
        with self._capture_lock:
            self._sync_captures_locked()

    # -- export -------------------------------------------------------------

    def export_spec(self, freeze=True):
        """Serialize the staged program with current Param values.

        Lantern programs always checkpoint Params separately from the
        instruction payload, so ``freeze`` only controls whether the
        artifact *advertises* them as swappable captures
        (``freeze=False``) or as baked state (``freeze=True``).
        """
        from ..lantern.serialize import (
            LanternSerializationError, program_to_payload)

        template, descriptor = self._export_output_parts()
        self._sync_captures()
        try:
            payload, arrays = program_to_payload(self.program)
        except LanternSerializationError as e:
            raise ExportError(str(e)) from e
        captures = []
        if not freeze:
            public = {p.name: c.name for c, p in self._capture_params}
            for param_name, key in payload["params"].items():
                captures.append({
                    "name": public.get(param_name, param_name),
                    "key": key,
                    "param": param_name,
                })
        payload = {"program": payload, "entry": self._fn_name}
        return ExportSpec(
            backend="lantern",
            name=self.name,
            input_specs=list(self.structured_input_signature),
            output_template=template,
            output_descriptor=descriptor,
            payload=payload,
            arrays=arrays,
            captures=captures,
        )

    def _check_exportable(self):
        self._export_output_parts()

    # -- execution ---------------------------------------------------------

    def __call__(self, *args, **kwargs):
        canonical = signature_lib.canonicalize(
            self._py_signature, args, kwargs)
        canonical, _ = lanternize_signature(canonical)
        self._check_compatible(canonical)
        return self._call_canonical(canonical)

    def _check_compatible(self, canonical):
        _, st_mine, tokens_mine = self._canonical.key
        _, st_theirs, tokens_theirs = canonical.key
        if st_mine != st_theirs or len(tokens_mine) != len(tokens_theirs):
            raise StagingError(
                f"Lantern concrete function {self.name!r} was compiled for "
                "a different argument structure"
            )
        for mine, theirs in zip(tokens_mine, tokens_theirs):
            if mine[0] == "T" and theirs[0] == "T":
                if not mine[1].is_compatible_with(theirs[1]):
                    raise StagingError(
                        f"Lantern concrete function {self.name!r} expects "
                        f"{mine[1]}, got {theirs[1]}"
                    )
            elif mine != theirs:
                raise StagingError(
                    f"Lantern concrete function {self.name!r} was "
                    f"specialized for argument {mine!r} but was called "
                    f"with {theirs!r}"
                )

    def _runtime_args(self, canonical):
        args = []
        for leaf, plan in zip(canonical.flat_leaves, self._leaf_plan):
            if plan == "const":
                continue
            if plan == "tensor" and isinstance(leaf, EagerTensor):
                args.append(leaf.numpy())
            else:
                args.append(leaf)
        return args

    def _variable_capture_params(self):
        return [(c, p) for c, p in self._capture_params
                if c.kind == "variable"]

    def _call_canonical(self, canonical):
        tape_active = bool(tape_module._TAPE_STACK)
        # Pre-call variable values: the tape watches these eager reads.
        var_caps = self._variable_capture_params() if tape_active else []
        var_inputs = tuple(c.source.value() for c, _ in var_caps)
        self._sync_captures()
        out = self._compiled.namespace[self._fn_name](
            *self._runtime_args(canonical))
        results, bwd = out[:-1], out[-1]
        tensor_outputs = tuple(
            EagerTensor(np.asarray(r)) for r in results)
        if tape_active and tensor_outputs:
            eager_inputs = tuple(
                leaf if isinstance(leaf, EagerTensor)
                else EagerTensor(np.asarray(leaf))
                for leaf, plan in zip(canonical.flat_leaves, self._leaf_plan)
                if plan == "tensor"
            ) + var_inputs
            self._record_on_tape(
                f"{self.name}_lantern_call",
                self._make_grad_fn(bwd, var_caps),
                eager_inputs, tensor_outputs)
        return self._pack_outputs(tensor_outputs)

    def call_flat(self, flat_args):
        """Run the compiled program on flat runtime arguments.

        ``flat_args`` holds one value per :attr:`signature` entry —
        numeric arrays for ``TensorSpec`` slots, tree data for ``"Tree"``
        slots — mirroring the graph backend's ``call_flat``.
        """
        self._sync_captures()
        out = self._compiled.namespace[self._fn_name](*[
            a.numpy() if isinstance(a, EagerTensor) else a
            for a in flat_args
        ])
        results = out[:-1]
        tensor_outputs = tuple(EagerTensor(np.asarray(r)) for r in results)
        return self._pack_outputs(tensor_outputs)

    def call_with_grad(self, *args, seed=1.0, **kwargs):
        """Forward + CPS backward in one shot, without a tape.

        Zeroes the program's gradient slots, runs the continuation with
        ``seed`` and syncs accumulated gradients onto the Params (read
        them via :attr:`params`).  Returns the forward outputs.
        """
        canonical = signature_lib.canonicalize(
            self._py_signature, args, kwargs)
        canonical, _ = lanternize_signature(canonical)
        self._check_compatible(canonical)
        self._sync_captures()
        out = self._compiled.namespace[self._fn_name](
            *self._runtime_args(canonical))
        results, bwd = out[:-1], out[-1]
        self._compiled.zero_grads()
        bwd(*([seed] * len(results)))
        self._compiled.sync_param_grads()
        tensor_outputs = tuple(EagerTensor(np.asarray(r)) for r in results)
        return self._pack_outputs(tensor_outputs)

    def zero_grads(self):
        """Zero the program's Param gradient slots (PyTorch-style)."""
        self._compiled.zero_grads()

    def _make_grad_fn(self, bwd, var_caps=()):
        def grad_fn(record, *out_grads):
            seeds = [
                g.numpy() if isinstance(g, EagerTensor) else np.asarray(g)
                for g in out_grads
            ]
            # No zeroing here: a tape may replay several recorded calls
            # of this function (e.g. a summed batch loss) and their Param
            # contributions must accumulate.  Callers reading
            # ``cf.params[...].grad`` across training steps call
            # ``zero_grads()`` between steps, like any autograd engine.
            # (A call is only replayed if a *watched* tensor feeds it —
            # Params are invisible to the tape; Param-only training
            # should use ``call_with_grad``.)
            slots = self._compiled.namespace["_G"]
            before = [slots[p.name].copy() for _, p in var_caps]
            d_params = bwd(*seeds)
            self._compiled.sync_param_grads()
            grads = []
            for pos, kind in enumerate(self._param_kinds):
                if kind == "tensor":
                    grads.append(EagerTensor(np.asarray(d_params[pos])))
            # Variable-capture gradients: this call's contribution is the
            # delta its continuation accumulated into the Param slot
            # (the slot itself may carry other replayed calls' grads).
            for (_, p), pre in zip(var_caps, before):
                grads.append(EagerTensor(np.asarray(slots[p.name] - pre)))
            return grads

        return grad_fn

    def __repr__(self):
        return (f"<LanternConcreteFunction {self.name!r} route={self.route} "
                f"functions={list(self.program.functions)}>")


LanternConcreteFunction.__call__.__ag_do_not_convert__ = True
LanternConcreteFunction.call_flat.__ag_do_not_convert__ = True
LanternConcreteFunction.call_with_grad.__ag_do_not_convert__ = True


def lower_concrete_function(python_function, canonical, name,
                            autograph=True, optimize=True):
    """Compile ``python_function`` for one lanternized signature."""
    lanternized, leaf_plan = lanternize_signature(canonical)
    return LanternConcreteFunction(
        python_function, lanternized, leaf_plan, name,
        autograph=autograph, optimize=optimize)


class _LanternBackendBuilder(BackendBuilder):
    """The lantern route: lanternize the key, lower (once) per signature."""

    name = "lantern"

    def prepare(self, canonical):
        return lanternize_signature(canonical)

    def build(self, python_function, canonical, leaf_plan, name, *,
              autograph, optimize, freeze_captures=False, num_workers=None,
              fuse=True):
        # ``fuse`` is a graph-backend plan-compiler knob; the lantern
        # pipeline has no step plans to fuse, so it is accepted and
        # ignored.
        for spec in canonical.specs:
            if getattr(spec, "grid", None) is not None:
                from ..framework.errors import StagingError

                raise StagingError(
                    f"repro.function {name!r} has a block-partitioned "
                    "input; blocked plans are a graph-backend feature — "
                    "use backend='graph'"
                )
        return LanternConcreteFunction(
            python_function, canonical, leaf_plan, name,
            autograph=autograph, optimize=optimize,
            freeze_captures=freeze_captures)


register_backend_builder(_LanternBackendBuilder())
