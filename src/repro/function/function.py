"""``repro.function``: the polymorphic tracing-JIT entry point.

``Function`` wraps a Python callable and manages a *signature-keyed cache
of concrete functions* (the design ``tf.function`` shipped around
AutoGraph):

- first call with a new input signature → trace through AutoGraph,
  optimize, compile — and remember the result;
- later calls with the same signature → execute the cached plan;
- tensor leaves key by ``TensorSpec`` (dtype/shape), Python values key by
  value (constant specialization), objects by identity;
- optional *shape relaxation*: after ``retrace_limit`` traces a
  shape-polymorphic workload stops minting one graph per shape and
  traces once with all dimensions unknown.

Inside an enclosing graph trace the wrapper inlines instead of caching,
so nested ``@repro.function`` compositions produce one flat graph.
"""

from __future__ import annotations

import functools
import threading
import warnings

from ..framework import context
from ..observe.events import RECORDER as _REC
from . import signature as signature_lib
from .executable import get_backend_builder

__all__ = ["Function", "function"]


_BACKENDS = ("graph", "lantern", "auto")


class Function:
    """A callable managing one concrete function per input signature."""

    def __init__(self, python_function, name=None, autograph=True,
                 optimize=True, reduce_retracing=False, retrace_limit=8,
                 backend="graph", freeze_captures=False, num_workers=None,
                 fuse=True):
        original = getattr(python_function, "__ag_original__", None)
        if original is not None:
            python_function = original
        if not callable(python_function):
            raise TypeError(
                f"repro.function requires a callable, got "
                f"{type(python_function).__name__}"
            )
        if backend not in _BACKENDS:
            raise ValueError(
                f"Unknown repro.function backend {backend!r}; expected one "
                f"of {_BACKENDS}"
            )
        self._python_function = python_function
        self._name = name or getattr(python_function, "__name__", "fn")
        self._autograph = autograph
        self._optimize = optimize
        self._reduce_retracing = reduce_retracing
        self._retrace_limit = retrace_limit
        self._backend = backend
        self._freeze_captures = freeze_captures
        self._num_workers = num_workers
        self._fuse = fuse
        # Lazily computed static-recursion verdict (auto dispatch).
        self._recursive = None
        # (concrete-function name, backend, reason) per trace, newest last.
        self._backend_decisions = []

        self._py_signature = signature_lib.signature_of(python_function)
        self._cache = {}
        self._keepalive = []
        self._lock = threading.Lock()
        self._inline_converted = None
        functools.update_wrapper(self, python_function, updated=())

    # -- diagnostics -----------------------------------------------------------

    @property
    def python_function(self):
        return self._python_function

    @property
    def name(self):
        return self._name

    @property
    def trace_count(self):
        """How many times this function has been traced (cache misses)."""
        return len(self._cache)

    @property
    def cache_size(self):
        return len(self._cache)

    @property
    def backend(self):
        """The configured backend ('graph', 'lantern' or 'auto')."""
        return self._backend

    @property
    def backend_decisions(self):
        """Per-trace dispatch log: (concrete name, backend, reason)."""
        return list(self._backend_decisions)

    def concrete_functions(self):
        """All cached concrete functions, oldest first."""
        return list(self._cache.values())

    def pretty_cache(self, plans=False):
        """Human-readable view of the cached signatures: backend, specs,
        export eligibility and model-server registrations.

        ``plans=True`` additionally dumps each graph-backend trace's
        compiled execution plan (steps, levels, fused groups, donation
        arms) — the "what did the planner actually compile?" view.
        """
        lines = []
        for cf in self._cache.values():
            specs = ", ".join(repr(s) for s in cf.structured_input_signature)
            ok, reason = cf.export_compatibility()
            export = "exportable" if ok else f"not exportable: {reason}"
            line = f"{cf.name}[{cf.backend}]({specs}) <{export}>"
            if cf.serving_names:
                line += f" serving={','.join(cf.serving_names)}"
            lines.append(line)
            if plans:
                dump = getattr(cf, "plan_describe", None)
                if dump is not None:
                    lines.extend("  " + ln for ln in dump().splitlines())
        return "\n".join(lines)

    # -- backend dispatch ------------------------------------------------------

    def _resolve_backend(self, canonical):
        """Pick the backend for this signature (and say why)."""
        if self._backend != "auto":
            return self._backend, "configured"
        from . import lowering

        return lowering.choose_backend(
            self._python_function, canonical, recursive=self._is_recursive())

    # -- the cache ------------------------------------------------------------

    def _lookup_or_build(self, canonical):
        """One cache, any backend: resolve, prepare the key, build once.

        Also the function layer's observability choke point: every call
        lands a ``function.cache_hits``/``function.cache_misses``
        counter, and — while the recorder is on — a span named
        ``cache_lookup`` (hit), ``trace`` (first build) or ``retrace``
        (subsequent build) tagged with the input signature key.
        """
        rec = _REC
        if not rec.enabled:
            n = len(self._cache)
            cf, canonical = self._lookup_or_build_inner(canonical)
            rec.counter("function.cache_hits" if len(self._cache) == n
                        else "function.cache_misses")
            return cf, canonical
        t0 = rec.begin()
        n = len(self._cache)
        cf, canonical = self._lookup_or_build_inner(canonical)
        built = len(self._cache) != n
        rec.counter("function.cache_misses" if built
                    else "function.cache_hits")
        name = ("retrace" if n else "trace") if built else "cache_lookup"
        rec.end(name, "function", t0, {
            "function": self._name,
            "signature": repr(canonical.key)[:200],
        })
        return cf, canonical

    def _lookup_or_build_inner(self, canonical):
        """The uninstrumented lookup/build path.

        Every backend goes through the same path — the resolved
        :class:`~repro.function.executable.BackendBuilder` re-keys the
        signature (:meth:`prepare`) and mints the
        :class:`~repro.function.Executable` (:meth:`build`); the cache
        itself never special-cases a backend.
        """
        backend, reason = self._resolve_backend(canonical)
        builder = get_backend_builder(backend)
        canonical, build_ctx = builder.prepare(canonical)
        cf = self._cache.get(canonical.key)
        if cf is not None:
            return cf, canonical
        if builder.supports_relaxation and self._reduce_retracing:
            cf = self._cache.get(canonical.relaxed_key)
            if cf is not None:
                return cf, canonical
        with self._lock:
            cf = self._cache.get(canonical.key)
            if cf is not None:
                return cf, canonical
            if builder.supports_relaxation:
                if (self._reduce_retracing
                        and len(self._cache) >= self._retrace_limit):
                    # Too many shape-specialized traces: relax every tensor
                    # dimension so one generic graph absorbs future shapes.
                    canonical = canonical.relaxed()
                    cf = self._cache.get(canonical.key)
                    if cf is not None:
                        return cf, canonical
                if (not self._reduce_retracing
                        and len(self._cache) + 1 == self._retrace_limit):
                    warnings.warn(
                        f"repro.function {self._name!r} has been traced "
                        f"{self._retrace_limit} times. Frequent retracing is "
                        "expensive; pass varying Python scalars as tensors "
                        "(e.g. np.int32) or construct the Function with "
                        "reduce_retracing=True.",
                        stacklevel=3,
                    )
            cf = builder.build(
                self._python_function, canonical, build_ctx,
                f"{self._name}_{len(self._cache)}",
                autograph=self._autograph, optimize=self._optimize,
                freeze_captures=self._freeze_captures,
                num_workers=self._num_workers,
                fuse=self._fuse,
            )
            self._cache[canonical.key] = cf
            # Identity-keyed leaves (Variables, model objects) must stay
            # alive while the cache entry exists, or their recycled ids
            # could alias a different object to this trace.
            self._keepalive.extend(canonical.keepalive)
            self._backend_decisions.append((cf.name, builder.name, reason))
            return cf, canonical

    # -- calling ---------------------------------------------------------------

    def _is_recursive(self):
        if self._recursive is None:
            from . import lowering

            self._recursive = lowering.detect_self_recursion(
                self._python_function)
        return self._recursive

    def __call__(self, *args, **kwargs):
        if context.has_default_graph():
            # Lantern-bound functions cannot inline into a graph trace —
            # including auto-dispatched recursive ones, which would
            # otherwise unroll against a symbolic condition forever.
            if self._backend == "lantern" or (
                    self._backend == "auto" and self._is_recursive()):
                from ..framework.errors import StagingError

                raise StagingError(
                    f"repro.function {self._name!r} targets the Lantern "
                    "backend (recursion stages as re-entrant IR calls) and "
                    "cannot be inlined into an enclosing graph trace; call "
                    "it outside the graph or use backend='graph'"
                )
            return self._inline_symbolic(args, kwargs)
        canonical = signature_lib.canonicalize(self._py_signature, args, kwargs)
        cf, canonical = self._lookup_or_build(canonical)
        return cf._call_canonical(canonical)

    def _inline_symbolic(self, args, kwargs):
        """Inside an outer trace: stage into the enclosing graph directly."""
        import inspect

        if self._inline_converted is None:
            fn = self._python_function
            if self._autograph and (inspect.isfunction(fn)
                                    or inspect.ismethod(fn)):
                from .. import autograph as ag

                fn = ag.to_graph(fn)
            self._inline_converted = fn
        return self._inline_converted(*args, **kwargs)

    def get_concrete_function(self, *args, **kwargs):
        """The :class:`~repro.function.Executable` for these arguments.

        Resolves the backend exactly like a call would (``'graph'``,
        ``'lantern'``, or whatever ``'auto'`` picks for this signature)
        and returns the cached-or-freshly-built executable for *that*
        backend — a graph-route :class:`~repro.function.ConcreteFunction`
        or a lantern-route
        :class:`~repro.function.LanternConcreteFunction`; both implement
        the backend-neutral ``Executable`` protocol (``signature``,
        ``call_flat``, ``variables``, ``export_spec``), so the result
        can be exported with :func:`repro.serving.saved_function.save`
        or served by :class:`repro.serving.ModelServer` either way.

        Arguments may be concrete values or bare
        :class:`~repro.function.TensorSpec`s.
        """
        canonical = signature_lib.canonicalize(self._py_signature, args, kwargs)
        cf, _ = self._lookup_or_build(canonical)
        return cf

    # -- decorator plumbing ----------------------------------------------------

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return functools.partial(self.__call__, instance)

    def __repr__(self):
        return (f"<repro.function.Function {self._name!r} "
                f"traces={self.trace_count}>")


# The JIT machinery itself must never be source-converted when a Function
# is invoked from inside AutoGraph-generated code.
Function.__call__.__ag_do_not_convert__ = True
Function._inline_symbolic.__ag_do_not_convert__ = True
Function.get_concrete_function.__ag_do_not_convert__ = True


def function(func=None, *, name=None, autograph=True, optimize=True,
             reduce_retracing=False, retrace_limit=8, backend="graph",
             freeze_captures=False, num_workers=None, fuse=True):
    """Decorate ``func`` as a traced, cached graph function.

    Usable bare (``@repro.function``), with options
    (``@repro.function(reduce_retracing=True)``), or inline
    (``fast = repro.function(step)``).

    Args:
      func: the Python function to stage.
      name: optional display name for traces and diagnostics.
      autograph: convert ``func`` (and its call tree) with AutoGraph so
        data-dependent Python control flow stages into the graph.
      optimize: run DCE/const-folding/CSE on every trace.
      reduce_retracing: after ``retrace_limit`` traces, relax tensor
        shapes instead of minting one graph per shape.
      retrace_limit: trace budget before relaxing (or warning).
      backend: ``'graph'`` (trace → optimized graph → bound runtime
        plan), ``'lantern'`` (trace/stage → §8 S-expression IR →
        compiled code with CPS gradients; supports recursion and runtime
        trees), or ``'auto'`` (recursion or tree arguments pick lantern,
        anything else picks graph).
      freeze_captures: bake closed-over state (eager tensors,
        ``Variable`` reads) into each trace as *constants* instead of
        runtime-input captures.  Restores trace-time constant folding
        across the weights — for closures that really are constant; a
        frozen trace does not see later assignments or hot-swaps, and
        tape gradients do not flow to the frozen state.
      num_workers: worker-thread count for level-parallel plan execution
        (``repro.blocks``).  Functions with ``BlockArray`` inputs default
        to one worker per core; dense functions stay serial unless this
        is set.  ``1`` forces serial execution.
      fuse: collapse fusable elementwise step chains into compiled
        composite kernels in each trace's execution plan (graph
        backend; lantern ignores it).  ``False`` is the A/B lever for
        measuring what fusion buys.

    Returns:
      A :class:`Function`, or a decorator when called with options only.
    """
    if func is None:
        return functools.partial(
            function, name=name, autograph=autograph, optimize=optimize,
            reduce_retracing=reduce_retracing, retrace_limit=retrace_limit,
            backend=backend, freeze_captures=freeze_captures,
            num_workers=num_workers, fuse=fuse)
    return Function(
        func, name=name, autograph=autograph, optimize=optimize,
        reduce_retracing=reduce_retracing, retrace_limit=retrace_limit,
        backend=backend, freeze_captures=freeze_captures,
        num_workers=num_workers, fuse=fuse)
