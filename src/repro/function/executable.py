"""The backend-neutral ``Executable`` protocol.

Every compiled flavor of a ``repro.function`` signature — the graph
backend's :class:`~repro.function.ConcreteFunction`, the Lantern
backend's :class:`~repro.function.LanternConcreteFunction`, and
artifacts rehydrated from disk by :mod:`repro.serving.saved_function` —
implements this one surface:

- ``signature`` — the runtime-argument contract, one
  :class:`~repro.function.TensorSpec` (or the ``"Tree"`` marker) per
  flat argument, in ``call_flat`` order;
- ``call_flat(flat_args)`` — execute on flat runtime values and return
  the function's structured result;
- ``variables`` — the mutable state the executable closes over (graph
  ``Variable``s or lantern ``Param``s; empty for frozen artifacts);
- ``captures`` / ``capture_values()`` / ``set_capture_values()`` — the
  closed-over state lifted to runtime inputs, readable and atomically
  hot-swappable (no retrace) where the backend supports it;
- ``export_spec(freeze=True)`` — a serializable description of the
  compiled artifact (or :class:`ExportError` when the trace cannot
  leave the process); ``freeze=False`` keeps captures as named inputs
  with a separate weight checkpoint.

``Function``'s cache, the ``GradientTape`` bridge, the micro-batcher and
the model server are all written against this protocol, so the two
backends (and loaded artifacts) are interchangeable behind it.
"""

from __future__ import annotations

import abc

from ..framework import nest
from ..framework.eager import tape as tape_module

__all__ = [
    "BackendBuilder",
    "Executable",
    "ExecutableOpDef",
    "ExportError",
    "ExportSpec",
    "get_backend_builder",
    "register_backend_builder",
    "resolve_executable",
    "structure_to_descriptor",
    "descriptor_to_structure",
]


class ExportError(RuntimeError):
    """This executable cannot be serialized (and the reason why)."""


class ExportSpec:
    """A backend-tagged, serializable description of one executable.

    Attributes:
      backend: ``"graph"`` or ``"lantern"`` — selects the rehydrator.
      name: the concrete function's display name.
      input_specs: per runtime argument, ``TensorSpec`` or ``"tree"``.
      output_template: flat ``("t", index)`` / ``("c", value)`` leaves.
      output_descriptor: JSON-able structure descriptor for re-packing
        (see :func:`structure_to_descriptor`).
      payload: backend-specific JSON-able body (graph def / lantern
        program).
      arrays: name -> ndarray pool referenced from the payload; stored
        out-of-band (``.npz``) by the saver.
      captures: non-frozen exports only — one ``{"name", "key"}`` dict
        per external capture, in feed order; ``key`` indexes the weight
        checkpoint entry in ``arrays``.  Empty for frozen exports.
    """

    __slots__ = ("backend", "name", "input_specs", "output_template",
                 "output_descriptor", "payload", "arrays", "captures")

    def __init__(self, backend, name, input_specs, output_template,
                 output_descriptor, payload, arrays, captures=()):
        self.backend = backend
        self.name = name
        self.input_specs = list(input_specs)
        self.output_template = list(output_template)
        self.output_descriptor = output_descriptor
        self.payload = payload
        self.arrays = dict(arrays)
        self.captures = list(captures)


class ExecutableOpDef:
    """OpDef stand-in recording one whole executable call on a tape.

    Both backends' tape bridges use this: a traced/compiled call is one
    differentiable "op" whose ``grad_fn`` replays the backend's own
    backward (session-replayed graph gradient, or the captured CPS
    continuation).
    """

    __slots__ = ("name", "grad_fn", "num_outputs", "stateful")

    def __init__(self, name, grad_fn, num_outputs):
        self.name = name
        self.grad_fn = grad_fn
        self.num_outputs = num_outputs
        self.stateful = False


class Executable(abc.ABC):
    """One compiled signature, independent of the backend that built it."""

    #: Which pipeline produced this executable ("graph" / "lantern").
    backend = None

    # -- the protocol ------------------------------------------------------

    @property
    def signature(self):
        """Runtime-argument contract: ``TensorSpec`` / ``"Tree"`` leaves,
        in ``call_flat`` order."""
        return tuple(self.structured_input_signature)

    @abc.abstractmethod
    def call_flat(self, flat_args):
        """Execute on flat runtime values; returns the structured result."""

    @property
    @abc.abstractmethod
    def variables(self):
        """Mutable state this executable reads (Variables / Params)."""

    @abc.abstractmethod
    def export_spec(self):
        """Serializable :class:`ExportSpec`, or raise :class:`ExportError`."""

    # -- captures ----------------------------------------------------------

    @property
    def captures(self):
        """External state captured as runtime inputs (may be empty)."""
        return []

    def capture_values(self):
        """Current capture values, by capture name."""
        return {}

    def set_capture_values(self, mapping):
        """Atomically replace capture values (weight hot-swap).

        Backends with captures override this; the default refuses,
        naming the executable, so servers can surface a clear error.
        """
        if mapping:
            raise KeyError(
                f"{self.name!r} has no swappable captures"
            )

    # -- shared conveniences ----------------------------------------------

    def export_compatibility(self):
        """``(ok, reason)`` without building the full export payload."""
        try:
            self._check_exportable()
        except ExportError as e:
            return False, str(e)
        return True, ""

    def _check_exportable(self):
        """Cheap pre-flight for :meth:`export_spec`; default accepts."""

    @property
    def serving_names(self):
        """Names this executable is registered under in model servers."""
        return tuple(getattr(self, "_serving_names", ()))

    def _mark_served(self, name):
        names = getattr(self, "_serving_names", None)
        if names is None:
            names = []
            self._serving_names = names
        if name not in names:
            names.append(name)

    def _pack_outputs(self, tensor_outputs):
        """Rebuild the structured result from flat tensor outputs."""
        template = self._output_template
        if len(template) == 1 and template[0][0] == "t" and not isinstance(
                self._output_structure, (tuple, list, dict)):
            # Single tensor-leaf result — the overwhelmingly common case
            # on serving hot paths; skip the nest recursion entirely.
            return tensor_outputs[0]
        leaves = [
            tensor_outputs[payload] if kind == "t" else payload
            for kind, payload in template
        ]
        return nest.pack_sequence_as(self._output_structure, leaves)

    def _record_on_tape(self, op_name, grad_fn, eager_inputs, tensor_outputs):
        """Record this call as one differentiable op on the active tape."""
        tape_module.record_operation(
            ExecutableOpDef(op_name, grad_fn, len(tensor_outputs)),
            eager_inputs, tensor_outputs, {})

    def _export_output_parts(self):
        """The template/descriptor pair every backend's export shares."""
        template = []
        for kind, payload in self._output_template:
            if kind == "c" and not _json_able(payload):
                raise ExportError(
                    f"Constant output leaf {payload!r} of {self.name!r} is "
                    "not JSON-serializable; only numbers, strings, booleans "
                    "and None survive export"
                )
            template.append((kind, payload))
        return template, structure_to_descriptor(self._output_structure)


def _json_able(value):
    return value is None or isinstance(value, (bool, int, float, str))


def resolve_executable(fn, args, kwargs, caller):
    """The one Function-or-Executable entry-point contract.

    Shared by every surface taking "a function to deploy" —
    ``saved_function.save``, ``ModelServer.add_signature`` — so they
    dispatch identically: a polymorphic ``Function`` has its signature
    selected (and traced if needed) by ``args``/``kwargs``, a concrete
    ``Executable`` must come alone.
    """
    from .function import Function

    if isinstance(fn, Function):
        return fn.get_concrete_function(*args, **kwargs)
    if isinstance(fn, Executable):
        if args or kwargs:
            raise TypeError(
                f"{caller}(executable) takes no signature arguments; they "
                "only select a signature when passing a polymorphic Function"
            )
        return fn
    raise TypeError(
        f"{caller}() expects a repro.function Function or Executable, got "
        f"{type(fn).__name__}"
    )


# ---------------------------------------------------------------------------
# Backend builders: how Function's cache mints executables
# ---------------------------------------------------------------------------


class BackendBuilder:
    """One backend's recipe for turning a canonical signature into an
    :class:`Executable`.

    ``Function``'s cache is written against this interface only — no
    isinstance checks, no per-backend lookup methods.  A backend may
    re-key the signature in :meth:`prepare` (lantern widens scalars and
    trees) and returns whatever per-signature context :meth:`build`
    needs alongside it.
    """

    #: Registry name, also recorded in ``Function.backend_decisions``.
    name = None
    #: Whether ``reduce_retracing`` shape relaxation applies (the graph
    #: backend mints one trace per shape; lantern keys are already
    #: shape-blind where it matters, so relaxation is meaningless there).
    supports_relaxation = False

    def prepare(self, canonical):
        """Re-key ``canonical`` for this backend; returns
        ``(canonical, context)``."""
        return canonical, None

    def build(self, python_function, canonical, context, name, *,
              autograph, optimize, freeze_captures=False, num_workers=None,
              fuse=True):
        """Compile one executable for the prepared signature.

        ``freeze_captures`` asks the backend to bake closed-over state
        into the trace as constants (no runtime-input captures); a
        backend without that notion may ignore it.  ``num_workers``
        sizes the per-step scheduler of backends that execute plans
        level-parallel (the graph backend's blocked route); others may
        ignore it.  ``fuse`` toggles elementwise kernel fusion in
        backends that compile execution plans; others may ignore it.
        """
        raise NotImplementedError


_BACKEND_BUILDERS = {}


def register_backend_builder(builder):
    _BACKEND_BUILDERS[builder.name] = builder
    return builder


def get_backend_builder(name):
    builder = _BACKEND_BUILDERS.get(name)
    if builder is None and name == "lantern":
        # The lantern stack (IR, compiler, staging) stays unimported
        # until a lantern signature actually resolves.
        from . import lowering  # noqa: F401  (registers the builder)

        builder = _BACKEND_BUILDERS.get(name)
    if builder is None:
        raise ValueError(f"No backend builder registered for {name!r}")
    return builder


# ---------------------------------------------------------------------------
# Structure descriptors: nest structures <-> JSON
# ---------------------------------------------------------------------------


def structure_to_descriptor(structure):
    """Encode a nest structure (its shape, not its leaves) as JSON data.

    Supports tuples, lists and plain dicts; anything else is a leaf.
    Namedtuples do not survive a process boundary (the class is not
    shipped) and raise :class:`ExportError`.
    """
    if nest._is_namedtuple(structure):
        raise ExportError(
            f"Cannot export a {type(structure).__name__} return structure: "
            "namedtuple classes are not serialized — return a plain "
            "tuple/list/dict instead"
        )
    if isinstance(structure, dict):
        if type(structure) is not dict:
            raise ExportError(
                f"Cannot export a {type(structure).__name__} return "
                "structure; only plain dicts are serialized"
            )
        return {"kind": "dict",
                "items": {k: structure_to_descriptor(structure[k])
                          for k in sorted(structure)}}
    if isinstance(structure, (tuple, list)):
        return {"kind": "tuple" if isinstance(structure, tuple) else "list",
                "items": [structure_to_descriptor(v) for v in structure]}
    return {"kind": "leaf"}


def descriptor_to_structure(descriptor):
    """Rebuild a pack-compatible template from a structure descriptor.

    Leaves become ``None`` placeholders; only the nesting matters to
    ``nest.pack_sequence_as``.
    """
    kind = descriptor["kind"]
    if kind == "leaf":
        return None
    if kind == "dict":
        return {k: descriptor_to_structure(v)
                for k, v in descriptor["items"].items()}
    items = [descriptor_to_structure(v) for v in descriptor["items"]]
    return tuple(items) if kind == "tuple" else items
