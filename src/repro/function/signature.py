"""Input-signature canonicalization for the tracing JIT.

Turns a concrete ``(args, kwargs)`` call into a hashable *cache key* plus
the ingredients a trace needs:

- tensor-like leaves (eager tensors, NumPy arrays/scalars) become
  :class:`TensorSpec` atoms — calls whose leaves share dtype/shape hit
  the same concrete function;
- Python scalars, strings and ``None`` are *constants*: their values are
  part of the key, so the trace specializes on them (a different
  ``learning_rate`` is a different graph);
- :class:`~repro.framework.graph.variables.Variable` and arbitrary
  Python objects key by identity and are kept alive by the signature so
  CPython cannot recycle their ids while a cached trace exists.

Structure is keyed via the same traversal rules as
:mod:`repro.framework.nest` (dicts by sorted key, sequences in order),
so the leaf order here matches ``nest.flatten`` exactly and traced
placeholders can be re-packed with ``nest.pack_sequence_as``.
"""

from __future__ import annotations

import inspect

import numpy as np

from ..framework import nest
from ..framework.eager.tensor import EagerTensor
from ..framework.errors import StagingError
from ..framework.graph.graph import Tensor
from ..framework.graph.variables import Variable
from .tensor_spec import TensorSpec

__all__ = ["CanonicalSignature", "canonicalize"]


class CanonicalSignature:
    """The canonical form of one call: cache keys + trace ingredients."""

    __slots__ = (
        "key", "relaxed_key", "structure", "flat_leaves",
        "tensor_indices", "specs", "keepalive",
    )

    def __init__(self, key, relaxed_key, structure, flat_leaves,
                 tensor_indices, specs, keepalive):
        self.key = key
        self.relaxed_key = relaxed_key
        # The bound (args, kwargs) structure; leaves in nest order.
        self.structure = structure
        self.flat_leaves = flat_leaves
        # Positions in flat_leaves that are tensor leaves (traced as
        # placeholders); parallel to ``specs``.
        self.tensor_indices = tensor_indices
        self.specs = specs
        self.keepalive = keepalive

    def tensor_values(self):
        """Concrete values for the tensor leaves, in placeholder order."""
        values = []
        for i in self.tensor_indices:
            leaf = self.flat_leaves[i]
            if isinstance(leaf, TensorSpec):
                raise StagingError(
                    "Cannot execute a concrete function traced from bare "
                    "TensorSpecs without concrete tensor arguments"
                )
            values.append(leaf.numpy() if isinstance(leaf, EagerTensor) else leaf)
        return values

    def relaxed(self):
        """This signature with every tensor spec fully shape-relaxed."""
        return CanonicalSignature(
            self.relaxed_key, self.relaxed_key, self.structure,
            self.flat_leaves, self.tensor_indices,
            [s.most_general() for s in self.specs], self.keepalive,
        )


def _is_tensor_leaf(leaf):
    return isinstance(leaf, (EagerTensor, TensorSpec, np.ndarray, np.generic))


_BLOCK_TYPES = None


def _block_spec_for(leaf):
    """The :class:`repro.blocks.spec.BlockSpec` for a block-partitioned
    leaf, or ``None`` for every other value (lazy import: ``repro.blocks``
    sits above this package)."""
    global _BLOCK_TYPES
    if _BLOCK_TYPES is None:
        from ..blocks.array import BlockArray
        from ..blocks.spec import BlockSpec

        _BLOCK_TYPES = (BlockArray, BlockSpec)
    if isinstance(leaf, _BLOCK_TYPES):
        return _BLOCK_TYPES[1].from_value(leaf)
    return None


def _structure_token(structure):
    if isinstance(structure, dict):
        return ("d", type(structure).__name__,
                tuple((k, _structure_token(structure[k])) for k in sorted(structure)))
    if nest._is_namedtuple(structure):
        return ("nt", type(structure).__name__, structure._fields,
                tuple(_structure_token(item) for item in structure))
    if nest.is_sequence(structure):
        return ("s", type(structure).__name__,
                tuple(_structure_token(item) for item in structure))
    return "*"


def bind_arguments(py_signature, args, kwargs):
    """Normalize a call to the function's parameter order (with defaults)."""
    if py_signature is not None:
        try:
            bound = py_signature.bind(*args, **kwargs)
            bound.apply_defaults()
            return tuple(bound.args), dict(bound.kwargs)
        except TypeError:
            # Let the traced call itself raise the accurate error.
            pass
    return tuple(args), dict(kwargs)


def canonicalize(py_signature, args, kwargs):
    """Build the :class:`CanonicalSignature` for one call."""
    structure = bind_arguments(py_signature, args, kwargs)
    flat_leaves = nest.flatten(structure)

    exact_tokens = []
    relaxed_tokens = []
    tensor_indices = []
    specs = []
    keepalive = []

    for i, leaf in enumerate(flat_leaves):
        if isinstance(leaf, Tensor):
            raise StagingError(
                f"Symbolic tensor {leaf.name!r} passed to a repro.function "
                "outside a graph context; symbolic values only make sense "
                "while a graph is being traced"
            )
        block_spec = _block_spec_for(leaf)
        if block_spec is not None:
            # Block-partitioned leaves: the grid is part of the key and
            # never relaxes — each partitioning is its own executable.
            tensor_indices.append(i)
            specs.append(block_spec)
            exact_tokens.append(("T", block_spec))
            relaxed_tokens.append(("T", block_spec))
            continue
        if _is_tensor_leaf(leaf):
            spec = TensorSpec.from_value(leaf)
            tensor_indices.append(i)
            specs.append(spec)
            exact_tokens.append(("T", spec))
            relaxed_tokens.append(("T", spec.most_general()))
            continue
        if isinstance(leaf, Variable):
            keepalive.append(leaf)
            token = ("V", id(leaf))
        elif leaf is None or isinstance(leaf, (bool, int, float, str, bytes)):
            token = ("C", type(leaf).__name__, leaf)
        else:
            try:
                hash(leaf)
                token = ("C", type(leaf).__name__, leaf)
            except TypeError:
                token = ("O", id(leaf))
            keepalive.append(leaf)
        exact_tokens.append(token)
        relaxed_tokens.append(token)

    st = _structure_token(structure)
    return CanonicalSignature(
        key=(st, tuple(exact_tokens)),
        relaxed_key=(st, tuple(relaxed_tokens)),
        structure=structure,
        flat_leaves=flat_leaves,
        tensor_indices=tensor_indices,
        specs=specs,
        keepalive=keepalive,
    )


def signature_of(python_function):
    """``inspect.signature`` or None when the callable has no signature."""
    try:
        return inspect.signature(python_function)
    except (TypeError, ValueError):
        return None
