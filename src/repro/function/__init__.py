"""The tracing JIT: ``@repro.function`` and its concrete-function cache.

This package is the repo's analogue of ``tf.function`` — the front-end
TensorFlow shipped around AutoGraph.  It layers a polymorphic callable
(:class:`Function`), a signature canonicalizer keyed on
:class:`TensorSpec` dtype/shape atoms plus Python-value structure, and
per-signature traced graphs (:class:`ConcreteFunction`) that are
AutoGraph-converted, whole-graph-optimized and session-compiled once,
then re-executed from cache.

    import repro

    @repro.function
    def train_step(x, y, w, b):
        ...

    train_step(bx, by, w, b)   # traces, optimizes, compiles
    train_step(bx, by, w, b)   # cache hit: runs the compiled plan
    assert train_step.trace_count == 1
"""

from .concrete_function import ConcreteFunction
from .executable import Executable, ExportError, ExportSpec
from .function import Function, function
from .tensor_spec import TensorSpec

__all__ = ["ConcreteFunction", "Executable", "ExportError", "ExportSpec",
           "Function", "LanternConcreteFunction", "TensorSpec", "function"]


def __getattr__(name):
    # Deferred: importing the lantern lowering stack (compiler, staging,
    # IR) should cost nothing until a lantern backend is actually used.
    if name == "LanternConcreteFunction":
        from .lowering import LanternConcreteFunction

        return LanternConcreteFunction
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
