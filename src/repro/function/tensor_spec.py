"""``TensorSpec``: the dtype/shape contract of one traced-function input.

A spec plays two roles in the tracing JIT:

- it is the *cache-key atom* for tensor arguments — two calls whose
  tensor leaves produce equal specs share one :class:`ConcreteFunction`;
- it is the *placeholder recipe* at trace time — each spec becomes one
  graph placeholder with the spec's dtype and (possibly partial) shape.

``most_general()`` implements shape relaxation: the same dtype and rank
with every dimension unknown, so one relaxed trace serves a family of
shapes once a :class:`~repro.function.Function` has retraced too often.
"""

from __future__ import annotations

import numpy as np

from ..framework import dtypes
from ..framework.shapes import TensorShape

__all__ = ["TensorSpec"]


class TensorSpec:
    """A (shape, dtype) description of a tensor argument."""

    __slots__ = ("_shape", "_dtype", "_name")

    def __init__(self, shape=None, dtype=dtypes.float32, name=None):
        self._shape = shape if isinstance(shape, TensorShape) else TensorShape(shape)
        self._dtype = dtypes.as_dtype(dtype)
        self._name = name

    @property
    def shape(self):
        return self._shape

    @property
    def dtype(self):
        return self._dtype

    @property
    def name(self):
        return self._name

    @classmethod
    def from_value(cls, value, name=None):
        """Spec describing a concrete tensor-like value."""
        from ..framework.eager.tensor import EagerTensor
        from ..framework.graph.graph import Tensor

        if isinstance(value, (EagerTensor, Tensor)):
            return cls(value.shape, value.dtype, name=name)
        if isinstance(value, TensorSpec):
            return cls(value.shape, value.dtype, name=name or value.name)
        # NumPy arrays keep their dtype, matching graph.constant: only
        # bare Python literals default-narrow, and those are constant
        # leaves (not tensor leaves) in the signature.
        arr = np.asarray(value)
        return cls(TensorShape(arr.shape), dtypes.from_numpy(arr.dtype),
                   name=name)

    def most_general(self):
        """The relaxed spec: same dtype/rank, every dimension unknown."""
        if self._shape.dims is None:
            return TensorSpec(None, self._dtype, name=self._name)
        return TensorSpec([None] * len(self._shape.dims), self._dtype,
                          name=self._name)

    def is_compatible_with(self, value):
        """True if ``value`` (tensor-like or spec) satisfies this spec."""
        other = value if isinstance(value, TensorSpec) else TensorSpec.from_value(value)
        return (self._dtype == other.dtype
                and self._shape.is_compatible_with(other.shape))

    def __eq__(self, other):
        if not isinstance(other, TensorSpec):
            return NotImplemented
        return self._dtype == other._dtype and self._shape.dims == other._shape.dims

    def __hash__(self):
        return hash((self._dtype, self._shape.dims))

    def __repr__(self):
        return f"TensorSpec(shape={self._shape}, dtype={self._dtype.name})"
