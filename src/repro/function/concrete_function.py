"""``ConcreteFunction``: one traced, optimized, executable graph.

A concrete function is the unit the signature cache stores: the result of
running the user's Python through AutoGraph *once* against placeholder
inputs, then freezing the outcome:

1. **trace** — tensor leaves of the canonical signature become
   placeholders in a :class:`~repro.framework.graph.func_graph.FuncGraph`
   and the converted function runs symbolically, staging its control flow
   and side effects into graph ops;
2. **optimize** — :func:`~repro.framework.graph.optimize.optimize_graph`
   (DCE / constant folding / CSE) runs at trace time, so every later call
   executes the already-optimized graph;
3. **execute** — the optimized graph compiles into one
   :class:`~repro.runtime.ExecutionPlan` whose feed tensors are bound to
   positional slots *at construction* (:class:`~repro.runtime.BoundPlan`);
   every call is then a plain ``execute_flat`` over pre-ordered values —
   no feed dict, no cache key, no per-call flattening — which is what
   amortizes staging cost across calls (the paper's Table-2 effect,
   without hand-wiring) and keeps per-call dispatch overhead minimal.

Stateful ops staged during the trace (variable assigns, staged prints)
are added to the run fetches even when no returned tensor depends on
them, so a traced training step really updates its variables.

Closed-over state — eager tensors and ``Variable`` reads — is recorded
as **captures**: runtime inputs resolved fresh (Variables re-read) on
every call, not constants baked at trace time.  An optimizer stepping a
captured variable is therefore visible to the next call with
``trace_count`` staying at 1, and :meth:`~ConcreteFunction.
set_capture_values` hot-swaps the weights atomically with zero retraces.
"""

from __future__ import annotations

import threading

import numpy as np

from ..framework import context, nest
from ..framework.eager import tape as tape_module
from ..framework.eager.tensor import EagerTensor
from ..framework.errors import StagingError
from ..framework.graph.func_graph import FuncGraph
from ..framework.graph.graph import Tensor
from ..framework.graph.optimize import optimize_graph
from ..framework.graph.variables import Variable
from ..runtime import BoundPlan, compile_plan
from . import signature as signature_lib
from .executable import BackendBuilder, Executable, ExportError, ExportSpec, \
    register_backend_builder

__all__ = ["ConcreteFunction", "trace_concrete_function",
           "trace_func_graph", "classify_outputs"]


def _convert_for_trace(python_function, autograph):
    import inspect
    import warnings

    from .. import autograph as ag

    if autograph and (inspect.isfunction(python_function)
                      or inspect.ismethod(python_function)):
        try:
            return ag.to_graph(python_function)
        except ag.ConversionError as e:
            # Trace unconverted: op dispatch still stages, but Python
            # control flow on tensors will raise with a clear message.
            warnings.warn(
                f"repro.function could not convert "
                f"{getattr(python_function, '__name__', python_function)!r} "
                f"with AutoGraph and will trace it unconverted. Cause: {e}",
                stacklevel=2,
            )
    return python_function


def trace_func_graph(python_function, canonical, name, autograph=True,
                     freeze_captures=False):
    """Run one AutoGraph trace of ``python_function`` into a FuncGraph.

    The tensor leaves of the canonical signature become placeholders; the
    converted function runs symbolically against them.  Shared by the
    graph backend (below) and the Lantern graph-translate route
    (:mod:`repro.function.lowering`).

    ``freeze_captures=True`` bakes closed-over state (eager tensors,
    initialized ``Variable`` reads) into the trace as constants instead
    of runtime-input captures — restoring trace-time constant folding
    across the weights, for closures that really are constant.

    Returns:
      ``(func_graph, placeholders, result)`` — the traced graph, its
      input placeholders, and the function's structured return value.
    """
    fg = FuncGraph(f"{name}_graph", outer_graph=None, capture_external=True,
                   freeze_captures=freeze_captures)
    converted = _convert_for_trace(python_function, autograph)
    with fg.as_default():
        placeholders = [
            fg.add_input(spec.dtype, spec.shape,
                         name=spec.name or f"arg_{i}")
            for i, spec in enumerate(canonical.specs)
        ]
        flat = list(canonical.flat_leaves)
        for idx, ph in zip(canonical.tensor_indices, placeholders):
            flat[idx] = ph
        call_args, call_kwargs = nest.pack_sequence_as(
            canonical.structure, flat)
        result = converted(*call_args, **call_kwargs)

    # Variables created during the trace get their initial value now,
    # so the session kernels (which read live state) can run.
    for v in fg.get_collection("variables"):
        v.initialize()
    return fg, placeholders, result


def classify_outputs(fg, result, name):
    """Split a traced return value into tensor outputs and constants.

    Returns:
      ``(output_template, tensor_outs)`` — the template is a flat list of
      ``("t", index)`` / ``("c", value)`` leaves matching
      ``nest.flatten(result)``; tensor_outs are the graph tensors.
    """
    flat_out = nest.flatten(result)
    tensor_outs = []
    output_template = []
    for leaf in flat_out:
        if isinstance(leaf, Variable):
            with fg.as_default():
                leaf = leaf.value()
        if isinstance(leaf, Tensor):
            if leaf.graph is not fg:
                raise StagingError(
                    f"Traced function {name!r} returned tensor "
                    f"{leaf.name!r} from a foreign graph"
                )
            output_template.append(("t", len(tensor_outs)))
            tensor_outs.append(leaf)
        else:
            output_template.append(("c", leaf))
    return output_template, tensor_outs


def _reachable_ops(roots):
    seen = set()
    stack = [t.op for t in roots]
    while stack:
        op = stack.pop()
        if id(op) in seen:
            continue
        seen.add(id(op))
        for t in op.inputs:
            if id(t.op) not in seen:
                stack.append(t.op)
        for c in op.control_inputs:
            if id(c) not in seen:
                stack.append(c)
    return seen


class ConcreteFunction(Executable):
    """A single traced signature of a :class:`~repro.function.Function`."""

    backend = "graph"

    def __init__(self, python_function, canonical, name,
                 autograph=True, optimize=True, freeze_captures=False,
                 num_workers=None, fuse=True):
        self._python_function = python_function
        self._canonical = canonical
        self._py_signature = signature_lib.signature_of(python_function)
        self.name = name
        self._optimize = optimize
        self._freeze_captures = freeze_captures
        self._num_workers = num_workers
        self._fuse = fuse
        self._backward = None

        # -- 1. trace -------------------------------------------------------
        fg, placeholders, result = trace_func_graph(
            python_function, canonical, name, autograph=autograph,
            freeze_captures=freeze_captures)

        # -- classify structured outputs -----------------------------------
        self._output_template, tensor_outs = classify_outputs(
            fg, result, name)
        self._output_structure = result
        fg.flat_outputs = list(tensor_outs)
        self.graph = fg
        # External captures: eager tensors and Variable reads the trace
        # closed over, now runtime inputs resolved fresh on every call.
        self._captures = list(fg.external_captures)
        # Variables read at the top level of the trace: their capture
        # placeholders are extra differentiation targets for the tape
        # bridge, and their eager values join the recorded op's inputs.
        self._variable_reads = [
            (c.source, c.placeholder) for c in self._captures
            if c.kind == "variable"
        ]
        self._created_variables = list(fg.get_collection("variables"))

        # Side effects must survive plan pruning: fetch every stateful op
        # the returned tensors do not already reach.
        reachable = _reachable_ops(tensor_outs)
        self._state_fetches_traced = [
            op.outputs[0] for op in fg.ops
            if op.op_def.stateful and id(op) not in reachable and op.outputs
        ]

        # -- 2. optimize ----------------------------------------------------
        capture_phs = [c.placeholder for c in self._captures]
        anchors = (tensor_outs + self._state_fetches_traced + placeholders
                   + capture_phs)
        if optimize and anchors:
            opt_graph, fmap = optimize_graph(fg, anchors)
            remap = fmap.__getitem__
        else:
            opt_graph = fg
            remap = lambda t: t  # noqa: E731
        self.optimized_graph = opt_graph

        # -- 3. the bound execution plan -------------------------------------
        self._feeds = [remap(ph) for ph in placeholders]
        self._capture_feeds = [remap(ph) for ph in capture_phs]
        # Guards capture reads/writes so a weight hot-swap is atomic with
        # respect to the snapshot one call feeds its plan execution.
        self._capture_lock = threading.Lock()
        # Pre-resolved per-capture readers: the runtime re-reads captured
        # state through these immediately before every execution
        # (Variables via their read-before-run hook) without touching the
        # Python wrapper objects on the hot path.
        self._capture_readers = tuple(c.reader() for c in self._captures)
        self._output_fetches = [remap(t) for t in tensor_outs]
        self._run_fetches = self._output_fetches + [
            remap(t) for t in self._state_fetches_traced
        ]
        # Bind ONCE: the feed tensors (declared inputs, then captures)
        # get positional plan slots at construction, so every call is a
        # plain `execute_flat` — no feed dict, no cache key, no per-call
        # nest.flatten (the Table-2 dispatch overhead, engineered out).
        self._runtime_feeds = self._feeds + self._capture_feeds
        self._bind_lock = threading.Lock()
        # Block-partitioned feeds: the trace stages dense ops against a
        # dense placeholder, then the whole optimized graph is lowered
        # to per-block steps and compiled with one placeholder per block.
        self._block_grids = self._collect_block_grids()
        self._blocked = bool(self._block_grids)
        self._scheduler = self._make_scheduler(num_workers)
        if self._blocked:
            from ..blocks.lowering import lower_blocked_graph

            lowered = lower_blocked_graph(
                opt_graph, self._runtime_feeds, self._run_fetches,
                self._block_grids)
            self._lowered_feeds = list(lowered.feeds)
            self._bound = BoundPlan(
                compile_plan(lowered.graph, list(lowered.fetches),
                             self._lowered_feeds, fuse=fuse),
                self._lowered_feeds, self._scheduler)
        else:
            self._bound = BoundPlan(
                compile_plan(opt_graph, self._run_fetches,
                             self._runtime_feeds, fuse=fuse),
                self._runtime_feeds, self._scheduler)
        self._n_outputs = len(self._output_fetches)
        # When the optimizer produced a fresh graph, nothing ever appends
        # to it again (the backward pass optimizes into its own graph) —
        # the per-call version check is only needed when executing the
        # trace graph directly (optimize=False).  Blocked plans compile
        # from their own lowered graph, which never grows.
        self._graph_may_grow = opt_graph is fg and not self._blocked

    def _collect_block_grids(self):
        """``{id(feed tensor): BlockGrid}`` for block-partitioned specs."""
        grids = {}
        for feed, spec in zip(self._feeds, self._canonical.specs):
            grid = getattr(spec, "grid", None)
            if grid is not None:
                grids[id(feed)] = grid
        return grids

    def _make_scheduler(self, num_workers):
        """The step scheduler: blocked functions default to one worker
        per core; dense functions stay serial unless asked."""
        if num_workers is None and not self._blocked:
            return None
        from ..blocks.scheduler import BlockScheduler

        scheduler = BlockScheduler(num_workers=num_workers)
        return scheduler if scheduler.parallel else None

    # -- introspection -------------------------------------------------------

    @property
    def inputs(self):
        """The traced input placeholders (one per tensor leaf)."""
        return list(self.graph.inputs)

    @property
    def outputs(self):
        """The traced output tensors."""
        return list(self.graph.flat_outputs)

    @property
    def structured_input_signature(self):
        return list(self._canonical.specs)

    @property
    def variables(self):
        """Variables this trace reads or created, deduplicated."""
        seen = set()
        out = []
        for v in self._created_variables + [v for v, _ in self._variable_reads]:
            if id(v) not in seen:
                seen.add(id(v))
                out.append(v)
        return out

    # -- captures -------------------------------------------------------------

    @property
    def captures(self):
        """Ordered external captures (eager tensors / Variable reads)."""
        return list(self._captures)

    def capture_values(self):
        """Current capture values, by capture name."""
        with self._capture_lock:
            return {c.name: np.asarray(c.resolve()) for c in self._captures}

    def set_capture_values(self, mapping):
        """Atomically replace capture values (weight hot-swap, no retrace).

        Args:
          mapping: capture name -> array-like.  Variable captures are
            assigned; eager-tensor captures are updated in place (shapes
            must match).  Unknown names raise ``KeyError``.
        """
        by_name = {c.name: c for c in self._captures}
        staged = []
        for name, value in mapping.items():
            entry = by_name.get(name)
            if entry is None:
                raise KeyError(
                    f"{self.name!r} has no capture named {name!r}; "
                    f"captures: {sorted(by_name)}"
                )
            value = np.asarray(
                value, dtype=entry.placeholder.dtype.np_dtype)
            if not entry.placeholder.shape.is_compatible_with(value.shape):
                raise ValueError(
                    f"Capture {name!r} expects shape "
                    f"{entry.placeholder.shape}, got {value.shape}"
                )
            staged.append((entry, value))
        with self._capture_lock:
            for entry, value in staged:
                if entry.kind == "variable":
                    entry.source._state.write(value)
                    entry.source._eager_value_cache = None
                else:
                    # Rebind the eager tensor's buffer, don't write into
                    # it: an in-flight run (or a caller holding .numpy())
                    # keeps the consistent array it already read.
                    entry.source._value = value

    def _resolved_captures(self):
        if not self._capture_readers:
            return ()
        with self._capture_lock:
            return tuple(read() for read in self._capture_readers)

    # -- export ---------------------------------------------------------------

    def _check_exportable(self):
        from ..framework.graph import serialize as graph_serialize

        offending = graph_serialize.find_unexportable_ops(self.optimized_graph)
        if offending:
            raise ExportError(
                f"Concrete function {self.name!r} stages stateful ops "
                f"{offending}; exported signatures must be pure — variable "
                "reads are frozen, but assigns/random/prints cannot leave "
                "the process"
            )
        self._export_output_parts()

    def export_spec(self, freeze=True):
        """Serialize this trace.

        ``freeze=True`` (default) bakes the capture placeholders' current
        values into the graph as constants — a self-contained artifact.
        ``freeze=False`` keeps them as named extra inputs and ships their
        current values as a separate weight checkpoint, so the loaded
        artifact's weights can be hot-swapped without retracing.
        """
        from ..framework.graph.serialize import (
            GraphSerializationError, graph_to_def)

        # No _check_exportable() here: graph_to_def performs the same
        # stateful-op walk itself and raises with an equivalent message,
        # so pre-flighting would just scan the graph twice per save.
        template, descriptor = self._export_output_parts()
        with self._capture_lock:
            values = [np.asarray(c.resolve()) for c in self._captures]
        captures = []
        arrays = {}
        try:
            if freeze:
                graph_def, arrays = graph_to_def(
                    self.optimized_graph, self._feeds, self._output_fetches,
                    freeze_placeholders=dict(
                        zip(self._capture_feeds, values)),
                )
            else:
                for i, (entry, value) in enumerate(
                        zip(self._captures, values)):
                    key = f"capture_{i}"
                    arrays[key] = value
                    captures.append({"name": entry.name, "key": key})
                graph_def, arrays = graph_to_def(
                    self.optimized_graph,
                    self._feeds + self._capture_feeds,
                    self._output_fetches, arrays=arrays,
                )
        except GraphSerializationError as e:
            raise ExportError(str(e)) from e
        return ExportSpec(
            backend="graph",
            name=self.name,
            input_specs=list(self._canonical.specs),
            output_template=template,
            output_descriptor=descriptor,
            payload={"graph_def": graph_def},
            arrays=arrays,
            captures=captures,
        )

    # -- execution -----------------------------------------------------------

    def __call__(self, *args, **kwargs):
        canonical = signature_lib.canonicalize(self._py_signature, args, kwargs)
        self._check_compatible(canonical)
        return self._call_canonical(canonical)

    def _check_compatible(self, canonical):
        """Reject calls whose *full* signature differs from the trace.

        Tensor leaves only need spec compatibility (the traced spec may
        be shape-relaxed), but constants, structure and identity-keyed
        objects were baked into this graph and must match exactly —
        otherwise a call would silently run the wrong specialization.
        """
        st_mine, tokens_mine = self._canonical.key
        st_theirs, tokens_theirs = canonical.key
        if st_mine != st_theirs or len(tokens_mine) != len(tokens_theirs):
            raise StagingError(
                f"Concrete function {self.name!r} was traced for a "
                "different argument structure"
            )
        for mine, theirs in zip(tokens_mine, tokens_theirs):
            if mine[0] == "T" and theirs[0] == "T":
                if not mine[1].is_compatible_with(theirs[1]):
                    raise StagingError(
                        f"Concrete function {self.name!r} expects "
                        f"{mine[1]}, got {theirs[1]}"
                    )
            elif mine != theirs:
                raise StagingError(
                    f"Concrete function {self.name!r} was specialized for "
                    f"argument {mine!r} but was called with {theirs!r}; "
                    "call the polymorphic Function to retrace"
                )

    def _call_canonical(self, canonical):
        tape_active = bool(tape_module._TAPE_STACK)
        if tape_active and self._blocked:
            raise StagingError(
                f"Concrete function {self.name!r} has block-partitioned "
                "inputs; GradientTape cannot record through a blocked "
                "plan — compute per-shard gradients with "
                "repro.blocks.DataParallelTrainer instead"
            )
        # Capture the variables' eager values *before* running: the call
        # may assign them, and the tape watches the pre-call reads.
        var_inputs = (
            tuple(v.value() for v, _ in self._variable_reads)
            if tape_active else ()
        )
        capture_snapshot = self._resolved_captures()
        result, tensor_outputs = self._run(
            canonical.tensor_values(), capture_snapshot)
        if tape_active and tensor_outputs:
            # The record carries the exact capture snapshot this run fed
            # its plan, so the backward pass replays against the weights
            # the forward pass actually saw even if they swap in between.
            eager_inputs = tuple(
                leaf if isinstance(leaf, EagerTensor)
                else EagerTensor(np.asarray(leaf))
                for leaf in (canonical.flat_leaves[i]
                             for i in canonical.tensor_indices)
            ) + var_inputs
            self._record_on_tape(
                f"{self.name}_call",
                self._make_grad_fn(capture_snapshot), eager_inputs,
                tensor_outputs)
        return result

    def call_flat(self, tensor_values):
        """Run the bound plan on flat tensor-leaf values (fast path)."""
        result, _ = self._run(tensor_values, self._resolved_captures())
        return result

    def engine_stats(self):
        """Bound-plan info for serving observability (one dict, cheap)."""
        return {"bound_plan": self._bound.describe()}

    def plan_describe(self):
        """The compiled plan's human-readable dump (steps, levels, fused
        groups, donation arms) — see :meth:`ExecutionPlan.describe
        <repro.runtime.plan.ExecutionPlan.describe>`."""
        return self._current_bound().plan.describe()

    def _current_bound(self):
        """The bound plan, recompiled if the graph grew since binding.

        The optimized graph only ever gains ops after construction when
        ``optimize=False`` and the backward pass stages gradients into
        the trace graph; rebinding then is a one-time event, checked by
        a single integer comparison per call (and skipped entirely for
        optimizer-produced graphs, which are immutable by construction).
        """
        bound = self._bound
        if not self._graph_may_grow:
            return bound
        if bound.graph_version != self.optimized_graph.version:
            with self._bind_lock:
                bound = self._bound
                if bound.graph_version != self.optimized_graph.version:
                    bound = BoundPlan(
                        compile_plan(self.optimized_graph, self._run_fetches,
                                     self._runtime_feeds, fuse=self._fuse),
                        self._runtime_feeds, self._scheduler)
                    self._bound = bound
        return bound

    def _expand_block_args(self, tensor_values):
        """Flatten ``BlockArray`` arguments into their per-block feeds
        (row-major), validating each against its traced grid."""
        from ..blocks.array import BlockArray

        args = []
        for spec, value in zip(self._canonical.specs, tensor_values):
            grid = getattr(spec, "grid", None)
            if grid is None:
                args.append(value)
                continue
            if not isinstance(value, BlockArray):
                raise StagingError(
                    f"Concrete function {self.name!r} expects a BlockArray "
                    f"for {spec!r}, got {type(value).__name__}"
                )
            if value.grid != grid:
                raise StagingError(
                    f"BlockArray grid {value.grid!r} does not match the "
                    f"traced {grid!r}; regrid the argument or retrace"
                )
            args.extend(value.block_list())
        return args

    def _run(self, tensor_values, capture_values):
        # One atomic snapshot of the capture values per call: swaps
        # rebind arrays (never write into them), so a concurrent
        # hot-swap lands either wholly before or wholly after this
        # run, never half-way.
        if self._blocked:
            args = self._expand_block_args(tensor_values)
        else:
            args = list(tensor_values)
        if capture_values:
            args.extend(capture_values)
        fetched = self._current_bound().execute_flat(args)
        tensor_outputs = tuple(
            EagerTensor(v) for v in fetched[:self._n_outputs])
        return self._pack_outputs(tensor_outputs), tensor_outputs

    # -- gradients ------------------------------------------------------------

    def _ensure_backward(self):
        """Stage d(outputs)/d(inputs) into the trace graph, once.

        The backward graph binds to the runtime engine exactly like the
        forward one: positional slots for (inputs, captures, seeds), one
        compile, ``execute_flat`` per tape replay.
        """
        if self._backward is not None:
            return self._backward
        from ..framework.graph.gradients import gradients as graph_gradients

        fg = self.graph
        seeds = [
            fg.placeholder(t.dtype, t.shape, name="grad_seed")
            for t in fg.flat_outputs
        ]
        # Differentiate with respect to both the declared inputs and the
        # capture placeholders of variable reads, in recorded-input order.
        targets = list(fg.inputs) + [rt for _, rt in self._variable_reads]
        in_grads = graph_gradients(
            list(fg.flat_outputs), targets, grad_ys=seeds)
        live = [g for g in in_grads if g is not None]
        capture_phs = [c.placeholder for c in self._captures]
        anchors = live + list(fg.inputs) + seeds + capture_phs
        if self._optimize and live:
            bw_graph, fmap = optimize_graph(fg, anchors)
            remap = fmap.__getitem__
        else:
            bw_graph = fg
            remap = lambda t: t  # noqa: E731
        grad_ts = [None if g is None else remap(g) for g in in_grads]
        bw_feeds = ([remap(ph) for ph in fg.inputs]
                    + [remap(ph) for ph in capture_phs]
                    + [remap(s) for s in seeds])
        bound = BoundPlan(
            compile_plan(bw_graph, [g for g in grad_ts if g is not None],
                         bw_feeds, fuse=self._fuse),
            bw_feeds)
        self._backward = (bound, grad_ts, len(fg.inputs))
        return self._backward

    def _make_grad_fn(self, capture_snapshot):
        def grad_fn(record, *out_grads):
            bound, grad_ts, n_inputs = self._ensure_backward()
            # record.inputs = tensor leaves then variable pre-call
            # values; the leaves feed input placeholders.  Captures feed
            # the snapshot the forward run used (swaps rebind arrays, so
            # the snapshot is immutable), which keeps the backward pass
            # at the weights the forward pass actually saw even if an
            # optimizer stepped or hot-swapped them in between.
            args = [v.numpy() for v in record.inputs[:n_inputs]]
            args.extend(capture_snapshot)
            args.extend(
                g.numpy() if isinstance(g, EagerTensor) else g
                for g in out_grads)
            fetched = (iter(bound.execute_flat(args))
                       if any(g is not None for g in grad_ts) else iter(()))
            return [
                None if g is None else EagerTensor(next(fetched))
                for g in grad_ts
            ]

        return grad_fn

    def __repr__(self):
        return (f"<ConcreteFunction {self.name!r} inputs="
                f"{self._canonical.specs} ops={len(self.graph.ops)}"
                f" optimized_ops={len(self.optimized_graph.ops)}>")


ConcreteFunction.__call__.__ag_do_not_convert__ = True
ConcreteFunction.call_flat.__ag_do_not_convert__ = True


def trace_concrete_function(python_function, canonical, name,
                            autograph=True, optimize=True,
                            freeze_captures=False, num_workers=None,
                            fuse=True):
    """Trace ``python_function`` for one canonical signature."""
    if context.has_default_graph():
        raise StagingError(
            "Cannot trace a concrete function while a graph is being built"
        )
    return ConcreteFunction(
        python_function, canonical, name,
        autograph=autograph, optimize=optimize,
        freeze_captures=freeze_captures, num_workers=num_workers,
        fuse=fuse)


class _GraphBackendBuilder(BackendBuilder):
    """The graph route: AutoGraph trace -> optimize -> bound runtime plan."""

    name = "graph"
    supports_relaxation = True

    def build(self, python_function, canonical, context_, name, *,
              autograph, optimize, freeze_captures=False, num_workers=None,
              fuse=True):
        return trace_concrete_function(
            python_function, canonical, name,
            autograph=autograph, optimize=optimize,
            freeze_captures=freeze_captures, num_workers=num_workers,
            fuse=fuse)


register_backend_builder(_GraphBackendBuilder())
