"""Staging functions into the Lantern IR: ``__def_staged``/``__call_staged``.

The paper's §8: to support recursive models, function *definition* and
*call* become staged operations.  :class:`Stager` traces an
AutoGraph-converted function once with staged arguments; recursive calls
are intercepted (via the converted_call hook) and emitted as IR call
instructions instead of being re-traced — which is what terminates the
trace of a recursive function.

The Stager is also the AutoGraph *backend* object (registered with
``operators.dispatch``): staged booleans route ``if`` statements into
``emit_if``, demonstrating the backend-agnostic SCT front-end.
"""

from __future__ import annotations

import contextlib

from repro.autograph.operators import dispatch as ag_dispatch

from .ir import Builder, FunctionDef, Program, StagedBool, StagedTensor, StagedTree, StagedValue

__all__ = ["Stager", "NOT_INTERCEPTED"]

# The sentinel must be the dispatch module's own: converted_call compares
# interceptor results against it by identity.
NOT_INTERCEPTED = ag_dispatch.NOT_INTERCEPTED


class Stager:
    """Builds a Lantern :class:`Program` by tracing converted functions."""

    def __init__(self):
        self.program = Program()
        self.builder = Builder(self.program)
        # original python function -> FunctionDef (for recursion).
        self._staged_functions = {}
        self._active = False

    # ------------------------------------------------------------------
    # AutoGraph backend protocol
    # ------------------------------------------------------------------

    def matches(self, value):
        return isinstance(value, StagedValue) and value.builder is self.builder

    def if_stmt(self, cond, body, orelse, symbol_names):
        results = self.builder.emit_if(cond, body, orelse, len(symbol_names))
        return results

    def while_stmt(self, test, body, init_state, symbol_names, opts):
        raise NotImplementedError(
            "The Lantern backend stages loops as recursion; rewrite the loop "
            "as a recursive function (its distinguishing capability, §8)."
        )

    def for_stmt(self, iter_, extra_test, body, init_state, symbol_names, opts):
        raise NotImplementedError(
            "The Lantern backend stages loops as recursion; rewrite the loop "
            "as a recursive function (its distinguishing capability, §8)."
        )

    def not_(self, value):
        # Staged boolean negation: model as 1 - b via a dedicated emit; we
        # reuse the 'sub' op on the boolean symbol (compiler lowers bools
        # to Python bools, where (not b) is emitted directly).
        out = self.builder.fresh("nb")
        self.builder.current_block.instructions.append(
            ("op", out, "not", [value.sym])
        )
        return StagedBool(out, self.builder)

    def intercept_call(self, f, args, kwargs):
        """converted_call hook: emit IR calls for staged functions."""
        if not self._active or kwargs:
            return NOT_INTERCEPTED
        target = getattr(f, "__wrapped_original__", None) or getattr(
            f, "__ag_original__", None
        ) or f
        fdef = self._staged_functions.get(target)
        if fdef is None:
            return NOT_INTERCEPTED
        if not any(isinstance(a, StagedValue) for a in args):
            return NOT_INTERCEPTED
        return self.builder.emit_call(fdef.name, list(args), fdef.n_outputs)

    # ------------------------------------------------------------------
    # Staged definition (paper's __def_staged / __call_staged)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def active(self):
        """Activate the backend: registers dispatch + call interception."""
        ag_dispatch.register_backend(self)
        ag_dispatch.register_call_interceptor(self.intercept_call)
        self._active = True
        try:
            yield self
        finally:
            self._active = False
            ag_dispatch.unregister_call_interceptor(self.intercept_call)
            ag_dispatch.unregister_backend(self)

    def staged_arg(self, kind, name):
        """A staged function parameter of the given kind."""
        sym = self.builder.fresh(name)
        if kind == "tree":
            return StagedTree(sym, self.builder)
        if kind == "bool":
            return StagedBool(sym, self.builder)
        return StagedTensor(sym, self.builder)

    def def_staged(self, fn, arg_kinds, n_outputs=1, name=None):
        """Stage ``fn`` (to be AutoGraph-converted) into the program.

        Args:
          fn: the original Python function (it will be converted and traced).
          arg_kinds: list of 'tensor' | 'tree' | 'bool' parameter kinds.
          n_outputs: number of values the function returns.
          name: IR function name (defaults to fn's name).

        Returns:
          The FunctionDef.  Recursive calls inside ``fn`` (and calls from
          later-staged functions) emit IR ``call`` instructions.
        """
        import repro.autograph as ag

        target = getattr(fn, "__ag_original__", None) or fn
        if target in self._staged_functions:
            return self._staged_functions[target]

        fn_name = name or target.__name__
        params = [self.staged_arg(kind, f"a_{fn_name}_") for kind in arg_kinds]
        fdef = FunctionDef(
            fn_name, [p.sym for p in params], list(arg_kinds), n_outputs
        )
        # Register *before* tracing so recursive calls are intercepted.
        self._staged_functions[target] = fdef
        self.program.functions[fn_name] = fdef

        converted = ag.to_graph(target)
        self.builder.push_block(fdef.block)
        try:
            result = converted(*params)
        finally:
            self.builder.pop_block()
        if not isinstance(result, tuple):
            result = (result,)
        if len(result) != n_outputs:
            raise ValueError(
                f"{fn_name} declared {n_outputs} outputs but returned "
                f"{len(result)}"
            )
        staged_results = [self.builder.as_staged(_enter_block(self, fdef, r))
                          for r in result]
        fdef.block.result_syms = tuple(v.sym for v in staged_results)
        return fdef

    def call_staged(self, fn, *args):
        """Emit a call to a previously staged function (``__call_staged``)."""
        target = getattr(fn, "__ag_original__", None) or fn
        fdef = self._staged_functions.get(target)
        if fdef is None:
            raise KeyError(f"{fn!r} has not been staged with def_staged")
        return self.builder.emit_call(fdef.name, list(args), fdef.n_outputs)


def _enter_block(stager, fdef, value):
    """Coerce return leaves; constants must be emitted inside the block."""
    if isinstance(value, StagedValue):
        return value
    stager.builder.push_block(fdef.block)
    try:
        return stager.builder.as_staged(value)
    finally:
        stager.builder.pop_block()
