"""Staging functions into the Lantern IR: ``__def_staged``/``__call_staged``.

The paper's §8: to support recursive models, function *definition* and
*call* become staged operations.  :class:`Stager` traces an
AutoGraph-converted function once with staged arguments; recursive calls
are intercepted (via the converted_call hook) and emitted as IR call
instructions instead of being re-traced — which is what terminates the
trace of a recursive function.

The Stager is also the AutoGraph *backend* object (registered with
``operators.dispatch``): staged booleans route ``if`` statements into
``emit_if``, demonstrating the backend-agnostic SCT front-end.
"""

from __future__ import annotations

import contextlib

from repro.autograph.operators import dispatch as ag_dispatch

from .ir import Builder, FunctionDef, Program, StagedBool, StagedTensor, StagedTree, StagedValue

__all__ = ["Stager", "NOT_INTERCEPTED", "StagedArityError",
           "ReentrantStagingError"]

# The sentinel must be the dispatch module's own: converted_call compares
# interceptor results against it by identity.
NOT_INTERCEPTED = ag_dispatch.NOT_INTERCEPTED

# A plain function re-entered this many times on staged arguments during
# one trace is declared re-entrant (recursive helper) and must be staged
# as its own IR function; inline tracing it would never terminate.
_REENTRANT_THRESHOLD = 32


class StagedArityError(ValueError):
    """A staged function returned a different number of values than
    declared.  ``actual`` lets callers re-stage with the right arity."""

    def __init__(self, name, declared, actual):
        super().__init__(
            f"{name} declared {declared} outputs but returned {actual}"
        )
        self.name = name
        self.declared = declared
        self.actual = actual


class ReentrantStagingError(RuntimeError):
    """Raised mid-trace when an unregistered helper re-enters itself on
    staged arguments (paper §8's re-entrant staged call).  The caller
    should register ``target`` with :meth:`Stager.def_staged` and retrace.

    Attributes:
      target: the original Python function that recursed.
      arg_kinds: staged parameter kinds observed at the re-entrant call.
    """

    def __init__(self, target, arg_kinds):
        super().__init__(
            f"{getattr(target, '__name__', target)!r} re-entered itself "
            "while being traced inline; it must be staged as an IR function"
        )
        self.target = target
        self.arg_kinds = arg_kinds


def _staged_kind(value):
    if isinstance(value, StagedTree):
        return "tree"
    if isinstance(value, StagedBool):
        return "bool"
    if isinstance(value, StagedTensor):
        return "tensor"
    return None


class Stager:
    """Builds a Lantern :class:`Program` by tracing converted functions."""

    def __init__(self):
        self.program = Program()
        self.builder = Builder(self.program)
        # original python function -> FunctionDef (for recursion).
        self._staged_functions = {}
        self._active = False
        # Re-entrancy discovery: inline-call entry counts per target.
        self._entry_counts = {}
        # Declared-but-untraced functions: target -> (fdef, params).
        self._pending_traces = {}

    # ------------------------------------------------------------------
    # AutoGraph backend protocol
    # ------------------------------------------------------------------

    def matches(self, value):
        return isinstance(value, StagedValue) and value.builder is self.builder

    def if_stmt(self, cond, body, orelse, symbol_names):
        results = self.builder.emit_if(cond, body, orelse, len(symbol_names))
        return results

    def while_stmt(self, test, body, init_state, symbol_names, opts):
        raise NotImplementedError(
            "The Lantern backend stages loops as recursion; rewrite the loop "
            "as a recursive function (its distinguishing capability, §8)."
        )

    def for_stmt(self, iter_, extra_test, body, init_state, symbol_names, opts):
        raise NotImplementedError(
            "The Lantern backend stages loops as recursion; rewrite the loop "
            "as a recursive function (its distinguishing capability, §8)."
        )

    def not_(self, value):
        # Staged boolean negation: model as 1 - b via a dedicated emit; we
        # reuse the 'sub' op on the boolean symbol (compiler lowers bools
        # to Python bools, where (not b) is emitted directly).
        out = self.builder.fresh("nb")
        self.builder.current_block.instructions.append(
            ("op", out, "not", [value.sym])
        )
        return StagedBool(out, self.builder)

    def intercept_call(self, f, args, kwargs):
        """converted_call hook: emit IR calls for staged functions."""
        if not self._active or kwargs:
            return NOT_INTERCEPTED
        target = getattr(f, "__wrapped_original__", None) or getattr(
            f, "__ag_original__", None
        ) or f
        fdef = self._staged_functions.get(target)
        if fdef is None:
            self._note_inline_call(target, args)
            return NOT_INTERCEPTED
        if not any(isinstance(a, StagedValue) for a in args):
            return NOT_INTERCEPTED
        return self.builder.emit_call(fdef.name, list(args), fdef.n_outputs)

    def _note_inline_call(self, target, args):
        """Track unregistered helpers traced inline on staged arguments.

        A helper that keeps re-entering (recursion on a staged tree would
        otherwise inline forever) is reported via ReentrantStagingError so
        the caller can promote it to a staged IR function and retrace.
        """
        kinds = [_staged_kind(a) for a in args]
        if not any(kinds) or not callable(target):
            return
        # Only functions converted_call would inline-convert can loop the
        # trace: allowlisted modules (the lt.* ops, framework code) run
        # as ordinary Python and never re-enter on staged values.
        from repro.autograph.core.config import is_allowlisted_module

        if (getattr(target, "__code__", None) is None
                or getattr(target, "__ag_do_not_convert__", False)
                or is_allowlisted_module(getattr(target, "__module__", None))):
            return
        count = self._entry_counts.get(target, 0) + 1
        self._entry_counts[target] = count
        if count > _REENTRANT_THRESHOLD:
            if None in kinds:
                raise TypeError(
                    f"Re-entrant staged call to "
                    f"{getattr(target, '__name__', target)!r} mixes staged "
                    "and unstaged arguments; only tensors, trees and bools "
                    "can cross a staged Lantern call"
                )
            raise ReentrantStagingError(target, kinds)

    # ------------------------------------------------------------------
    # Staged definition (paper's __def_staged / __call_staged)
    # ------------------------------------------------------------------

    def framework_op_hook(self, op_type, inputs, attrs):
        """Framework-dispatch hook: stage ``ops.*`` calls on our values.

        Lets functions written against the *framework* op API (the graph
        backend's surface) stage into the Lantern IR unchanged — the §8
        backend-agnostic front-end claim at the op level.
        """
        from repro.framework.ops import dispatch as fw_dispatch

        if not self._active or not any(
            isinstance(v, StagedValue) and v.builder is self.builder
            for v in inputs
        ):
            return fw_dispatch.NOT_HANDLED
        from .lowering import lower_op_call

        return lower_op_call(self.builder, op_type, inputs, attrs)

    @contextlib.contextmanager
    def active(self):
        """Activate the backend: registers dispatch + call interception."""
        from repro.framework.ops import dispatch as fw_dispatch

        ag_dispatch.register_backend(self)
        ag_dispatch.register_call_interceptor(self.intercept_call)
        fw_dispatch.register_staging_hook(self.framework_op_hook)
        self._active = True
        self._entry_counts = {}
        try:
            yield self
        finally:
            self._active = False
            fw_dispatch.unregister_staging_hook(self.framework_op_hook)
            ag_dispatch.unregister_call_interceptor(self.intercept_call)
            ag_dispatch.unregister_backend(self)

    def staged_arg(self, kind, name):
        """A staged function parameter of the given kind."""
        sym = self.builder.fresh(name)
        if kind == "tree":
            return StagedTree(sym, self.builder)
        if kind == "bool":
            return StagedBool(sym, self.builder)
        return StagedTensor(sym, self.builder)

    def def_staged(self, fn, arg_kinds, n_outputs=1, name=None):
        """Stage ``fn`` (to be AutoGraph-converted) into the program.

        Args:
          fn: the original Python function (it will be converted and traced).
          arg_kinds: list of 'tensor' | 'tree' | 'bool' parameter kinds.
          n_outputs: number of values the function returns.
          name: IR function name (defaults to fn's name).

        Returns:
          The FunctionDef.  Recursive calls inside ``fn`` (and calls from
          later-staged functions) emit IR ``call`` instructions.
        """
        target = getattr(fn, "__ag_original__", None) or fn
        if target in self._staged_functions:
            return self._staged_functions[target]
        fn_name = name or target.__name__
        params = [self.staged_arg(kind, f"a_{fn_name}_") for kind in arg_kinds]
        return self.stage_function(fn, params, list(params),
                                   n_outputs=n_outputs, name=name)

    def declare_staged(self, fn, arg_kinds, n_outputs=1, name=None):
        """Register ``fn``'s FunctionDef without tracing its body yet.

        Calls to a declared function intercept immediately, so a *set* of
        mutually recursive helpers can all be declared before any body is
        traced (:meth:`trace_declared`) — tracing one would otherwise
        inline the not-yet-registered others forever.
        """
        target = getattr(fn, "__ag_original__", None) or fn
        if target in self._staged_functions:
            return self._staged_functions[target]
        fn_name = name or target.__name__
        params = [self.staged_arg(kind, f"a_{fn_name}_") for kind in arg_kinds]
        fdef = FunctionDef(
            fn_name, [p.sym for p in params], list(arg_kinds), n_outputs
        )
        self._staged_functions[target] = fdef
        self.program.functions[fn_name] = fdef
        self._pending_traces[target] = (fdef, params)
        return fdef

    def trace_declared(self):
        """Trace the bodies of every declared-but-untraced function."""
        import repro.autograph as ag

        while self._pending_traces:
            target, (fdef, params) = next(iter(self._pending_traces.items()))
            del self._pending_traces[target]
            converted = ag.to_graph(target)
            self.builder.push_block(fdef.block)
            try:
                result = converted(*params)
            finally:
                self.builder.pop_block()
            self._finish_staged(fdef, result)

    def stage_function(self, fn, staged_params, call_args, call_kwargs=None,
                       n_outputs=1, name=None):
        """Stage ``fn`` with explicit parameters and call arguments.

        The general form of :meth:`def_staged`: ``staged_params`` become
        the IR function's parameters while ``call_args``/``call_kwargs``
        are what the converted function is actually traced with — staged
        params interleaved with concrete Python values (which specialize
        the trace, like graph-backend constants).

        Raises:
          StagedArityError: ``fn`` returned a different number of values
            than ``n_outputs`` declared (re-stage with ``.actual``).
        """
        import repro.autograph as ag

        target = getattr(fn, "__ag_original__", None) or fn
        fn_name = name or target.__name__
        fdef = FunctionDef(
            fn_name, [p.sym for p in staged_params],
            [_staged_kind(p) for p in staged_params], n_outputs
        )
        # Register *before* tracing so recursive calls are intercepted.
        self._staged_functions[target] = fdef
        self.program.functions[fn_name] = fdef

        converted = ag.to_graph(target)
        self.builder.push_block(fdef.block)
        try:
            result = converted(*call_args, **(call_kwargs or {}))
        finally:
            self.builder.pop_block()
        return self._finish_staged(fdef, result)

    def _finish_staged(self, fdef, result):
        """Arity-check a traced body's return value and wire the results."""
        if not isinstance(result, tuple):
            result = (result,)
        if len(result) != fdef.n_outputs:
            raise StagedArityError(fdef.name, fdef.n_outputs, len(result))
        staged_results = [self.builder.as_staged(_enter_block(self, fdef, r))
                          for r in result]
        fdef.block.result_syms = tuple(v.sym for v in staged_results)
        return fdef

    def call_staged(self, fn, *args):
        """Emit a call to a previously staged function (``__call_staged``)."""
        target = getattr(fn, "__ag_original__", None) or fn
        fdef = self._staged_functions.get(target)
        if fdef is None:
            raise KeyError(f"{fn!r} has not been staged with def_staged")
        return self.builder.emit_call(fdef.name, list(args), fdef.n_outputs)


def _enter_block(stager, fdef, value):
    """Coerce return leaves; constants must be emitted inside the block."""
    if isinstance(value, StagedValue):
        return value
    stager.builder.push_block(fdef.block)
    try:
        return stager.builder.as_staged(value)
    finally:
        stager.builder.pop_block()
