"""Lantern: the alternate staging backend (paper §8).

An S-expression IR supporting *re-entrant staged function calls* — and
therefore recursive models — which the graph IR cannot express.  The same
AutoGraph front-end stages Python into this IR (backend-agnostic SCT),
and a one-time compile step lowers it to executable code with
continuation-based back-propagation.
"""

from .compiler import CompiledProgram, compile_program
from .ir import (
    Block,
    Builder,
    FunctionDef,
    Param,
    Program,
    StagedBool,
    StagedTensor,
    StagedTree,
    StagedValue,
)
from .lowering import (
    GRAPH_TO_LANTERN,
    LanternLoweringError,
    lower_graph,
    lower_op_call,
)
from .models import LanternTreeLSTM, stage_tree_prod, tree_prod
from .serialize import (
    LanternSerializationError,
    program_from_payload,
    program_to_payload,
)
from .sexpr import Sym, format_sexpr, parse_sexpr
from .staging import ReentrantStagingError, StagedArityError, Stager
from . import ops

__all__ = [
    "Stager",
    "Program",
    "Builder",
    "Block",
    "FunctionDef",
    "Param",
    "StagedValue",
    "StagedTensor",
    "StagedBool",
    "StagedTree",
    "compile_program",
    "CompiledProgram",
    "tree_prod",
    "stage_tree_prod",
    "LanternTreeLSTM",
    "Sym",
    "format_sexpr",
    "parse_sexpr",
    "ops",
    "GRAPH_TO_LANTERN",
    "LanternLoweringError",
    "lower_graph",
    "lower_op_call",
    "ReentrantStagingError",
    "StagedArityError",
    "LanternSerializationError",
    "program_to_payload",
    "program_from_payload",
]
