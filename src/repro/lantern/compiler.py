"""Lantern compiler: lowers the IR to executable code (paper §8).

Where the real Lantern emits C++ with continuation-based back-propagation
(the ``cont``/``cont_l``/``cont_r`` lambdas in the paper's generated
snippet), we emit Python source with the *same structure*: each staged
function compiles to

    def f(args...):
        <forward SSA>
        def _bwd(d_out...):          # the continuation
            <reverse adjoints; recursive calls invoke child continuations>
            return (d_arg...)
        return (out..., _bwd)

Compilation happens once; afterwards training steps run the generated
code directly — no tracing, no dispatch, no tape — which is why the
staged TreeLSTM beats the define-by-run comparator in Table 3.
"""

from __future__ import annotations

import numpy as np

from .ir import Program

__all__ = ["compile_program", "CompiledProgram"]


def _unb(grad, like):
    """Unbroadcast ``grad`` onto the shape of ``like``."""
    g = np.asarray(grad)
    while g.ndim > like.ndim:
        g = g.sum(axis=0)
    for axis, (gd, ld) in enumerate(zip(g.shape, like.shape)):
        if ld == 1 and gd != 1:
            g = g.sum(axis=axis, keepdims=True)
    return g


def _np_sigmoid(x):
    x = np.asarray(x, dtype=np.float32)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _np_xent(logits, label):
    logits = np.asarray(logits)
    shifted = logits - logits.max()
    log_probs = shifted - np.log(np.exp(shifted).sum())
    return -float(log_probs.reshape(-1)[int(label)])


def _np_softmax(logits):
    logits = np.asarray(logits)
    e = np.exp(logits - logits.max())
    return e / e.sum()


# Forward expression templates: op -> format(args...).
_FWD = {
    "add": "{0} + {1}",
    "sub": "{0} - {1}",
    "mul": "{0} * {1}",
    "div": "{0} / {1}",
    "neg": "-{0}",
    "tanh": "np.tanh({0})",
    "sigmoid": "_sigmoid({0})",
    "relu": "np.maximum({0}, 0.0)",
    "exp": "np.exp({0})",
    "log": "np.log({0})",
    "sqrt": "np.sqrt({0})",
    "square": "np.square({0})",
    "abs": "np.abs({0})",
    "transpose": "np.transpose({0})",
    "maximum": "np.maximum({0}, {1})",
    "matmul": "{0} @ {1}",
    "concat0": "np.concatenate(({0}, {1}), axis=0)",
    "concat1": "np.concatenate(({0}, {1}), axis=1)",
    "sum": "np.sum({0})",
    "sum0": "np.sum({0}, axis=0)",
    "sum1": "np.sum({0}, axis=1)",
    "sumk": "np.sum({0}, keepdims=True)",
    "sum0k": "np.sum({0}, axis=0, keepdims=True)",
    "sum1k": "np.sum({0}, axis=1, keepdims=True)",
    "mean": "np.mean({0})",
    "mean0": "np.mean({0}, axis=0)",
    "mean1": "np.mean({0}, axis=1)",
    "meank": "np.mean({0}, keepdims=True)",
    "mean0k": "np.mean({0}, axis=0, keepdims=True)",
    "mean1k": "np.mean({0}, axis=1, keepdims=True)",
    "xent": "_xent({0}, {1})",
    "not": "not {0}",
}


class _Emitter:
    """Accumulates generated source lines with indentation."""

    def __init__(self):
        self.lines = []

    def emit(self, indent, text):
        self.lines.append("    " * indent + text)

    def source(self):
        return "\n".join(self.lines) + "\n"


class _GradNames:
    """Tracks gradient accumulation variables within one backward scope."""

    def __init__(self):
        self.seen = set()

    def accum(self, emitter, indent, sym, expr):
        var = f"g_{sym}"
        if sym in self.seen:
            emitter.emit(indent, f"{var} = {var} + ({expr})")
        else:
            emitter.emit(indent, f"{var} = {expr}")
            self.seen.add(sym)
        return var

    def read(self, sym):
        return f"g_{sym}" if sym in self.seen else None


def _block_defined_syms(block):
    defined = set()
    for instr in block.instructions:
        tag = instr[0]
        if tag in ("op", "const", "param", "field"):
            defined.add(instr[1])
        elif tag == "call":
            defined.update(instr[1])
        elif tag == "if":
            defined.update(instr[1])
    return defined


def _block_used_syms(block):
    used = set()
    for instr in block.instructions:
        tag = instr[0]
        if tag == "op":
            used.update(instr[3])
        elif tag == "field":
            used.add(instr[2])
        elif tag == "call":
            used.update(instr[3])
        elif tag == "if":
            used.add(instr[2])
            for sub in (instr[3], instr[4]):
                used |= _block_used_syms(sub) - _block_defined_syms(sub)
                used.update(sub.result_syms)
    used.update(block.result_syms)
    return used


def _diff_free_syms(block):
    """Free symbols of a block that can carry gradients (sorted)."""
    free = _block_used_syms(block) - _block_defined_syms(block)
    return sorted(free)


class _FunctionCompiler:
    def __init__(self, program, fdef, with_grad):
        self.program = program
        self.fdef = fdef
        self.with_grad = with_grad
        self._closure_counter = 0

    def generate(self, emitter):
        f = self.fdef
        emitter.emit(0, f"def {f.name}({', '.join(f.param_syms)}):")
        self._emit_forward_block(emitter, 1, f.block)
        results = ", ".join(f.block.result_syms)
        if self.with_grad:
            self._emit_backward_fn(
                emitter, 1, "_bwd", f.block, list(f.param_syms)
            )
            emitter.emit(1, f"return ({results}, _bwd)")
        else:
            emitter.emit(1, f"return ({results},)")
        emitter.emit(0, "")

    # ------------------------------------------------------------ forward

    def _emit_forward_block(self, emitter, indent, block):
        for instr in block.instructions:
            tag = instr[0]
            if tag == "op":
                _, out, op, args = instr
                emitter.emit(indent, f"{out} = {_FWD[op].format(*args)}")
            elif tag == "const":
                _, out, value = instr
                if np.isscalar(value):
                    emitter.emit(indent, f"{out} = {float(value)!r}")
                else:
                    emitter.emit(indent, f"{out} = _C[{out!r}]")
            elif tag == "param":
                _, out, name = instr
                emitter.emit(indent, f"{out} = _P[{name!r}]")
            elif tag == "field":
                _, out, obj, field = instr
                emitter.emit(indent, f"{out} = {obj}.{field}")
            elif tag == "call":
                _, outs, fn_name, args = instr
                targets = ", ".join(outs)
                if self.with_grad:
                    bwd_var = self._fresh_closure(f"_bc")
                    instr_bwd_var = bwd_var
                    emitter.emit(
                        indent,
                        f"{targets}, {bwd_var} = {fn_name}({', '.join(args)})",
                    )
                    self._call_bwd_names[id(instr)] = bwd_var
                else:
                    emitter.emit(
                        indent,
                        f"{targets}{',' if len(outs) == 1 else ''} = "
                        f"{fn_name}({', '.join(args)})",
                    )
            elif tag == "if":
                self._emit_forward_if(emitter, indent, instr)
            else:  # pragma: no cover - defensive
                raise ValueError(f"Unknown instruction {instr!r}")

    def _emit_forward_if(self, emitter, indent, instr):
        _, outs, cond, then_block, else_block = instr
        free = sorted(
            set(_diff_free_syms(then_block)) | set(_diff_free_syms(else_block))
        )
        self._if_free_syms[id(instr)] = free
        bif_var = self._fresh_closure("_bif") if self.with_grad else None
        self._if_bwd_names[id(instr)] = bif_var

        emitter.emit(indent, f"if {cond}:")
        self._emit_branch(emitter, indent + 1, then_block, outs, free, bif_var)
        emitter.emit(indent, "else:")
        self._emit_branch(emitter, indent + 1, else_block, outs, free, bif_var)

    def _emit_branch(self, emitter, indent, block, outs, free, bif_var):
        self._emit_forward_block(emitter, indent, block)
        for out, res in zip(outs, block.result_syms):
            emitter.emit(indent, f"{out} = {res}")
        if not outs:
            emitter.emit(indent, "pass")
        if self.with_grad and bif_var is not None:
            d_params = ", ".join(f"d_{i}" for i in range(len(outs)))
            emitter.emit(indent, f"def {bif_var}({d_params}):")
            grads = _GradNames()
            # Seed: branch result grads.
            for i, res in enumerate(block.result_syms):
                grads.accum(emitter, indent + 1, res, f"d_{i}")
            self._emit_backward_block(emitter, indent + 1, block, grads)
            ret = ", ".join(grads.read(s) or "0.0" for s in free)
            emitter.emit(indent + 1, f"return ({ret},)" if len(free) == 1
                         else f"return ({ret})")

    # ------------------------------------------------------------ backward

    def _emit_backward_fn(self, emitter, indent, name, block, param_syms):
        d_params = ", ".join(f"d_{i}" for i in range(len(block.result_syms)))
        emitter.emit(indent, f"def {name}({d_params}):")
        grads = _GradNames()
        for i, res in enumerate(block.result_syms):
            grads.accum(emitter, indent + 1, res, f"d_{i}")
        self._emit_backward_block(emitter, indent + 1, block, grads)
        ret = ", ".join(grads.read(s) or "0.0" for s in param_syms)
        if len(param_syms) == 1:
            emitter.emit(indent + 1, f"return ({ret},)")
        else:
            emitter.emit(indent + 1, f"return ({ret})")

    def _emit_backward_block(self, emitter, indent, block, grads):
        for instr in reversed(block.instructions):
            tag = instr[0]
            if tag == "op":
                self._emit_op_adjoint(emitter, indent, instr, grads)
            elif tag == "const":
                continue
            elif tag == "param":
                _, out, name = instr
                g = grads.read(out)
                if g is not None:
                    emitter.emit(
                        indent,
                        f"_G[{name!r}] += _unb({g}, _G[{name!r}])",
                    )
            elif tag == "field":
                continue  # runtime data carries no gradient
            elif tag == "call":
                _, outs, fn_name, args = instr
                bwd_var = self._call_bwd_names[id(instr)]
                d_args = ", ".join(grads.read(o) or "0.0" for o in outs)
                tmp = f"_d{self._fresh_idx()}"
                emitter.emit(indent, f"{tmp} = {bwd_var}({d_args})")
                for i, arg in enumerate(args):
                    grads.accum(emitter, indent, arg, f"{tmp}[{i}]")
            elif tag == "if":
                _, outs, cond, then_block, else_block = instr
                free = self._if_free_syms[id(instr)]
                bif_var = self._if_bwd_names[id(instr)]
                d_outs = ", ".join(grads.read(o) or "0.0" for o in outs)
                tmp = f"_d{self._fresh_idx()}"
                emitter.emit(indent, f"{tmp} = {bif_var}({d_outs})")
                for i, sym in enumerate(free):
                    grads.accum(emitter, indent, sym, f"{tmp}[{i}]")

    def _emit_op_adjoint(self, emitter, indent, instr, grads):
        _, out, op, args = instr
        g = grads.read(out)
        if g is None or op == "not":
            return
        a = args[0]
        b = args[1] if len(args) > 1 else None
        if op == "add":
            grads.accum(emitter, indent, a, g)
            grads.accum(emitter, indent, b, g)
        elif op == "sub":
            grads.accum(emitter, indent, a, g)
            grads.accum(emitter, indent, b, f"-({g})")
        elif op == "mul":
            grads.accum(emitter, indent, a, f"{g} * {b}")
            grads.accum(emitter, indent, b, f"{g} * {a}")
        elif op == "div":
            grads.accum(emitter, indent, a, f"{g} / {b}")
            grads.accum(emitter, indent, b, f"-({g}) * {a} / ({b} * {b})")
        elif op == "neg":
            grads.accum(emitter, indent, a, f"-({g})")
        elif op == "tanh":
            grads.accum(emitter, indent, a, f"{g} * (1.0 - {out} * {out})")
        elif op == "sigmoid":
            grads.accum(emitter, indent, a, f"{g} * {out} * (1.0 - {out})")
        elif op == "relu":
            grads.accum(emitter, indent, a, f"{g} * ({a} > 0)")
        elif op == "exp":
            grads.accum(emitter, indent, a, f"{g} * {out}")
        elif op == "log":
            grads.accum(emitter, indent, a, f"{g} / {a}")
        elif op == "sqrt":
            grads.accum(emitter, indent, a, f"{g} * 0.5 / {out}")
        elif op == "square":
            grads.accum(emitter, indent, a, f"{g} * 2.0 * {a}")
        elif op == "abs":
            grads.accum(emitter, indent, a, f"{g} * np.sign({a})")
        elif op == "transpose":
            grads.accum(emitter, indent, a, f"np.transpose({g})")
        elif op == "maximum":
            grads.accum(emitter, indent, a, f"{g} * ({a} >= {b})")
            grads.accum(emitter, indent, b, f"{g} * ({a} < {b})")
        elif op == "matmul":
            grads.accum(emitter, indent, a, f"{g} @ np.transpose({b})")
            grads.accum(emitter, indent, b, f"np.transpose({a}) @ {g}")
        elif op == "concat0":
            split = f"np.shape({a})[0]"
            grads.accum(emitter, indent, a, f"({g})[:{split}]")
            grads.accum(emitter, indent, b, f"({g})[{split}:]")
        elif op == "concat1":
            split = f"np.shape({a})[1]"
            grads.accum(emitter, indent, a, f"({g})[:, :{split}]")
            grads.accum(emitter, indent, b, f"({g})[:, {split}:]")
        elif op in ("sum", "sumk"):
            grads.accum(emitter, indent, a, f"{g} * np.ones_like({a})")
        elif op in ("sum0", "sum1"):
            axis = 0 if op == "sum0" else 1
            grads.accum(
                emitter, indent, a,
                f"np.expand_dims({g}, {axis}) * np.ones_like({a})")
        elif op in ("sum0k", "sum1k"):
            # keepdims output broadcasts straight back over the input.
            grads.accum(emitter, indent, a, f"{g} * np.ones_like({a})")
        elif op in ("mean", "meank"):
            grads.accum(
                emitter, indent, a,
                f"{g} * np.ones_like({a}) / np.size({a})")
        elif op in ("mean0", "mean1"):
            axis = 0 if op == "mean0" else 1
            grads.accum(
                emitter, indent, a,
                f"np.expand_dims({g}, {axis}) * np.ones_like({a}) "
                f"/ np.shape({a})[{axis}]")
        elif op in ("mean0k", "mean1k"):
            axis = 0 if op == "mean0k" else 1
            grads.accum(
                emitter, indent, a,
                f"{g} * np.ones_like({a}) / np.shape({a})[{axis}]")
        elif op == "xent":
            tmp = f"_sm{self._fresh_idx()}"
            emitter.emit(indent, f"{tmp} = _softmax({a})")
            emitter.emit(
                indent,
                f"{tmp} = {tmp}.reshape(1, -1).copy(); "
                f"{tmp}[0, int({b})] -= 1.0",
            )
            grads.accum(emitter, indent, a, f"{g} * {tmp}")
        else:  # pragma: no cover - defensive
            raise ValueError(f"No adjoint for op {op!r}")

    # ------------------------------------------------------------ misc

    _idx_counter = 0

    def _fresh_closure(self, prefix):
        self._closure_counter += 1
        return f"{prefix}{self._closure_counter}"

    def _fresh_idx(self):
        _FunctionCompiler._idx_counter += 1
        return _FunctionCompiler._idx_counter

    def prepare(self):
        self._call_bwd_names = {}
        self._if_bwd_names = {}
        self._if_free_syms = {}


class CompiledProgram:
    """Executable artifact of :func:`compile_program`.

    Attributes:
      namespace: the generated module globals (functions by name).
      params: name -> Param (shared storage with the caller).
      source: the generated Python source (inspectable, like the paper's
        generated C++ listing).
    """

    def __init__(self, namespace, params, source, with_grad):
        self.namespace = namespace
        self.params = params
        self.source = source
        self.with_grad = with_grad

    def func(self, name):
        return self.namespace[name]

    def zero_grads(self):
        for g in self.namespace["_G"].values():
            g[...] = 0.0

    def grads(self):
        return self.namespace["_G"]

    def run(self, name, *args):
        """Forward-only invocation; returns output tuple (or single)."""
        out = self.namespace[name](*args)
        if self.with_grad:
            out = out[:-1]
        return out[0] if len(out) == 1 else out

    def run_with_grad(self, name, *args, seed=1.0):
        """Run forward + backward (scalar outputs seeded with ``seed``).

        Returns the forward outputs; gradients accumulate into
        ``self.grads()`` / the Param objects.
        """
        if not self.with_grad:
            raise RuntimeError("Program compiled without gradients")
        out = self.namespace[name](*args)
        results, bwd = out[:-1], out[-1]
        bwd(*([seed] * len(results)))
        return results[0] if len(results) == 1 else results

    def sync_param_grads(self):
        """Copy accumulated grads back onto the Param objects."""
        g = self.namespace["_G"]
        for name, param in self.params.items():
            param.grad = g[name]


def compile_program(program, params=None, with_grad=True):
    """Compile a staged :class:`Program` into executable functions.

    Args:
      program: the traced IR.
      params: dict name -> Param (or ndarray) for ``param`` instructions;
        merged over the Params the Builder registered on the program while
        staging (``program.params``).
      with_grad: also generate the continuation-based backward pass.

    Returns:
      CompiledProgram.
    """
    if not isinstance(program, Program):
        raise TypeError("compile_program expects a lantern.ir.Program")
    merged = dict(getattr(program, "params", {}))
    merged.update(params or {})
    params = merged
    from .ir import Param

    param_objs = {
        name: p if isinstance(p, Param) else Param(name, p)
        for name, p in params.items()
    }

    emitter = _Emitter()
    for fdef in program.functions.values():
        fc = _FunctionCompiler(program, fdef, with_grad)
        fc.prepare()
        fc.generate(emitter)
    source = emitter.source()

    namespace = {
        "np": np,
        "_sigmoid": _np_sigmoid,
        "_xent": _np_xent,
        "_softmax": _np_softmax,
        "_unb": _unb,
        "_P": {name: p.value for name, p in param_objs.items()},
        "_G": {name: np.zeros_like(p.value) for name, p in param_objs.items()},
        "_C": {
            k: np.asarray(v, dtype=np.float32)
            for k, v in program.consts.items()
            if not np.isscalar(v)
        },
    }
    code = compile(source, "<lantern-generated>", "exec")
    exec(code, namespace)
    return CompiledProgram(namespace, param_objs, source, with_grad)
