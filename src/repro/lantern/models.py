"""Models staged through AutoGraph → Lantern (paper §8 and §9.1).

- ``tree_prod``: the paper's end-to-end recursion example (§8), staged to
  the S-expression IR and compiled with CPS gradients.
- TreeLSTM sentiment classifier (§9.1, Table 3): the same mathematics as
  :class:`repro.nn.TreeLSTMClassifier`, written imperatively with
  recursion, converted by AutoGraph and staged into Lantern.
"""

from __future__ import annotations

import numpy as np

from . import ops as lt
from .compiler import compile_program
from .ir import Param
from .staging import Stager

__all__ = [
    "tree_prod",
    "stage_tree_prod",
    "build_treelstm_lantern",
    "LanternTreeLSTM",
]


def tree_prod(base, tree):
    """The paper's recursive example: product of tree values (§8)."""
    if not tree.is_empty:
        l = tree_prod(base, tree.left)
        r = tree_prod(base, tree.right)
        return l * r * tree.value
    else:
        return base


def stage_tree_prod(with_grad=True):
    """Stage & compile ``tree_prod``; returns (compiled, program, stager)."""
    stager = Stager()
    with stager.active():
        stager.def_staged(tree_prod, ["tensor", "tree"], n_outputs=1)
    compiled = compile_program(stager.program, params={}, with_grad=with_grad)
    return compiled, stager.program, stager


# ---------------------------------------------------------------------------
# TreeLSTM (Table 3)
# ---------------------------------------------------------------------------


class LanternTreeLSTM:
    """AutoGraph→Lantern TreeLSTM sentiment model.

    Shares parameter *values* with an ``repro.nn.TreeLSTMCell`` params
    dict, so the define-by-run comparator and this staged model compute
    identical numbers.
    """

    def __init__(self, hidden_dim, num_classes=5, params_np=None, rng=None):
        rng = rng or np.random.default_rng(0)
        from repro.nn.layers import glorot_init

        if params_np is None:
            d2 = 2 * hidden_dim
            params_np = {
                "w_i": glorot_init(rng, (d2, hidden_dim)),
                "w_fl": glorot_init(rng, (d2, hidden_dim)),
                "w_fr": glorot_init(rng, (d2, hidden_dim)),
                "w_o": glorot_init(rng, (d2, hidden_dim)),
                "w_g": glorot_init(rng, (d2, hidden_dim)),
                "b_i": np.zeros((1, hidden_dim), np.float32),
                "b_f": np.ones((1, hidden_dim), np.float32),
                "b_o": np.zeros((1, hidden_dim), np.float32),
                "b_g": np.zeros((1, hidden_dim), np.float32),
                "w_out": glorot_init(rng, (hidden_dim, num_classes)),
                "b_out": np.zeros((1, num_classes), np.float32),
            }
        else:
            params_np = {
                k: (v.reshape(1, -1) if v.ndim == 1 else v)
                for k, v in params_np.items()
            }
        self.hidden_dim = hidden_dim
        self.num_classes = num_classes
        self.params = {k: Param(k, v) for k, v in params_np.items()}
        self.compiled = None
        self.program = None

    # -- the imperative model (converted by AutoGraph) -------------------------

    def _make_functions(self):
        p = self.params

        def embed(tree):
            if tree.is_leaf:
                c = lt.tanh(tree.embedding)
                h = lt.tanh(c)
            else:
                c_l, h_l = embed(tree.left)
                c_r, h_r = embed(tree.right)
                x = lt.concat1(h_l, h_r)
                i = lt.sigmoid(lt.matmul(x, p["w_i"]) + p["b_i"])
                fl = lt.sigmoid(lt.matmul(x, p["w_fl"]) + p["b_f"])
                fr = lt.sigmoid(lt.matmul(x, p["w_fr"]) + p["b_f"])
                o = lt.sigmoid(lt.matmul(x, p["w_o"]) + p["b_o"])
                g = lt.tanh(lt.matmul(x, p["w_g"]) + p["b_g"])
                c = i * g + fl * c_l + fr * c_r
                h = o * lt.tanh(c)
            return c, h

        def tree_loss(tree, label):
            c, h = embed(tree)
            logits = lt.matmul(h, p["w_out"]) + p["b_out"]
            return lt.xent(logits, label)

        return embed, tree_loss

    # -- staging -----------------------------------------------------------------

    def compile(self, with_grad=True):
        """AutoGraph-convert, stage to the IR and compile.  One-time cost."""
        embed, tree_loss = self._make_functions()
        stager = Stager()
        with stager.active():
            stager.def_staged(embed, ["tree"], n_outputs=2)
            stager.def_staged(tree_loss, ["tree", "tensor"], n_outputs=1)
        self.program = stager.program
        self.compiled = compile_program(
            self.program, params=self.params, with_grad=with_grad
        )
        return self.compiled

    # -- training ----------------------------------------------------------------

    def loss(self, tree):
        if self.compiled is None:
            self.compile()
        return float(np.asarray(self.compiled.run("tree_loss", tree, tree.label)))

    def train_step(self, tree, learning_rate=0.05):
        """One SGD step on a single tree; returns the loss."""
        if self.compiled is None:
            self.compile()
        self.compiled.zero_grads()
        loss = self.compiled.run_with_grad("tree_loss", tree, tree.label)
        grads = self.compiled.grads()
        values = self.compiled.namespace["_P"]
        for name, grad in grads.items():
            values[name] -= learning_rate * grad
        return float(np.asarray(loss))

    def eager_reference_loss(self, tree):
        """Unstaged NumPy evaluation of the same model (for tests)."""
        embed, tree_loss = self._make_functions()
        return float(tree_loss(tree, tree.label))
