"""User-facing Lantern math functions.

Dual-mode like the framework ops: on staged values they emit IR
instructions; on NumPy values they compute immediately (used by tests to
check staged-vs-eager equivalence, and by the define-by-run comparator).
"""

from __future__ import annotations

import numpy as np

from .ir import Param, StagedTensor, StagedValue

__all__ = ["tanh", "sigmoid", "relu", "exp", "log", "sqrt", "square",
           "abs_", "transpose", "maximum", "matmul", "concat0", "concat1",
           "sum_", "mean", "xent", "numpy_kernels"]


def _np_sigmoid(x):
    out = np.empty_like(x, dtype=np.float32)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _np_xent(logits, label):
    logits = np.asarray(logits)
    shifted = logits - logits.max()
    log_probs = shifted - np.log(np.exp(shifted).sum())
    return -float(log_probs.reshape(-1)[int(label)])


numpy_kernels = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "neg": lambda a: -a,
    "tanh": np.tanh,
    "sigmoid": lambda a: _np_sigmoid(np.asarray(a, dtype=np.float32)),
    "relu": lambda a: np.maximum(a, 0.0),
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "square": np.square,
    "abs": np.abs,
    "transpose": np.transpose,
    "maximum": lambda a, b: np.maximum(a, b),
    "matmul": lambda a, b: a @ b,
    "concat0": lambda a, b: np.concatenate((a, b), axis=0),
    "concat1": lambda a, b: np.concatenate((a, b), axis=1),
    "sum": lambda a: np.sum(a),
    "sum0": lambda a: np.sum(a, axis=0),
    "sum1": lambda a: np.sum(a, axis=1),
    "sumk": lambda a: np.sum(a, keepdims=True),
    "sum0k": lambda a: np.sum(a, axis=0, keepdims=True),
    "sum1k": lambda a: np.sum(a, axis=1, keepdims=True),
    "mean": lambda a: np.mean(a),
    "mean0": lambda a: np.mean(a, axis=0),
    "mean1": lambda a: np.mean(a, axis=1),
    "meank": lambda a: np.mean(a, keepdims=True),
    "mean0k": lambda a: np.mean(a, axis=0, keepdims=True),
    "mean1k": lambda a: np.mean(a, axis=1, keepdims=True),
    "xent": _np_xent,
}

_AXIS_SUFFIX = {None: "", 0: "0", 1: "1"}


def _unwrap(value):
    if isinstance(value, Param):
        return value.value
    return value


def _dispatch(op, *args):
    staged = next((a for a in args if isinstance(a, StagedValue)), None)
    if staged is not None:
        return staged.builder.emit(op, *args)
    return numpy_kernels[op](*[_unwrap(a) for a in args])


def tanh(x):
    """Elementwise tanh (staged or immediate)."""
    return _dispatch("tanh", x)


def sigmoid(x):
    """Elementwise logistic (staged or immediate)."""
    return _dispatch("sigmoid", x)


def relu(x):
    """Elementwise relu (staged or immediate)."""
    return _dispatch("relu", x)


def exp(x):
    return _dispatch("exp", x)


def log(x):
    return _dispatch("log", x)


def sqrt(x):
    return _dispatch("sqrt", x)


def square(x):
    return _dispatch("square", x)


def abs_(x):
    return _dispatch("abs", x)


def transpose(x):
    """Matrix transpose."""
    return _dispatch("transpose", x)


def maximum(a, b):
    """Elementwise maximum."""
    return _dispatch("maximum", a, b)


def mean(x, axis=None, keepdims=False):
    """Mean over all elements (``axis=None``) or along axis 0/1."""
    if axis not in _AXIS_SUFFIX:
        raise ValueError(f"lantern mean supports axis None/0/1, got {axis!r}")
    suffix = _AXIS_SUFFIX[axis] + ("k" if keepdims else "")
    return _dispatch(f"mean{suffix}", x)


def matmul(a, b):
    """Matrix (or row-vector) product."""
    return _dispatch("matmul", a, b)


def concat1(a, b):
    """Concatenate two row vectors along axis 1."""
    return _dispatch("concat1", a, b)


def concat0(a, b):
    """Concatenate along axis 0 (stack rows)."""
    return _dispatch("concat0", a, b)


def sum_(a, axis=None, keepdims=False):
    """Sum over all elements (``axis=None``) or along axis 0/1."""
    if axis not in _AXIS_SUFFIX:
        raise ValueError(f"lantern sum supports axis None/0/1, got {axis!r}")
    suffix = _AXIS_SUFFIX[axis] + ("k" if keepdims else "")
    return _dispatch(f"sum{suffix}", a)


def xent(logits, label):
    """Sparse softmax cross-entropy of a [1, C] logits row vs int label."""
    return _dispatch("xent", logits, label)
