"""S-expressions: the textual form of the Lantern IR (paper §8).

The Lantern back-end "converts Lisp-like S-expressions describing numeric
operations into efficient C++ code".  Our IR (:mod:`repro.lantern.ir`)
serializes to this form; the compiler consumes the IR directly, with the
S-expression text serving as the inspectable interchange format the paper
describes (Python → S-Expr → compiled code).
"""

from __future__ import annotations

__all__ = ["Sym", "format_sexpr", "parse_sexpr"]


class Sym:
    """An interned symbol."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = str(name)

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        if isinstance(other, Sym):
            return self.name == other.name
        return NotImplemented

    def __hash__(self):
        return hash(("Sym", self.name))


def format_sexpr(expr, indent=0):
    """Render a nested tuple/list structure as an S-expression string."""
    if isinstance(expr, (tuple, list)):
        parts = [format_sexpr(e) for e in expr]
        flat = "(" + " ".join(parts) + ")"
        if len(flat) <= 80 or indent > 6:
            return flat
        pad = "\n" + "  " * (indent + 1)
        return "(" + pad.join(format_sexpr(e, indent + 1) for e in expr) + ")"
    if isinstance(expr, Sym):
        return expr.name
    if isinstance(expr, str):
        return '"' + expr.replace('"', '\\"') + '"'
    if isinstance(expr, float):
        return repr(expr)
    return str(expr)


def parse_sexpr(text):
    """Parse an S-expression string into nested tuples of Sym/num/str."""
    tokens = _tokenize(text)
    pos = [0]

    def parse():
        if pos[0] >= len(tokens):
            raise ValueError("Unexpected end of S-expression")
        token = tokens[pos[0]]
        pos[0] += 1
        if token == "(":
            items = []
            while pos[0] < len(tokens) and tokens[pos[0]] != ")":
                items.append(parse())
            if pos[0] >= len(tokens):
                raise ValueError("Unbalanced parentheses")
            pos[0] += 1  # consume ')'
            return tuple(items)
        if token == ")":
            raise ValueError("Unexpected ')'")
        return _atom(token)

    result = parse()
    if pos[0] != len(tokens):
        raise ValueError("Trailing tokens after S-expression")
    return result


def _tokenize(text):
    tokens = []
    i = 0
    while i < len(text):
        c = text[i]
        if c.isspace():
            i += 1
        elif c in "()":
            tokens.append(c)
            i += 1
        elif c == '"':
            j = i + 1
            buf = []
            while j < len(text) and text[j] != '"':
                if text[j] == "\\" and j + 1 < len(text):
                    buf.append(text[j + 1])
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            tokens.append('"' + "".join(buf))
            i = j + 1
        else:
            j = i
            while j < len(text) and not text[j].isspace() and text[j] not in "()":
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _atom(token):
    if token.startswith('"'):
        return token[1:]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return Sym(token)
