"""Graph-IR → Lantern lowering (paper §8: one front-end, many backends).

Two public surfaces:

- :func:`lower_graph` — a Builder-level translator that walks a traced
  (usually optimized) :class:`~repro.framework.graph.graph.Graph` and
  re-emits it as one Lantern :class:`~repro.lantern.ir.FunctionDef`, so a
  ``@repro.function`` trace can compile to the S-expression backend with
  continuation-based gradients instead of a ``Session`` plan;
- :func:`lower_op_call` — a per-op translator used by the
  :class:`~repro.lantern.staging.Stager`'s framework dispatch hook, so
  *framework* ops (``ops.multiply`` …) called on staged Lantern values
  during direct staging emit IR instructions — the same user code stages
  into either backend.

Ops without a Lantern equivalent raise :class:`LanternLoweringError`, an
:class:`~repro.framework.errors.ExecutionError` naming the offending op.
"""

from __future__ import annotations

import numpy as np

from repro.framework.errors import ExecutionError

from .ir import Builder, FunctionDef, Program, StagedValue

__all__ = ["GRAPH_TO_LANTERN", "LanternLoweringError", "lower_graph",
           "lower_op_call"]


class LanternLoweringError(ExecutionError):
    """A graph op has no Lantern equivalent (or unsupported attributes)."""


class StagedValueRef(StagedValue):
    """A lightweight staged handle for an already-emitted symbol."""

    __slots__ = ()


# Graph op type -> Lantern primitive with identical semantics.
GRAPH_TO_LANTERN = {
    "Add": "add",
    "Sub": "sub",
    "Mul": "mul",
    "Div": "div",
    "Neg": "neg",
    "Tanh": "tanh",
    "Sigmoid": "sigmoid",
    "Relu": "relu",
    "Exp": "exp",
    "Log": "log",
    "Sqrt": "sqrt",
    "Square": "square",
    "Abs": "abs",
    "Maximum": "maximum",
    "Transpose": "transpose",
}

# Reductions lower whole-tensor (axis=None -> scalar) or along axis 0/1
# (keepdims=False); Lantern values are at most rank 2, so those two axes
# cover every axis-wise form a lowerable graph can produce.
_REDUCTIONS = {"Sum": "sum", "Mean": "mean"}
_AXIS_REDUCTIONS = {("Sum", 0): "sum0", ("Sum", 1): "sum1",
                    ("Mean", 0): "mean0", ("Mean", 1): "mean1"}
_CONCATS = {0: "concat0", 1: "concat1"}


def _unsupported(op_type, detail=""):
    suffix = f" ({detail})" if detail else ""
    return LanternLoweringError(
        f"Graph op {op_type!r} has no Lantern (S-expression backend) "
        f"equivalent{suffix}; supported ops: "
        f"{sorted(GRAPH_TO_LANTERN) + sorted(_REDUCTIONS)}. "
        "Use backend='graph' for this function.",
        op_name=op_type,
    )


def _emit_simple(builder, op_type, args, attrs):
    """Emit one translated op; ``args`` are staged values/convertibles."""
    attrs = attrs or {}
    if op_type in _REDUCTIONS:
        if attrs.get("keepdims"):
            raise _unsupported(op_type, "keepdims=True is not lowerable")
        axis = attrs.get("axis")
        if isinstance(axis, (list, tuple)):
            axis = axis[0] if len(axis) == 1 else axis
        if axis is None:
            return builder.emit(_REDUCTIONS[op_type], args[0])
        lantern_op = _AXIS_REDUCTIONS.get((op_type, axis))
        if lantern_op is None:
            raise _unsupported(
                op_type,
                f"axis={axis!r}; only axis=None (full), 0 or 1 lower "
                "(negative axes need a rank the IR does not track)")
        return builder.emit(lantern_op, args[0])
    if op_type == "MatMul":
        a, b = args
        if attrs.get("transpose_a"):
            a = builder.emit("transpose", a)
        if attrs.get("transpose_b"):
            b = builder.emit("transpose", b)
        return builder.emit("matmul", a, b)
    if op_type == "Concat":
        lantern_op = _CONCATS.get(attrs.get("axis", 0))
        if lantern_op is None or len(args) < 2:
            raise _unsupported(
                op_type,
                f"axis={attrs.get('axis')!r} with {len(args)} inputs; "
                "concatenation lowers along axis 0 or 1 with >= 2 inputs")
        # N-way concatenation folds into a chain of pairwise concats
        # (the adjoint splits at each fold boundary symmetrically).
        result = args[0]
        for nxt in args[1:]:
            result = builder.emit(lantern_op, result, nxt)
        return result
    if op_type == "Transpose" and attrs.get("perm") is not None:
        raise _unsupported(
            op_type, "only the default full axis reversal, perm=None")
    lantern_op = GRAPH_TO_LANTERN.get(op_type)
    if lantern_op is None:
        raise _unsupported(op_type)
    return builder.emit(lantern_op, *args)


def lower_op_call(builder, op_type, inputs, attrs):
    """Translate one framework-op call on staged values into the IR.

    This is the dispatch-hook path: the Stager routes framework ops whose
    inputs are staged Lantern values here, unwrapping eager tensors and
    Params so mixed-mode arguments stage as constants/parameters.
    """
    from repro.framework.eager.tensor import EagerTensor

    args = []
    for value in inputs:
        if isinstance(value, EagerTensor):
            value = value.numpy()
        args.append(value)
    return _emit_simple(builder, op_type, args, attrs)


def lower_graph(graph, inputs, outputs, *, name="main", program=None,
                builder=None):
    """Translate a traced graph into a Lantern function, via a Builder.

    Args:
      graph: the (optimized) Graph/FuncGraph to translate.
      inputs: placeholder tensors that become the function's parameters.
      outputs: graph tensors that become the function's results.
      name: IR function name.
      program/builder: optional existing Program/Builder to lower into.

    Returns:
      ``(program, fdef)`` — the Program and the new FunctionDef.

    Raises:
      LanternLoweringError: an op in the graph has no Lantern equivalent.
    """
    if not outputs:
        raise LanternLoweringError(
            f"Cannot lower {name!r}: a Lantern function needs at least one "
            "output tensor"
        )
    program = program if program is not None else Program()
    builder = builder if builder is not None else Builder(program)

    param_syms = [builder.fresh(f"a_{name}_") for _ in inputs]
    fdef = FunctionDef(name, param_syms, ["tensor"] * len(inputs),
                       len(outputs))
    program.functions[name] = fdef
    builder.push_block(fdef.block)
    try:
        env = {}
        for ph, sym in zip(inputs, param_syms):
            env[id(ph)] = sym

        def staged_in(tensor):
            sym = env.get(id(tensor))
            if sym is None:
                raise LanternLoweringError(
                    f"Tensor {tensor.name!r} reached lowering before its "
                    "producer; the op list is not topologically ordered"
                )
            return StagedValueRef(sym, builder)

        for op in graph.ops:
            if op.type == "Placeholder":
                if id(op.outputs[0]) not in env:
                    raise _unsupported(
                        "Placeholder",
                        f"placeholder {op.name!r} is not a declared input")
                continue
            if op.type == "Const":
                value = np.asarray(op.attrs["value"])
                staged = builder.emit_const(
                    float(value) if value.ndim == 0 else value)
                env[id(op.outputs[0])] = staged.sym
                continue
            if op.type == "Identity":
                env[id(op.outputs[0])] = env[id(op.inputs[0])]
                continue
            args = [staged_in(t) for t in op.inputs]
            staged = _emit_simple(builder, op.type, args, op.attrs)
            env[id(op.outputs[0])] = staged.sym

        missing = [t.name for t in outputs if id(t) not in env]
        if missing:
            raise LanternLoweringError(
                f"Outputs {missing} were not produced by the lowered graph")
        fdef.block.result_syms = tuple(env[id(t)] for t in outputs)
    finally:
        builder.pop_block()
    return program, fdef
