"""Graph-IR → Lantern lowering (paper §8: one front-end, many backends).

Two public surfaces:

- :func:`lower_graph` — a Builder-level translator that walks a traced
  (usually optimized) :class:`~repro.framework.graph.graph.Graph` and
  re-emits it as one Lantern :class:`~repro.lantern.ir.FunctionDef`, so a
  ``@repro.function`` trace can compile to the S-expression backend with
  continuation-based gradients instead of a ``Session`` plan;
- :func:`lower_op_call` — a per-op translator used by the
  :class:`~repro.lantern.staging.Stager`'s framework dispatch hook, so
  *framework* ops (``ops.multiply`` …) called on staged Lantern values
  during direct staging emit IR instructions — the same user code stages
  into either backend.

Ops without a Lantern equivalent raise :class:`LanternLoweringError`, an
:class:`~repro.framework.errors.ExecutionError` naming the offending op.
"""

from __future__ import annotations

import numpy as np

import re

from repro.framework.errors import ExecutionError

from .ir import Builder, FunctionDef, Param, Program, StagedValue

__all__ = ["GRAPH_TO_LANTERN", "LanternLoweringError", "lower_graph",
           "lower_op_call"]


class LanternLoweringError(ExecutionError):
    """A graph op has no Lantern equivalent (or unsupported attributes)."""


class StagedValueRef(StagedValue):
    """A lightweight staged handle for an already-emitted symbol."""

    __slots__ = ()


# Graph op type -> Lantern primitive with identical semantics.
GRAPH_TO_LANTERN = {
    "Add": "add",
    "Sub": "sub",
    "Mul": "mul",
    "Div": "div",
    "Neg": "neg",
    "Tanh": "tanh",
    "Sigmoid": "sigmoid",
    "Relu": "relu",
    "Exp": "exp",
    "Log": "log",
    "Sqrt": "sqrt",
    "Square": "square",
    "Abs": "abs",
    "Maximum": "maximum",
    "Transpose": "transpose",
}

# Reductions lower whole-tensor (axis=None -> scalar) or along axis 0/1,
# with or without keepdims; Lantern values are at most rank 2, so those
# two axes cover every axis-wise form a lowerable graph can produce.
# Negative axes normalize against the input's static rank when known.
_REDUCTIONS = {"Sum": "sum", "Mean": "mean"}
_AXIS_REDUCTIONS = {("Sum", 0, False): "sum0", ("Sum", 1, False): "sum1",
                    ("Sum", 0, True): "sum0k", ("Sum", 1, True): "sum1k",
                    ("Mean", 0, False): "mean0", ("Mean", 1, False): "mean1",
                    ("Mean", 0, True): "mean0k", ("Mean", 1, True): "mean1k"}
_CONCATS = {0: "concat0", 1: "concat1"}


def _unsupported(op_type, detail=""):
    suffix = f" ({detail})" if detail else ""
    return LanternLoweringError(
        f"Graph op {op_type!r} has no Lantern (S-expression backend) "
        f"equivalent{suffix}; supported ops: "
        f"{sorted(GRAPH_TO_LANTERN) + sorted(_REDUCTIONS)}. "
        "Use backend='graph' for this function.",
        op_name=op_type,
    )


def _emit_simple(builder, op_type, args, attrs, rank=None):
    """Emit one translated op; ``args`` are staged values/convertibles.

    ``rank`` is the first input's static rank when the caller knows it
    (graph lowering reads it off the tensor; the staged route passes it
    for concrete inputs) — it is what lets negative reduction axes
    normalize to 0/1.
    """
    attrs = attrs or {}
    if op_type in _REDUCTIONS:
        keepdims = bool(attrs.get("keepdims"))
        axis = attrs.get("axis")
        if isinstance(axis, (list, tuple)):
            axis = axis[0] if len(axis) == 1 else axis
        if axis is None:
            op = _REDUCTIONS[op_type] + ("k" if keepdims else "")
            return builder.emit(op, args[0])
        if isinstance(axis, int) and axis < 0:
            if rank is None:
                raise _unsupported(
                    op_type,
                    f"axis={axis!r} without a statically known rank; "
                    "negative axes normalize only when the input's rank "
                    "is known at lowering time")
            axis = axis + rank
        lantern_op = _AXIS_REDUCTIONS.get((op_type, axis, keepdims))
        if lantern_op is None:
            raise _unsupported(
                op_type,
                f"axis={axis!r} keepdims={keepdims}; only axis=None "
                "(full), 0 or 1 (possibly negative with known rank) lower")
        return builder.emit(lantern_op, args[0])
    if op_type == "MatMul":
        a, b = args
        if attrs.get("transpose_a"):
            a = builder.emit("transpose", a)
        if attrs.get("transpose_b"):
            b = builder.emit("transpose", b)
        return builder.emit("matmul", a, b)
    if op_type == "Concat":
        lantern_op = _CONCATS.get(attrs.get("axis", 0))
        if lantern_op is None or len(args) < 2:
            raise _unsupported(
                op_type,
                f"axis={attrs.get('axis')!r} with {len(args)} inputs; "
                "concatenation lowers along axis 0 or 1 with >= 2 inputs")
        # N-way concatenation folds into a chain of pairwise concats
        # (the adjoint splits at each fold boundary symmetrically).
        result = args[0]
        for nxt in args[1:]:
            result = builder.emit(lantern_op, result, nxt)
        return result
    if op_type == "Transpose" and attrs.get("perm") is not None:
        raise _unsupported(
            op_type, "only the default full axis reversal, perm=None")
    lantern_op = GRAPH_TO_LANTERN.get(op_type)
    if lantern_op is None:
        raise _unsupported(op_type)
    return builder.emit(lantern_op, *args)


def lower_op_call(builder, op_type, inputs, attrs):
    """Translate one framework-op call on staged values into the IR.

    This is the dispatch-hook path: the Stager routes framework ops whose
    inputs are staged Lantern values here, unwrapping eager tensors and
    Params so mixed-mode arguments stage as constants/parameters.
    """
    from repro.framework.eager.tensor import EagerTensor

    args = []
    for value in inputs:
        if isinstance(value, EagerTensor):
            value = value.numpy()
        args.append(value)
    rank = None
    if args and not isinstance(args[0], StagedValue):
        rank = np.ndim(args[0])
    return _emit_simple(builder, op_type, args, attrs, rank=rank)


def lower_graph(graph, inputs, outputs, *, name="main", program=None,
                builder=None, captures=None):
    """Translate a traced graph into a Lantern function, via a Builder.

    Args:
      graph: the (optimized) Graph/FuncGraph to translate.
      inputs: placeholder tensors that become the function's parameters.
      outputs: graph tensors that become the function's results.
      name: IR function name.
      program/builder: optional existing Program/Builder to lower into.
      captures: optional ``[(placeholder, name, initial_value), ...]`` —
        external-capture placeholders that lower to lantern ``Param``
        references instead of function parameters, so the compiled
        program shares mutable storage with the capture's source.

    Returns:
      ``(program, fdef, capture_params)`` — the Program, the new
      FunctionDef, and ``{capture name: Param}`` for the lowered
      captures.

    Raises:
      LanternLoweringError: an op in the graph has no Lantern equivalent.
    """
    if not outputs:
        raise LanternLoweringError(
            f"Cannot lower {name!r}: a Lantern function needs at least one "
            "output tensor"
        )
    program = program if program is not None else Program()
    builder = builder if builder is not None else Builder(program)

    param_syms = [builder.fresh(f"a_{name}_") for _ in inputs]
    fdef = FunctionDef(name, param_syms, ["tensor"] * len(inputs),
                       len(outputs))
    program.functions[name] = fdef
    capture_params = {}
    capture_plan = {}
    for ph, cap_name, value in captures or ():
        ir_name = re.sub(r"\W", "_", cap_name) or "capture"
        taken = set(program.params) | {p.name for p, _ in
                                       capture_plan.values()}
        unique, i = ir_name, 1
        while unique in taken:
            unique = f"{ir_name}_{i}"
            i += 1
        capture_plan[id(ph)] = (Param(unique, value), cap_name)
    builder.push_block(fdef.block)
    try:
        env = {}
        for ph, sym in zip(inputs, param_syms):
            env[id(ph)] = sym

        def staged_in(tensor):
            sym = env.get(id(tensor))
            if sym is None:
                raise LanternLoweringError(
                    f"Tensor {tensor.name!r} reached lowering before its "
                    "producer; the op list is not topologically ordered"
                )
            return StagedValueRef(sym, builder)

        for op in graph.ops:
            if op.type == "Placeholder":
                planned = capture_plan.get(id(op.outputs[0]))
                if planned is not None:
                    param, cap_name = planned
                    staged = builder.emit_param(param)
                    env[id(op.outputs[0])] = staged.sym
                    capture_params[cap_name] = param
                    continue
                if id(op.outputs[0]) not in env:
                    raise _unsupported(
                        "Placeholder",
                        f"placeholder {op.name!r} is not a declared input")
                continue
            if op.type == "Const":
                value = np.asarray(op.attrs["value"])
                staged = builder.emit_const(
                    float(value) if value.ndim == 0 else value)
                env[id(op.outputs[0])] = staged.sym
                continue
            if op.type == "Identity":
                env[id(op.outputs[0])] = env[id(op.inputs[0])]
                continue
            args = [staged_in(t) for t in op.inputs]
            rank = op.inputs[0].shape.rank if op.inputs else None
            staged = _emit_simple(builder, op.type, args, op.attrs,
                                  rank=rank)
            env[id(op.outputs[0])] = staged.sym

        missing = [t.name for t in outputs if id(t) not in env]
        if missing:
            raise LanternLoweringError(
                f"Outputs {missing} were not produced by the lowered graph")
        fdef.block.result_syms = tuple(env[id(t)] for t in outputs)
    finally:
        builder.pop_block()
    return program, fdef, capture_params
