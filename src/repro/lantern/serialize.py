"""Lantern program serialization: the staged IR to/from plain data.

A :class:`~repro.lantern.ir.Program` is already close to its wire form —
functions of instruction tuples plus constant and parameter pools — so
encoding is mostly a faithful transcription: instructions become JSON
arrays, ndarray constants and parameter values move to an out-of-band
array pool, and nested ``if`` blocks encode recursively.

``program_from_payload`` rebuilds a :class:`Program` that
:func:`~repro.lantern.compiler.compile_program` compiles exactly like a
freshly staged one, so a saved artifact re-generates its executable
source on load instead of shipping code.
"""

from __future__ import annotations

import numpy as np

from .ir import OPS, Block, FunctionDef, Param, Program

__all__ = ["LanternSerializationError", "program_to_payload",
           "program_from_payload"]

FORMAT_VERSION = 1


class LanternSerializationError(ValueError):
    """The program cannot be encoded (or the payload is malformed)."""


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _store_array(value, arrays):
    key = f"lt_{len(arrays)}"
    arrays[key] = np.asarray(value, dtype=np.float32)
    return key


def _encode_instr(instr, arrays):
    tag = instr[0]
    if tag == "op":
        _, out, op_name, args = instr
        return ["op", out, op_name, list(args)]
    if tag == "const":
        _, out, value = instr
        if np.isscalar(value):
            return ["const", out, {"scalar": float(value)}]
        return ["const", out, {"array": _store_array(value, arrays)}]
    if tag == "param":
        _, out, name = instr
        return ["param", out, name]
    if tag == "field":
        _, out, obj, field = instr
        return ["field", out, obj, field]
    if tag == "call":
        _, outs, fn_name, args = instr
        return ["call", list(outs), fn_name, list(args)]
    if tag == "if":
        _, outs, cond, then_block, else_block = instr
        return ["if", list(outs), cond,
                _encode_block(then_block, arrays),
                _encode_block(else_block, arrays)]
    raise LanternSerializationError(f"Unknown instruction {instr!r}")


def _encode_block(block, arrays):
    return {
        "instructions": [_encode_instr(i, arrays) for i in block.instructions],
        "result_syms": list(block.result_syms),
    }


def program_to_payload(program, arrays=None):
    """Encode ``program`` as JSON-able data plus an ndarray pool.

    Parameter *values* are frozen (current ``Param.value``); gradient
    slots are not serialized and come back zeroed.

    Returns:
      ``(payload, arrays)``.
    """
    arrays = {} if arrays is None else arrays
    payload = {
        "format_version": FORMAT_VERSION,
        "functions": [
            {
                "name": fdef.name,
                "param_syms": list(fdef.param_syms),
                "param_kinds": list(fdef.param_kinds),
                "n_outputs": fdef.n_outputs,
                "block": _encode_block(fdef.block, arrays),
            }
            for fdef in program.functions.values()
        ],
        "params": {
            name: _store_array(param.value, arrays)
            for name, param in program.params.items()
        },
    }
    return payload, arrays


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_instr(data, arrays, program):
    tag = data[0]
    if tag == "op":
        _, out, op_name, args = data
        if op_name not in OPS and op_name != "not":
            raise LanternSerializationError(
                f"Payload uses unknown Lantern op {op_name!r}; the artifact "
                "was exported by a build with more ops than this one"
            )
        return ("op", out, op_name, list(args))
    if tag == "const":
        _, out, enc = data
        if "scalar" in enc:
            value = enc["scalar"]
        else:
            value = np.asarray(arrays[enc["array"]], dtype=np.float32)
        program.consts[out] = value
        return ("const", out, value)
    if tag == "param":
        _, out, name = data
        return ("param", out, name)
    if tag == "field":
        _, out, obj, field = data
        return ("field", out, obj, field)
    if tag == "call":
        _, outs, fn_name, args = data
        return ("call", list(outs), fn_name, list(args))
    if tag == "if":
        _, outs, cond, then_data, else_data = data
        return ("if", list(outs), cond,
                _decode_block(then_data, arrays, program),
                _decode_block(else_data, arrays, program))
    raise LanternSerializationError(f"Unknown encoded instruction {data!r}")


def _decode_block(data, arrays, program):
    block = Block()
    block.instructions = [
        _decode_instr(i, arrays, program) for i in data["instructions"]
    ]
    block.result_syms = tuple(data["result_syms"])
    return block


def program_from_payload(payload, arrays):
    """Rebuild a :class:`Program` from :func:`program_to_payload` data."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise LanternSerializationError(
            f"Unsupported lantern payload format_version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    program = Program()
    for fn_data in payload["functions"]:
        fdef = FunctionDef(
            fn_data["name"],
            list(fn_data["param_syms"]),
            list(fn_data["param_kinds"]),
            fn_data["n_outputs"],
        )
        fdef.block = _decode_block(fn_data["block"], arrays, program)
        program.functions[fdef.name] = fdef
    for name, key in payload["params"].items():
        program.params[name] = Param(
            name, np.asarray(arrays[key], dtype=np.float32))
    return program
