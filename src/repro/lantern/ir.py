"""The Lantern IR: SSA blocks of numeric instructions with staged values.

Tracing converted Python produces :class:`Block` objects containing
instructions; :mod:`repro.lantern.compiler` lowers a :class:`Program`
to executable code (the stand-in for Lantern's generated C++).

Instruction forms (tuples, first element is the tag):
  ("op", out, op_name, args)            -- numeric primitive
  ("const", out, value)                 -- literal (stored in const pool)
  ("param", out, name)                  -- model parameter reference
  ("field", out, obj, field_name)       -- runtime-data field access (trees)
  ("call", outs, fn_name, args)         -- staged function call (recursion!)
  ("if", outs, cond, then_block, else_block)
where ``out(s)``/``args`` are symbol-name strings.
"""

from __future__ import annotations

import numpy as np

from .sexpr import Sym, format_sexpr

__all__ = [
    "Param",
    "StagedValue",
    "StagedTensor",
    "StagedBool",
    "StagedTree",
    "Block",
    "FunctionDef",
    "Program",
    "Builder",
    "OPS",
]

# Supported numeric primitives and their arities.
OPS = {
    "add": 2,
    "sub": 2,
    "mul": 2,
    "div": 2,
    "neg": 1,
    "tanh": 1,
    "sigmoid": 1,
    "relu": 1,
    "exp": 1,
    "log": 1,
    "sqrt": 1,
    "square": 1,
    "abs": 1,
    "transpose": 1,
    "maximum": 2,
    "matmul": 2,
    "concat0": 2,   # concat along axis 0
    "concat1": 2,   # concat along axis 1
    "sum": 1,
    "sum0": 1,      # reduce along axis 0 (keepdims=False)
    "sum1": 1,      # reduce along axis 1 (keepdims=False)
    "sumk": 1,      # full reduction, keepdims=True
    "sum0k": 1,     # reduce along axis 0, keepdims=True
    "sum1k": 1,     # reduce along axis 1, keepdims=True
    "mean": 1,
    "mean0": 1,
    "mean1": 1,
    "meank": 1,     # full reduction, keepdims=True
    "mean0k": 1,    # reduce along axis 0, keepdims=True
    "mean1k": 1,    # reduce along axis 1, keepdims=True
    "xent": 2,      # sparse softmax cross entropy: (logits, label) -> scalar
}


class Param:
    """A trainable model parameter (numpy storage + gradient slot)."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name, value):
        self.name = name
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self):
        self.grad[...] = 0.0

    def __array__(self, dtype=None):
        return self.value if dtype is None else self.value.astype(dtype)

    def __repr__(self):
        return f"Param({self.name!r}, shape={self.value.shape})"


class StagedValue:
    """Base class for values flowing through tracing."""

    __slots__ = ("sym", "builder")

    def __init__(self, sym, builder):
        self.sym = sym
        self.builder = builder

    def __repr__(self):
        return f"<{type(self).__name__} {self.sym}>"

    def __bool__(self):
        raise TypeError(
            f"Staged Lantern value {self.sym} has no Python truth value; "
            "use AutoGraph conversion so control flow stages into the IR."
        )


class StagedTensor(StagedValue):
    """A staged numeric value (scalar, row vector or matrix)."""

    __slots__ = ()

    def _emit_binary(self, op, other, reverse=False):
        other = self.builder.as_staged(other)
        a, b = (other, self) if reverse else (self, other)
        return self.builder.emit(op, a, b)

    def __add__(self, other):
        return self._emit_binary("add", other)

    def __radd__(self, other):
        return self._emit_binary("add", other, reverse=True)

    def __sub__(self, other):
        return self._emit_binary("sub", other)

    def __rsub__(self, other):
        return self._emit_binary("sub", other, reverse=True)

    def __mul__(self, other):
        return self._emit_binary("mul", other)

    def __rmul__(self, other):
        return self._emit_binary("mul", other, reverse=True)

    def __truediv__(self, other):
        return self._emit_binary("div", other)

    def __rtruediv__(self, other):
        return self._emit_binary("div", other, reverse=True)

    def __neg__(self):
        return self.builder.emit("neg", self)

    def __matmul__(self, other):
        return self._emit_binary("matmul", other)


class StagedBool(StagedValue):
    """A staged boolean (e.g. ``tree.is_empty``)."""

    __slots__ = ()


_TREE_FIELD_KINDS = {
    "left": "tree",
    "right": "tree",
    "is_leaf": "bool",
    "is_empty": "bool",
    "value": "tensor",
    "embedding": "tensor",
    "label": "tensor",
}


class StagedTree(StagedValue):
    """Staged runtime tree data (paper §8: Lantern handles recursive
    data structures the TF graph IR cannot)."""

    __slots__ = ()

    def __getattr__(self, name):
        kind = _TREE_FIELD_KINDS.get(name)
        if kind is None:
            raise AttributeError(
                f"Staged trees expose {sorted(_TREE_FIELD_KINDS)}, not {name!r}"
            )
        return self.builder.emit_field(self, name, kind)


class Block:
    """A straight-line (plus nested ifs) sequence of instructions."""

    __slots__ = ("instructions", "result_syms")

    def __init__(self):
        self.instructions = []
        self.result_syms = ()

    def to_sexpr(self):
        body = [_instr_to_sexpr(i) for i in self.instructions]
        return (Sym("block"), *body, (Sym("result"), *map(Sym, self.result_syms)))


def _instr_to_sexpr(instr):
    tag = instr[0]
    if tag == "op":
        _, out, op_name, args = instr
        return (Sym("let"), Sym(out), (Sym(op_name), *map(Sym, args)))
    if tag == "const":
        _, out, value = instr
        rendered = float(value) if np.isscalar(value) else Sym(f"<array{np.shape(value)}>")
        return (Sym("let"), Sym(out), (Sym("const"), rendered))
    if tag == "param":
        _, out, name = instr
        return (Sym("let"), Sym(out), (Sym("param"), name))
    if tag == "field":
        _, out, obj, field = instr
        return (Sym("let"), Sym(out), (Sym("field"), Sym(obj), Sym(field)))
    if tag == "call":
        _, outs, fn_name, args = instr
        return (
            Sym("let"), (Sym("values"), *map(Sym, outs)),
            (Sym("call"), Sym(fn_name), *map(Sym, args)),
        )
    if tag == "if":
        _, outs, cond, then_block, else_block = instr
        return (
            Sym("let"), (Sym("values"), *map(Sym, outs)),
            (Sym("if"), Sym(cond), then_block.to_sexpr(), else_block.to_sexpr()),
        )
    raise ValueError(f"Unknown instruction {instr!r}")


class FunctionDef:
    """A staged function: parameters, body block, output arity."""

    __slots__ = ("name", "param_syms", "param_kinds", "block", "n_outputs")

    def __init__(self, name, param_syms, param_kinds, n_outputs):
        self.name = name
        self.param_syms = param_syms
        self.param_kinds = param_kinds
        self.block = Block()
        self.n_outputs = n_outputs

    def to_sexpr(self):
        return (
            Sym("def"), Sym(self.name),
            tuple(Sym(p) for p in self.param_syms),
            self.block.to_sexpr(),
        )


class Program:
    """A set of staged functions plus the constant and parameter pools."""

    def __init__(self):
        self.functions = {}
        self.consts = {}
        # name -> Param, registered as ``param`` instructions are emitted,
        # so callers can compile without hand-collecting the closure's
        # parameters.
        self.params = {}

    def to_sexpr(self):
        return (Sym("program"), *[f.to_sexpr() for f in self.functions.values()])

    def to_string(self):
        return format_sexpr(self.to_sexpr())


class Builder:
    """Emits instructions into a stack of blocks during tracing."""

    def __init__(self, program):
        self.program = program
        self._counter = 0
        self._block_stack = []

    # -- symbols -----------------------------------------------------------

    def fresh(self, prefix="x"):
        self._counter += 1
        return f"{prefix}{self._counter}"

    @property
    def current_block(self):
        if not self._block_stack:
            raise RuntimeError("No active Lantern block (not tracing)")
        return self._block_stack[-1]

    def push_block(self, block):
        self._block_stack.append(block)

    def pop_block(self):
        return self._block_stack.pop()

    # -- staged value creation ------------------------------------------------

    def as_staged(self, value):
        if isinstance(value, StagedValue):
            return value
        if isinstance(value, Param):
            return self.emit_param(value)
        if isinstance(value, (int, float, np.ndarray, np.generic)):
            return self.emit_const(value)
        # AutoGraph models a branch that never assigns/returns a symbol
        # as an Undefined sentinel; surface the fix instead of the type.
        if any(k.__name__ == "Undefined" for k in type(value).__mro__):
            raise TypeError(
                "A staged Lantern conditional leaves a value undefined in "
                "one branch (e.g. an early `return` inside `if` with no "
                "`else`); both branches must produce the same values — "
                "write `if ...: ... else: ...` with one return per branch"
            )
        raise TypeError(f"Cannot stage value of type {type(value).__name__}")

    def emit(self, op_name, *args):
        if op_name not in OPS:
            raise ValueError(f"Unknown Lantern op {op_name!r}")
        arg_vals = [self.as_staged(a) for a in args]
        out = self.fresh()
        self.current_block.instructions.append(
            ("op", out, op_name, [a.sym for a in arg_vals])
        )
        return StagedTensor(out, self)

    def emit_const(self, value):
        out = self.fresh("c")
        self.program.consts[out] = np.asarray(value, dtype=np.float32) \
            if not np.isscalar(value) else value
        self.current_block.instructions.append(("const", out, value))
        return StagedTensor(out, self)

    def emit_param(self, param):
        existing = self.program.params.setdefault(param.name, param)
        if existing is not param:
            raise ValueError(
                f"Two distinct Params named {param.name!r} were staged into "
                "one program; parameter names must be unique"
            )
        out = self.fresh("p")
        self.current_block.instructions.append(("param", out, param.name))
        return StagedTensor(out, self)

    def emit_field(self, obj, field, kind):
        out = self.fresh("f")
        self.current_block.instructions.append(("field", out, obj.sym, field))
        if kind == "tree":
            return StagedTree(out, self)
        if kind == "bool":
            return StagedBool(out, self)
        return StagedTensor(out, self)

    def emit_call(self, fn_name, args, n_outputs):
        arg_vals = [a if isinstance(a, StagedValue) else self.as_staged(a)
                    for a in args]
        outs = [self.fresh("r") for _ in range(n_outputs)]
        self.current_block.instructions.append(
            ("call", outs, fn_name, [a.sym for a in arg_vals])
        )
        results = tuple(StagedTensor(o, self) for o in outs)
        return results[0] if n_outputs == 1 else results

    def emit_if(self, cond, then_fn, else_fn, n_outputs):
        """Trace both branches into sub-blocks; returns output tensors."""
        then_block = Block()
        self.push_block(then_block)
        try:
            then_vals = _as_value_tuple(self, then_fn())
            then_block.result_syms = tuple(v.sym for v in then_vals)
        finally:
            self.pop_block()
        else_block = Block()
        self.push_block(else_block)
        try:
            else_vals = _as_value_tuple(self, else_fn())
            else_block.result_syms = tuple(v.sym for v in else_vals)
        finally:
            self.pop_block()

        if len(then_block.result_syms) != len(else_block.result_syms):
            raise ValueError(
                "Staged Lantern conditional branches must produce the same "
                f"number of values ({len(then_block.result_syms)} vs "
                f"{len(else_block.result_syms)})"
            )
        outs = [self.fresh("v") for _ in range(len(then_block.result_syms))]
        self.current_block.instructions.append(
            ("if", outs, cond.sym, then_block, else_block)
        )
        return tuple(StagedTensor(o, self) for o in outs)


def _as_value_tuple(builder, values):
    if not isinstance(values, tuple):
        values = (values,)
    return tuple(builder.as_staged(v) for v in values)
