"""Optimizers (SGD is all the paper's evaluation needs)."""

from __future__ import annotations

from repro.framework import ops

__all__ = ["SGD"]


class SGD:
    """Plain stochastic gradient descent."""

    def __init__(self, learning_rate=0.1):
        self.learning_rate = learning_rate

    def apply_gradients(self, grads_and_vars):
        """Apply updates to Variables; returns the list of update outputs
        (fetch them, or a group of them, to run the step in graph mode)."""
        updates = []
        for grad, var in grads_and_vars:
            if grad is None:
                continue
            updates.append(
                var.assign_sub(ops.multiply(grad, self.learning_rate))
            )
        return updates

    def functional_step(self, params, grads):
        """Pure update: returns new parameter tensors (for in-graph loops
        that thread weights as loop variables)."""
        return [
            p if g is None else ops.subtract(p, ops.multiply(g, self.learning_rate))
            for p, g in zip(params, grads)
        ]
