"""Dense and MLP layers (mode-agnostic)."""

from __future__ import annotations

import numpy as np

from repro.framework import Variable, ops

__all__ = ["Dense", "MLP", "glorot_init"]


def glorot_init(rng, shape):
    """Glorot-uniform initialization."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


class Dense:
    """A fully-connected layer: ``activation(x @ W + b)``.

    Weights live in framework Variables so the same layer instance works
    eagerly and in graphs.  For purely functional use (in-graph training
    loops that thread weights as loop variables), call
    :meth:`apply_with_params`.
    """

    def __init__(self, in_dim, out_dim, activation=None, rng=None, name="dense"):
        rng = rng or np.random.default_rng(0)
        self.w = Variable(glorot_init(rng, (in_dim, out_dim)), name=f"{name}_w")
        self.b = Variable(np.zeros((out_dim,), np.float32), name=f"{name}_b")
        self.activation = activation

    @property
    def variables(self):
        return [self.w, self.b]

    def __call__(self, x):
        return self.apply_with_params(x, self.w.value(), self.b.value())

    def apply_with_params(self, x, w, b):
        out = ops.add(ops.matmul(x, w), b)
        if self.activation is not None:
            out = self.activation(out)
        return out


class MLP:
    """A stack of Dense layers with a configurable hidden activation."""

    def __init__(self, dims, activation=ops.tanh, rng=None, name="mlp"):
        if len(dims) < 2:
            raise ValueError("MLP requires at least input and output dims")
        rng = rng or np.random.default_rng(0)
        self.layers = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            act = activation if i < len(dims) - 2 else None
            self.layers.append(
                Dense(d_in, d_out, activation=act, rng=rng, name=f"{name}_{i}")
            )

    @property
    def variables(self):
        out = []
        for layer in self.layers:
            out.extend(layer.variables)
        return out

    def __call__(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
