"""Library dynamic RNN — the "Official" implementation of Table 1.

Mirrors ``tf.dynamic_rnn``: a while_loop over time steps writing outputs
to a TensorArray, with per-step masking of finished sequences.  In eager
mode it unrolls the same computation as a Python loop (what TF Eager's
dynamic_rnn effectively does per step).
"""

from __future__ import annotations

import numpy as np

from repro.framework import TensorArray, context, float32, nest, ops

__all__ = ["dynamic_rnn"]


def _mask_state(mask, new_state, prev_state):
    return nest.map_structure(
        lambda n, p: ops.where(mask, n, p), new_state, prev_state
    )


def dynamic_rnn(cell, input_data, initial_state, sequence_length=None):
    """Run ``cell`` over ``input_data`` (batch-major: [batch, time, dim]).

    Args:
      cell: callable(x_t, state) -> (output, new_state).
      input_data: [batch, time, input_dim] tensor.
      initial_state: cell state structure.
      sequence_length: optional [batch] int tensor; steps past a sequence's
        length keep its previous state (masked update), matching
        ``tf.dynamic_rnn``.

    Returns:
      (outputs, final_state) with outputs [batch, time, units].
    """
    # Time-major for the loop.
    inputs = ops.transpose(input_data, (1, 0, 2))

    if context.has_default_graph():
        return _graph_dynamic_rnn(cell, inputs, initial_state, sequence_length)
    return _eager_dynamic_rnn(cell, inputs, initial_state, sequence_length)


def _graph_dynamic_rnn(cell, inputs, initial_state, sequence_length):
    outputs_ta = TensorArray(float32, size=0, dynamic_size=True)
    if sequence_length is None:
        max_len = ops.get_item(ops.shape(inputs), 0)
    else:
        max_len = ops.reduce_max(sequence_length)

    state_flat = nest.flatten(initial_state)
    n_state = len(state_flat)

    def while_cond(i, outputs, *state):
        return ops.less(i, max_len)

    def while_body(i, outputs, *state):
        state = nest.pack_sequence_as(initial_state, list(state))
        x_t = ops.get_item(inputs, i)
        output, new_state = cell(x_t, state)
        if sequence_length is not None:
            mask = ops.less(i, sequence_length)
            new_state = _mask_state(mask, new_state, state)
            output = ops.where(mask, output, ops.zeros_like(output))
        outputs = outputs.write(i, output)
        return (ops.add(i, ops.constant(1, dtype="int32")), outputs) + tuple(
            nest.flatten(new_state)
        )

    loop_vars = (ops.constant(0, dtype="int32"), outputs_ta) + tuple(state_flat)
    results = ops.while_loop(while_cond, while_body, loop_vars)
    final_outputs = results[1].stack()
    final_state = nest.pack_sequence_as(initial_state, list(results[2:]))
    final_outputs = ops.transpose(final_outputs, (1, 0, 2))
    return final_outputs, final_state


def _eager_dynamic_rnn(cell, inputs, initial_state, sequence_length):
    max_len = int(inputs.shape[0])
    if sequence_length is not None:
        max_len = int(np.max(np.asarray(sequence_length)))
    state = initial_state
    outputs = []
    for i in range(max_len):
        x_t = ops.get_item(inputs, i)
        output, new_state = cell(x_t, state)
        if sequence_length is not None:
            mask = ops.less(ops.constant(i, dtype="int32"), sequence_length)
            new_state = _mask_state(mask, new_state, state)
            output = ops.where(mask, output, ops.zeros_like(output))
        state = new_state
        outputs.append(output)
    stacked = ops.stack(outputs, axis=0)
    return ops.transpose(stacked, (1, 0, 2)), state
