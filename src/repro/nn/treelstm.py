"""Binary TreeLSTM for sentiment classification (paper §9.1, Table 3).

The model embeds a sentence parse tree bottom-up: leaves carry word
embeddings; internal nodes combine the left/right child states with a
binary (two-input) LSTM core; the root hidden state feeds an MLP that
predicts sentiment.

This module provides the define-by-run implementation (the paper's
"PyTorch" comparator): plain Python recursion over the tree with eager
tensors and tape autodiff.  The AutoGraph→Lantern implementation stages
the *same mathematics* through the Lantern backend
(:mod:`repro.lantern.models`).
"""

from __future__ import annotations

import numpy as np

from repro.framework import Variable, ops

from .layers import glorot_init

__all__ = ["TreeLSTMCell", "TreeLSTMClassifier"]


class TreeLSTMCell:
    """Binary TreeLSTM combiner.

    For children states ``(c_l, h_l)`` and ``(c_r, h_r)``:

      x  = [h_l, h_r]
      i  = sigmoid(x @ W_i + b_i)
      fl = sigmoid(x @ W_fl + b_f)      # per-child forget gates
      fr = sigmoid(x @ W_fr + b_f)
      o  = sigmoid(x @ W_o + b_o)
      g  = tanh(x @ W_g + b_g)
      c  = i * g + fl * c_l + fr * c_r
      h  = o * tanh(c)

    Leaves use the word embedding as ``g`` with unit input gate.
    """

    def __init__(self, hidden_dim, rng=None, name="treelstm"):
        rng = rng or np.random.default_rng(0)
        self.hidden_dim = hidden_dim
        d2 = 2 * hidden_dim
        self.params_np = {
            "w_i": glorot_init(rng, (d2, hidden_dim)),
            "w_fl": glorot_init(rng, (d2, hidden_dim)),
            "w_fr": glorot_init(rng, (d2, hidden_dim)),
            "w_o": glorot_init(rng, (d2, hidden_dim)),
            "w_g": glorot_init(rng, (d2, hidden_dim)),
            "b_i": np.zeros((hidden_dim,), np.float32),
            "b_f": np.ones((hidden_dim,), np.float32),
            "b_o": np.zeros((hidden_dim,), np.float32),
            "b_g": np.zeros((hidden_dim,), np.float32),
        }
        self.variables_map = {
            k: Variable(v, name=f"{name}_{k}") for k, v in self.params_np.items()
        }

    @property
    def variables(self):
        return list(self.variables_map.values())

    def leaf_state(self, embedding):
        """State for a leaf node carrying a word ``embedding`` [1, d]."""
        c = ops.tanh(embedding)
        h = ops.tanh(c)
        return c, h

    def combine(self, left_state, right_state):
        """Combine two child states into the parent state."""
        p = self.variables_map
        c_l, h_l = left_state
        c_r, h_r = right_state
        x = ops.concat([h_l, h_r], axis=1)
        i = ops.sigmoid(ops.add(ops.matmul(x, p["w_i"].value()), p["b_i"].value()))
        fl = ops.sigmoid(ops.add(ops.matmul(x, p["w_fl"].value()), p["b_f"].value()))
        fr = ops.sigmoid(ops.add(ops.matmul(x, p["w_fr"].value()), p["b_f"].value()))
        o = ops.sigmoid(ops.add(ops.matmul(x, p["w_o"].value()), p["b_o"].value()))
        g = ops.tanh(ops.add(ops.matmul(x, p["w_g"].value()), p["b_g"].value()))
        c = ops.add(
            ops.multiply(i, g),
            ops.add(ops.multiply(fl, c_l), ops.multiply(fr, c_r)),
        )
        h = ops.multiply(o, ops.tanh(c))
        return c, h


class TreeLSTMClassifier:
    """TreeLSTM encoder + MLP sentiment head (define-by-run)."""

    def __init__(self, hidden_dim, num_classes=5, rng=None):
        rng = rng or np.random.default_rng(0)
        self.cell = TreeLSTMCell(hidden_dim, rng=rng)
        self.w_out = Variable(
            glorot_init(rng, (hidden_dim, num_classes)), name="treelstm_out_w"
        )
        self.b_out = Variable(
            np.zeros((num_classes,), np.float32), name="treelstm_out_b"
        )

    @property
    def variables(self):
        return self.cell.variables + [self.w_out, self.b_out]

    def embed(self, tree):
        """Recursively embed a parse tree; returns the root (c, h)."""
        if tree.is_leaf:
            return self.cell.leaf_state(ops.constant(tree.embedding))
        left = self.embed(tree.left)
        right = self.embed(tree.right)
        return self.cell.combine(left, right)

    def logits(self, tree):
        _, h = self.embed(tree)
        return ops.add(ops.matmul(h, self.w_out.value()), self.b_out.value())

    def loss(self, tree):
        logits = self.logits(tree)
        labels = ops.constant(np.asarray([tree.label], np.int64))
        losses = ops.sparse_softmax_cross_entropy_with_logits(labels, logits)
        return ops.reduce_mean(losses)
