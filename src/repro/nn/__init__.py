"""Neural-network layers used by the paper's evaluation.

All layers are written against the mode-agnostic public ops, so the same
layer object runs eagerly (define-by-run) and stages into graphs.
"""

from .cells import BasicRNNCell, LSTMCell
from .layers import Dense, MLP
from .optimizers import SGD
from .rnn import dynamic_rnn
from .treelstm import TreeLSTMCell, TreeLSTMClassifier

__all__ = [
    "Dense",
    "MLP",
    "BasicRNNCell",
    "LSTMCell",
    "dynamic_rnn",
    "SGD",
    "TreeLSTMCell",
    "TreeLSTMClassifier",
]
