"""Recurrent cells (paper §9, RNN cells experiment).

Cells follow the TF RNNCell contract: ``cell(x_t, state) -> (output,
new_state)``.  They are written against the public ops, so the same cell
instance drives the eager, hand-written-graph and AutoGraph variants of
``dynamic_rnn``.
"""

from __future__ import annotations

import numpy as np

from repro.framework import Variable, ops

from .layers import glorot_init

__all__ = ["BasicRNNCell", "LSTMCell"]


class BasicRNNCell:
    """Vanilla tanh RNN: ``h' = tanh([x, h] @ W + b)``."""

    def __init__(self, num_units, input_dim, rng=None, name="rnn_cell"):
        rng = rng or np.random.default_rng(0)
        self.num_units = num_units
        self.w = Variable(
            glorot_init(rng, (input_dim + num_units, num_units)),
            name=f"{name}_w",
        )
        self.b = Variable(np.zeros((num_units,), np.float32), name=f"{name}_b")

    @property
    def variables(self):
        return [self.w, self.b]

    def zero_state(self, batch_size):
        return ops.constant(
            np.zeros((batch_size, self.num_units), np.float32)
        )

    def __call__(self, x, state):
        concat = ops.concat([x, state], axis=1)
        new_state = ops.tanh(ops.add(ops.matmul(concat, self.w), self.b))
        return new_state, new_state


class LSTMCell:
    """A standard LSTM cell with a fused gate matrix.

    State is a tuple ``(c, h)``.
    """

    def __init__(self, num_units, input_dim, forget_bias=1.0, rng=None,
                 name="lstm_cell"):
        rng = rng or np.random.default_rng(0)
        self.num_units = num_units
        self.forget_bias = forget_bias
        self.w = Variable(
            glorot_init(rng, (input_dim + num_units, 4 * num_units)),
            name=f"{name}_w",
        )
        self.b = Variable(np.zeros((4 * num_units,), np.float32), name=f"{name}_b")

    @property
    def variables(self):
        return [self.w, self.b]

    def zero_state(self, batch_size):
        zeros = np.zeros((batch_size, self.num_units), np.float32)
        return (ops.constant(zeros), ops.constant(zeros))

    def __call__(self, x, state):
        c, h = state
        concat = ops.concat([x, h], axis=1)
        gates = ops.add(ops.matmul(concat, self.w), self.b)
        n = self.num_units
        i = ops.sigmoid(ops.get_item(gates, (slice(None), slice(0, n))))
        f = ops.sigmoid(
            ops.add(
                ops.get_item(gates, (slice(None), slice(n, 2 * n))),
                self.forget_bias,
            )
        )
        g = ops.tanh(ops.get_item(gates, (slice(None), slice(2 * n, 3 * n))))
        o = ops.sigmoid(ops.get_item(gates, (slice(None), slice(3 * n, 4 * n))))
        new_c = ops.add(ops.multiply(f, c), ops.multiply(i, g))
        new_h = ops.multiply(o, ops.tanh(new_c))
        return new_h, (new_c, new_h)
