"""Sequence-to-sequence model (paper Appendix D.4).

A general-purpose encoder/decoder over random token sequences, with
optional *teacher forcing* ("which almost doubles the improvement gained
from AutoGraph").  The encoder and decoder loops are idiomatic Python
``for``/``range`` loops; the teacher-forcing flag is a Python bool — a
staging-time ("macro") conditional that dynamic dispatch leaves unstaged.
"""

from __future__ import annotations

import numpy as np

import repro.autograph as ag
from repro import framework as fw
from repro.framework import ops

__all__ = ["Seq2SeqModel", "seq2seq_loss"]


class Seq2SeqModel:
    """Parameters for a GRU-less (vanilla RNN) encoder/decoder."""

    def __init__(self, vocab_size, hidden_dim, seed=0):
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(hidden_dim)

        def mat(shape):
            return rng.normal(0, scale, shape).astype(np.float32)

        self.vocab_size = vocab_size
        self.hidden_dim = hidden_dim
        self.embed_enc = mat((vocab_size, hidden_dim))
        self.embed_dec = mat((vocab_size, hidden_dim))
        self.enc_w = mat((2 * hidden_dim, hidden_dim))
        self.dec_w = mat((2 * hidden_dim, hidden_dim))
        self.out_w = mat((hidden_dim, vocab_size))


def seq2seq_loss(embed_enc, embed_dec, enc_w, dec_w, out_w,
                 src_tokens, dst_tokens, teacher_forcing=True):
    """Forward pass + loss (convertible by AutoGraph).

    Args:
      embed_enc..out_w: model parameters.
      src_tokens/dst_tokens: int64 [batch, time] token tensors.
      teacher_forcing: python bool — when True the decoder consumes the
        gold token at each step, when False its own argmax prediction.

    Returns:
      Mean cross-entropy over all decoder steps.
    """
    src_t = ops.transpose(src_tokens, (1, 0))
    dst_t = ops.transpose(dst_tokens, (1, 0))
    # Dynamic lengths: the loops below stage into the IR rather than
    # unrolling (data-dependent iteration counts, §9).
    src_len = ops.shape(src_t)[0]
    dst_len = ops.shape(dst_t)[0]
    batch = src_t.shape[1]
    hidden = enc_w.shape[1]

    # --- encode -----------------------------------------------------------
    state = ops.zeros((batch, hidden))
    for i in range(src_len):
        x = ops.gather(embed_enc, src_t[i])
        state = ops.tanh(ops.matmul(ops.concat([x, state], axis=1), enc_w))

    # --- decode -----------------------------------------------------------
    losses = []
    ag.set_element_type(losses, fw.float32)
    prev_tokens = dst_t[0]
    for i in range(dst_len):
        x = ops.gather(embed_dec, prev_tokens)
        state = ops.tanh(ops.matmul(ops.concat([x, state], axis=1), dec_w))
        logits = ops.matmul(state, out_w)
        target = dst_t[i]
        step_loss = ops.reduce_mean(
            ops.sparse_softmax_cross_entropy_with_logits(target, logits)
        )
        losses.append(step_loss)
        if teacher_forcing:
            prev_tokens = target
        else:
            prev_tokens = ops.argmax(logits, axis=1)
    total = ops.reduce_sum(ag.stack(losses))
    return ops.divide(total, float(dst_len))
