"""Application workloads from the paper's evaluation (§9, Appendix D).

Each module provides the imperative model code (convertible by AutoGraph)
plus whatever mode-specific helpers the eager comparators need.  The
benchmarks in ``benchmarks/`` and the runnable scripts in ``examples/``
both build on these.
"""

from . import beam_search, lbfgs, maml, seq2seq

__all__ = ["beam_search", "lbfgs", "maml", "seq2seq"]
