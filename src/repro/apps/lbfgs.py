"""L-BFGS (paper Appendix D.2).

Limited-memory BFGS with the standard two-loop recursion, minimizing a
batch of strongly-convex quadratics ``0.5 x'Ax - b'x`` (gradient ``Ax-b``
computed analytically, so the benchmark isolates the optimizer-machinery
cost the paper measures).  The outer iteration is a data-dependent
``while`` (gradient-norm tolerance) that AutoGraph stages; the two-loop
history recursion unrolls at staging time over the fixed memory ``m``.
"""

from __future__ import annotations

import numpy as np

from repro.framework import ops

__all__ = ["make_problem", "lbfgs_minimize"]


def make_problem(batch_size=10, dim=32, cond=10.0, seed=0):
    """A batch of random SPD quadratic problems.

    Returns:
      (a, b, x0): float32 [batch, dim, dim], [batch, dim], [batch, dim].
    """
    rng = np.random.default_rng(seed)
    qs = rng.normal(0, 1, (batch_size, dim, dim)).astype(np.float32)
    eigs = np.linspace(1.0, cond, dim).astype(np.float32)
    a = np.empty_like(qs)
    for i in range(batch_size):
        q, _ = np.linalg.qr(qs[i])
        a[i] = (q * eigs) @ q.T
    b = rng.normal(0, 1, (batch_size, dim)).astype(np.float32)
    x0 = np.zeros((batch_size, dim), np.float32)
    return a, b, x0


def _batch_dot(u, v):
    """Per-problem inner product: [batch, dim] x [batch, dim] -> [batch, 1]."""
    return ops.reduce_sum(ops.multiply(u, v), axis=1, keepdims=True)


def _grad(a, b, x):
    """Gradient of the batched quadratic: A x - b."""
    ax = ops.squeeze(ops.matmul(a, ops.expand_dims(x, 2)), axis=2)
    return ops.subtract(ax, b)


def lbfgs_minimize(a, b, x0, m=5, max_iter=50, tol=1e-5):
    """Batched L-BFGS (convertible by AutoGraph).

    Args:
      a, b, x0: the batched quadratic problem.
      m: history size (python int; the two-loop unrolls over it at
        staging time).
      max_iter, tol: outer-loop bounds.

    Returns:
      (x, iterations, grad_norm).
    """
    batch = x0.shape[0]
    dim = x0.shape[1]
    x = x0
    g = _grad(a, b, x)
    s_hist = ops.zeros((m, batch, dim))
    y_hist = ops.zeros((m, batch, dim))
    rho_hist = ops.zeros((m, batch, 1))
    k = 0
    grad_norm = ops.sqrt(ops.reduce_sum(ops.square(g)))
    while k < max_iter and grad_norm > tol:
        # ---- two-loop recursion (statically unrolled over m) ----
        q = g
        alphas = []
        for j in range(m):
            idx = (k - 1 - j) % m
            valid = j < ops.minimum(k, m)
            s_j = s_hist[idx]
            y_j = y_hist[idx]
            rho_j = rho_hist[idx]
            alpha = ops.multiply(rho_j, _batch_dot(s_j, q))
            q = ops.where(valid, ops.subtract(q, ops.multiply(alpha, y_j)), q)
            alphas.append((alpha, idx, valid))
        # Initial Hessian scaling gamma = s'y / y'y of the newest pair.
        newest = (k - 1) % m
        s_n = s_hist[newest]
        y_n = y_hist[newest]
        yy = ops.maximum(_batch_dot(y_n, y_n), 1e-10)
        gamma = ops.divide(_batch_dot(s_n, y_n), yy)
        gamma = ops.where(k > 0, gamma, ops.ones_like(gamma))
        r = ops.multiply(gamma, q)
        for alpha, idx, valid in reversed(alphas):
            s_j = s_hist[idx]
            y_j = y_hist[idx]
            rho_j = rho_hist[idx]
            beta = ops.multiply(rho_j, _batch_dot(y_j, r))
            r = ops.where(
                valid,
                ops.add(r, ops.multiply(ops.subtract(alpha, beta), s_j)),
                r,
            )
        # ---- fixed unit step (exact for well-scaled quadratics) ----
        x_new = ops.subtract(x, r)
        g_new = _grad(a, b, x_new)
        s = ops.subtract(x_new, x)
        y = ops.subtract(g_new, g)
        sy = _batch_dot(s, y)
        rho = ops.divide(1.0, ops.where(ops.abs(sy) > 1e-10, sy,
                                        ops.ones_like(sy)))
        slot = k % m
        s_hist = ops.set_item(s_hist, slot, s)
        y_hist = ops.set_item(y_hist, slot, y)
        rho_hist = ops.set_item(rho_hist, slot, rho)
        x = x_new
        g = g_new
        grad_norm = ops.sqrt(ops.reduce_sum(ops.square(g)))
        k = k + 1
    return x, k, grad_norm
