"""Model-Agnostic Meta-Learning on sinusoids (paper Appendix D.3).

The benchmark follows Finn et al.'s sinusoid regression: tasks are
sinusoids with random amplitude/phase; the inner loop adapts an MLP with
a few SGD steps; the outer loop updates the meta-parameters.  As in the
paper's appendix, what is measured is meta-training throughput, eager vs
AutoGraph-staged.

We use the first-order MAML approximation (outer gradients evaluated at
the adapted parameters) — second-order meta-gradients would require
differentiating through the gradient ops themselves, which neither our
graph AD nor the benchmark's purpose needs.  This substitution keeps the
op mix and loop structure identical across the compared modes.
"""

from __future__ import annotations

import numpy as np

from repro import framework as fw
from repro.framework import GradientTape, ops

__all__ = ["sample_task", "init_params", "forward", "mse",
           "maml_step_staged", "maml_step_eager"]


def sample_task(rng, num_points=10):
    """One sinusoid regression task: y = A sin(x + phi)."""
    amplitude = rng.uniform(0.1, 5.0)
    phase = rng.uniform(0.0, np.pi)
    xs = rng.uniform(-5.0, 5.0, size=(num_points, 1)).astype(np.float32)
    ys = (amplitude * np.sin(xs + phase)).astype(np.float32)
    return xs, ys


def init_params(hidden=40, seed=0):
    """MLP 1 -> hidden -> hidden -> 1 parameters as numpy arrays."""
    rng = np.random.default_rng(seed)

    def w(shape):
        return (rng.normal(0, 1, shape) * np.sqrt(2.0 / shape[0])).astype(np.float32)

    return [
        w((1, hidden)), np.zeros((hidden,), np.float32),
        w((hidden, hidden)), np.zeros((hidden,), np.float32),
        w((hidden, 1)), np.zeros((1,), np.float32),
    ]


def forward(params, x):
    """The sinusoid regressor."""
    h = ops.relu(ops.add(ops.matmul(x, params[0]), params[1]))
    h = ops.relu(ops.add(ops.matmul(h, params[2]), params[3]))
    return ops.add(ops.matmul(h, params[4]), params[5])


def mse(pred, target):
    return ops.reduce_mean(ops.square(ops.subtract(pred, target)))


def maml_step_staged(x_support, y_support, x_query, y_query, params,
                     inner_lr=0.01, outer_lr=0.001, inner_steps=1):
    """One meta-step, graph-mode: inner SGD unrolls at staging time and
    its gradients are built with graph AD (convertible by AutoGraph)."""
    adapted = list(params)
    for _ in range(inner_steps):
        support_loss = mse(forward(adapted, x_support), y_support)
        grads = fw.gradients(support_loss, adapted)
        adapted = [
            ops.subtract(p, ops.multiply(g, inner_lr))
            for p, g in zip(adapted, grads)
        ]
    query_loss = mse(forward(adapted, x_query), y_query)
    meta_grads = fw.gradients(query_loss, adapted)
    new_params = [
        ops.subtract(p, ops.multiply(g, outer_lr))
        for p, g in zip(params, meta_grads)
    ]
    return new_params, query_loss


def maml_step_eager(x_support, y_support, x_query, y_query, params,
                    inner_lr=0.01, outer_lr=0.001, inner_steps=1):
    """One meta-step, define-by-run: a fresh tape per gradient."""
    adapted = list(params)
    for _ in range(inner_steps):
        with GradientTape() as tape:
            for p in adapted:
                tape.watch(p)
            support_loss = mse(forward(adapted, x_support), y_support)
        grads = tape.gradient(support_loss, adapted)
        adapted = [
            ops.subtract(p, ops.multiply(g, inner_lr))
            for p, g in zip(adapted, grads)
        ]
    with GradientTape() as tape:
        for p in adapted:
            tape.watch(p)
        query_loss = mse(forward(adapted, x_query), y_query)
    meta_grads = tape.gradient(query_loss, adapted)
    new_params = [
        ops.subtract(p, ops.multiply(g, outer_lr))
        for p, g in zip(params, meta_grads)
    ]
    return new_params, query_loss
