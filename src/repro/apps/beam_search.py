"""Beam search (paper Appendix D.1).

"The simplest implementation of beam search is a loop that breaks if all
candidate sequences have terminated" — the early exit is exactly what
makes this interesting for AutoGraph: ``while ... and not done`` stages
into the IR, so short decodes stop early in-graph too.

The "language model" is a random single-layer RNN over a synthetic
vocabulary; Appendix D.1 evaluates machinery speed, not translation
quality.
"""

from __future__ import annotations

import numpy as np

from repro.framework import ops

__all__ = ["BeamSearchModel", "beam_search", "make_model"]


class BeamSearchModel:
    """Parameters of the random LM used by the beam-search benchmark."""

    def __init__(self, vocab_size, hidden_dim, seed=0):
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(hidden_dim)
        self.vocab_size = vocab_size
        self.hidden_dim = hidden_dim
        self.embeddings = rng.normal(0, scale, (vocab_size, hidden_dim)).astype(np.float32)
        self.w_xh = rng.normal(0, scale, (hidden_dim, hidden_dim)).astype(np.float32)
        self.w_hh = rng.normal(0, scale, (hidden_dim, hidden_dim)).astype(np.float32)
        self.w_out = rng.normal(0, scale, (hidden_dim, vocab_size)).astype(np.float32)
        # Bias the EOS token so decodes terminate at varying lengths.
        self.w_out[:, 0] += 0.05


def make_model(vocab_size=64, hidden_dim=64, seed=0):
    return BeamSearchModel(vocab_size, hidden_dim, seed=seed)


def beam_search(embeddings, w_xh, w_hh, w_out, beam_size, max_len,
                vocab_size, eos=0):
    """Imperative beam search (convertible by AutoGraph).

    Args:
      embeddings/w_xh/w_hh/w_out: LM parameters (tensors).
      beam_size, max_len, vocab_size, eos: python ints (staging-time
        constants — the "macro-programming" inputs).

    Returns:
      (scores, tokens, length): per-beam log-probs, last tokens, and the
      number of steps actually executed (early exit!).
    """
    hidden_dim = w_hh.shape[0]
    h = ops.zeros((beam_size, hidden_dim))
    scores = ops.zeros((beam_size,))
    tokens = ops.constant(np.ones((beam_size,), np.int64))
    length = 0
    done = False
    while length < max_len and not done:
        x = ops.gather(embeddings, tokens)
        h = ops.tanh(ops.add(ops.matmul(x, w_xh), ops.matmul(h, w_hh)))
        logits = ops.matmul(h, w_out)
        logp = ops.log_softmax(logits)
        candidates = ops.add(ops.expand_dims(scores, 1), logp)
        flat = ops.reshape(candidates, [beam_size * vocab_size])
        top_scores, top_idx = ops.top_k(flat, beam_size)
        beam_idx = top_idx // vocab_size
        tokens = top_idx % vocab_size
        scores = top_scores
        h = ops.gather(h, beam_idx)
        finished = ops.equal(tokens, eos)
        done = ops.reduce_all(finished)
        length = length + 1
    return scores, tokens, length
