"""Reproduction of *AutoGraph: Imperative-style Coding with Graph-based
Performance* (Moldovan et al., MLSys 2019).

Packages:
  - :mod:`repro.framework` -- the TensorFlow-like substrate (eager + graph).
  - :mod:`repro.autograph` -- the paper's contribution: source-code
    transformation + dynamic dispatch staging Python into the graph IR.
  - :mod:`repro.lantern` -- the alternate S-expression backend with staged
    recursion and CPS autodiff (paper Section 8).
  - :mod:`repro.nn` -- neural-network layers used by the evaluation.
  - :mod:`repro.datasets` -- synthetic datasets standing in for MNIST and
    the Stanford Sentiment Treebank.
  - :mod:`repro.function` -- the tracing JIT built on top of both: the
    ``@repro.function`` decorator traces Python through AutoGraph into an
    optimized graph and caches one compiled plan per input signature.
  - :mod:`repro.serving` -- export (``repro.saved_function.save/load``),
    dynamic micro-batching and a threaded HTTP model server over the
    backend-neutral ``Executable`` protocol.
  - :mod:`repro.runtime` -- the shared execution engine: compiled
    ``ExecutionPlan``s (constant pre-evaluation, dead-step elision,
    buffer reuse) behind both ``Session.run`` and the slot-addressed
    positional fast path that function calls and serving dispatch
    through.
  - :mod:`repro.blocks` -- block-partitioned tensors: ``BlockArray``
    grids dispatched kernel-per-block (eagerly or lowered into
    level-parallel execution plans) with deterministic pairwise-tree
    accumulation, plus data-parallel sharded training.
  - :mod:`repro.observe` -- cross-layer tracing and metrics: a
    ring-buffer recorder of per-step/per-request spans behind
    ``repro.observe.profile()``, Chrome-trace export, live counters
    served at ``GET /v1/metrics``.
"""

__version__ = "0.1.0"

from .function import (
    ConcreteFunction,
    Executable,
    Function,
    TensorSpec,
    function,
)

__all__ = [
    "framework",
    "autograph",
    "lantern",
    "nn",
    "datasets",
    "function",
    "Function",
    "ConcreteFunction",
    "Executable",
    "TensorSpec",
    "serving",
    "saved_function",
    "runtime",
    "blocks",
    "observe",
]


def __getattr__(name):
    # Deferred: the serving stack (HTTP server, batching threads) should
    # cost nothing until export/serving is actually used.  importlib, not
    # ``from . import serving``: the from-import form re-enters this
    # __getattr__ through its hasattr check before the submodule import
    # finishes, recursing forever.
    import importlib

    if name == "serving":
        return importlib.import_module(".serving", __name__)
    if name == "saved_function":
        return importlib.import_module(".serving.saved_function", __name__)
    if name == "blocks":
        return importlib.import_module(".blocks", __name__)
    if name == "observe":
        return importlib.import_module(".observe", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
