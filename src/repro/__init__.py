"""Reproduction of *AutoGraph: Imperative-style Coding with Graph-based
Performance* (Moldovan et al., MLSys 2019).

Packages:
  - :mod:`repro.framework` -- the TensorFlow-like substrate (eager + graph).
  - :mod:`repro.autograph` -- the paper's contribution: source-code
    transformation + dynamic dispatch staging Python into the graph IR.
  - :mod:`repro.lantern` -- the alternate S-expression backend with staged
    recursion and CPS autodiff (paper Section 8).
  - :mod:`repro.nn` -- neural-network layers used by the evaluation.
  - :mod:`repro.datasets` -- synthetic datasets standing in for MNIST and
    the Stanford Sentiment Treebank.
  - :mod:`repro.function` -- the tracing JIT built on top of both: the
    ``@repro.function`` decorator traces Python through AutoGraph into an
    optimized graph and caches one compiled plan per input signature.
"""

__version__ = "0.1.0"

from .function import ConcreteFunction, Function, TensorSpec, function

__all__ = [
    "framework",
    "autograph",
    "lantern",
    "nn",
    "datasets",
    "function",
    "Function",
    "ConcreteFunction",
    "TensorSpec",
]
