"""``FleetServer``: a prefork worker pool behind one listening socket.

A single :class:`~repro.serving.ModelServer` is thread-concurrent but
GIL-bound: one process's worth of Python glue caps throughput no matter
how many cores the machine has.  The fleet preforks:

- the **acceptor** (parent) binds the listening socket, loads each
  registered saved artifact once to seed a
  :class:`~repro.serving.shm_store.SharedWeightStore` per (model,
  version) with the artifact's capture values, writes per-model control
  blocks (active version + canary split) and per-worker stats blocks,
  then forks N workers and waits;
- each **worker** (child) is a full :class:`ModelServer` subclass that
  adopts the inherited socket (the kernel load-balances accepts across
  workers blocked in ``accept()``), loads the artifacts into its own
  process, and immediately rebinds every capture to read-only views
  into the current shared-memory generation.

Weights therefore exist **once** per fleet, not once per worker, and a
``swap_weights`` request — handled by whichever worker the kernel gave
it to — publishes a new generation and bumps one shared counter; every
other worker notices the bump on its next request and rebinds its whole
capture tuple in a single atomic assignment (see
:mod:`~repro.serving.shm_store` for why no request can ever observe a
half-swapped weight set).  Version activation and canary splits travel
the same way, through a seqlock-framed JSON control block per model.

The HTTP surface is exactly the single-process server's (same routes,
same error envelope, same binary wire negotiation).  ``GET /v1/models``
additionally reports a ``"fleet"`` section: per-worker request counts
and latency percentiles (each worker publishes its own stats block;
whoever answers the GET reads all of them) and the current shared
weight-store generations.

::

    fleet = FleetServer(n_workers=4)
    fleet.register("score", "/path/to/artifact")
    with fleet:
        client = ServingClient(fleet.url)
        client.predict("score", [[1.0, 2.0, 3.0, 4.0]])
        client.swap_weights("score", weights={"w": new_w})  # all workers

The parent also **supervises**: a monitor thread (woken early by
``SIGCHLD`` when the parent runs on the main thread) reaps any worker
that dies and forks a replacement into the same inherited socket and
shared blocks — the fleet heals to full strength without dropping the
port.  Death and respawn counts are published through a parent-written
stats block and show up under ``"supervisor"`` in ``GET /v1/models``
and ``GET /v1/metrics``.

Limitations (by design, for now): models must be *saved artifacts* (each
worker re-loads from disk; live Python functions don't cross ``fork``
usefully), and registration happens before :meth:`start`.
"""

from __future__ import annotations

import json
import os
import random
import secrets
import signal
import socket
import struct
import sys
import threading
from http.server import ThreadingHTTPServer
from multiprocessing import get_context

from ..observe.events import RECORDER as _REC
from .server import ModelServer, _make_handler
from .shm_store import SharedWeightStore, _unlink_segment, _untrack

__all__ = ["FleetServer"]

_mp = get_context("fork")


class _SharedDoc:
    """A small JSON document in shared memory behind a seqlock.

    Layout: ``u32 sequence | u32 length | payload``.  Writers bump the
    sequence to odd, copy the payload, then bump to even; readers retry
    until they see the same even sequence on both sides of their copy.
    Single-writer blocks (per-worker stats) need no lock; multi-writer
    blocks (per-model control) serialize writers on the fleet's
    fork-inherited lock.
    """

    SIZE = 8192

    def __init__(self, name, *, create=False, lock=None):
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=self.SIZE)
        _untrack(self._shm)
        self._lock = lock
        if create:
            struct.pack_into("<II", self._shm.buf, 0, 0, 0)

    def write(self, doc):
        payload = json.dumps(doc).encode("utf-8")
        if len(payload) > self.SIZE - 8:
            raise ValueError(
                f"shared doc payload is {len(payload)} bytes; max "
                f"{self.SIZE - 8}"
            )
        if self._lock is not None:
            with self._lock:
                self._write(payload)
        else:
            self._write(payload)

    def _write(self, payload):
        buf = self._shm.buf
        seq = struct.unpack_from("<I", buf, 0)[0]
        struct.pack_into("<I", buf, 0, seq + 1)  # odd: write in progress
        struct.pack_into("<I", buf, 4, len(payload))
        buf[8:8 + len(payload)] = payload
        struct.pack_into("<I", buf, 0, seq + 2)

    def read(self):
        """The current document, or ``None`` before the first write."""
        buf = self._shm.buf
        for _ in range(256):
            seq1 = struct.unpack_from("<I", buf, 0)[0]
            if seq1 & 1:
                continue
            length = struct.unpack_from("<I", buf, 4)[0]
            if length == 0:
                return None
            if length > self.SIZE - 8:
                continue  # torn read across a concurrent write
            payload = bytes(buf[8:8 + length])
            if struct.unpack_from("<I", buf, 0)[0] == seq1:
                return json.loads(payload.decode("utf-8"))
        raise RuntimeError("shared doc write storm; reader starved")

    def close(self):
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover
            pass

    def unlink(self):
        _unlink_segment(self._shm)
        self.close()


class _SocketHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer adopting an already-bound, listening socket
    (the fleet's fork-inherited acceptor socket)."""

    def __init__(self, sock, handler):
        super().__init__(sock.getsockname()[:2], handler,
                         bind_and_activate=False)
        # Replace the fresh unbound socket the base constructor made
        # with the shared one; all workers then accept() from the same
        # kernel queue.
        self.socket.close()
        self.socket = sock
        self.server_address = sock.getsockname()[:2]


class _FleetWorker(ModelServer):
    """One fleet process: a ModelServer whose shared state (active
    version, canary, weights) lives in the fleet's shm blocks.

    Separated from the fork plumbing so tests can drive a worker
    in-process: construct one, attach the same stores/control blocks,
    and call the ``_sync_endpoint`` / ``_apply_weights`` overrides
    directly.
    """

    def __init__(self, index, n_workers, stores, controls, stats_docs,
                 publish_lock, max_inflight=None, supervisor_doc=None):
        super().__init__(max_inflight=max_inflight)
        self._worker_index = index
        self._n_workers = n_workers
        self._stores = stores          # (name, label) -> SharedWeightStore
        self._store_gen = {}           # (name, label) -> last bound gen
        self._controls = controls      # name -> _SharedDoc
        self._stats_docs = stats_docs  # worker index -> _SharedDoc
        self._publish_lock = publish_lock
        self._supervisor_doc = supervisor_doc  # parent-written _SharedDoc
        self._stats_lock = threading.Lock()
        self._served = 0

    # -- shared-state sync (reader side) -----------------------------------

    def _sync_endpoint(self, name):
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            return
        control = self._controls.get(name)
        if control is not None:
            doc = control.read()
            if doc is not None:
                active = doc.get("active")
                if (active and active != endpoint.active
                        and active in endpoint.versions):
                    endpoint.activate(active)
                canary = doc.get("canary")
                endpoint.canary = tuple(canary) if canary else None
        for label, version in endpoint.versions.items():
            store = self._stores.get((name, label))
            if store is None:
                continue
            if store.generation != self._store_gen.get((name, label)):
                self._rebind(name, label, version.executable, store)

    def _rebind(self, name, label, executable, store):
        """Bind the executable's whole capture tuple to the latest
        generation's read-only shared views — the zero-copy hot-swap."""
        generation, views = store.read()
        order = [n for n, _dtype, _shape in executable.capture_specs()]
        executable.set_capture_state([views[n] for n in order])
        self._store_gen[(name, label)] = generation

    # -- shared-state publication (writer side) ----------------------------

    def _publish_control(self, name):
        control = self._controls.get(name)
        endpoint = self._endpoints.get(name)
        if control is None or endpoint is None:
            return
        control.write({
            "active": endpoint.active,
            "canary": list(endpoint.canary) if endpoint.canary else None,
        })

    def _apply_weights(self, name, label, version, weights):
        store = self._stores.get((name, label))
        if store is None:
            # No captures for this version (frozen artifact): the base
            # path raises the right per-capture errors.
            super()._apply_weights(name, label, version, weights)
            return
        store.update(weights)  # KeyError/ValueError -> 400 via caller
        # This worker observes its own swap immediately; siblings rebind
        # on their next request's _sync_endpoint.
        self._rebind(name, label, version.executable, store)

    def _activate(self, name, endpoint, label):
        endpoint.activate(label)  # KeyError -> 400 via caller
        self._publish_control(name)

    def set_canary(self, name, version=None, fraction=0.0):
        result = super().set_canary(name, version, fraction)
        self._publish_control(name)
        return result

    # -- observability -----------------------------------------------------

    def _request_served(self):
        with self._stats_lock:
            self._served += 1
        self._publish_stats()

    def _publish_stats(self):
        """Publish this worker's live stats — request count, per-model
        latency, and its :mod:`repro.observe` counter snapshot — into
        its seqlock stats block, where any sibling can read them."""
        doc = self._stats_docs.get(self._worker_index)
        if doc is None:
            return
        with self._stats_lock:
            doc.write({
                "worker": self._worker_index,
                "pid": os.getpid(),
                "requests": self._served,
                "counters": _REC.counters(),
                "models": {
                    name: endpoint.latency_stats()
                    for name, endpoint in self._endpoints.items()
                },
            })

    def _supervisor_stats(self):
        doc = self._supervisor_doc
        stats = doc.read() if doc is not None else None
        return stats if stats is not None else {"deaths": 0, "respawns": 0}

    def _fleet_info(self):
        workers = []
        for index in sorted(self._stats_docs):
            stats = self._stats_docs[index].read()
            workers.append(stats if stats is not None
                           else {"worker": index, "requests": 0})
        return {
            "fleet": {
                "n_workers": self._n_workers,
                "worker": self._worker_index,
                "workers": workers,
                "supervisor": self._supervisor_stats(),
                "weight_generations": {
                    f"{name}@{label}": store.generation
                    for (name, label), store in self._stores.items()
                },
            }
        }

    def _metrics_info(self):
        """The fleet view for ``GET /v1/metrics``: whichever worker the
        kernel handed this request publishes its own fresh stats, then
        merges every worker's stats block — per-worker request counts,
        counters summed across workers, and the supervisor's
        death/respawn counts."""
        self._publish_stats()
        workers = []
        merged = {}
        total = 0
        for index in sorted(self._stats_docs):
            stats = self._stats_docs[index].read()
            if stats is None:
                workers.append({"worker": index, "requests": 0})
                continue
            requests = int(stats.get("requests", 0))
            total += requests
            workers.append({
                "worker": index,
                "pid": stats.get("pid"),
                "requests": requests,
            })
            for key, value in (stats.get("counters") or {}).items():
                merged[key] = merged.get(key, 0) + value
        return {
            "fleet": {
                "n_workers": self._n_workers,
                "worker": self._worker_index,
                "requests": total,
                "merged_counters": merged,
                "workers": workers,
                "supervisor": self._supervisor_stats(),
            }
        }

    # -- serving on the inherited socket -----------------------------------

    def serve_on_socket(self, sock):
        """Serve forever on the fleet's shared socket (worker main)."""
        self._ensure_batchers()
        self._httpd = _SocketHTTPServer(sock, _make_handler(self))
        self._httpd.daemon_threads = True
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            for endpoint in self._endpoints.values():
                for version in endpoint.versions.values():
                    version.close_batcher()


class FleetServer:
    """N prefork :class:`ModelServer` workers behind one socket.

    Args:
      n_workers: processes to fork (each a full threaded HTTP server).
      host/port: bind address (port 0 picks a free port).
      max_inflight: per-worker bound on concurrently executing predict
        requests; over it, that worker sheds with 503 + ``Retry-After``.
    """

    def __init__(self, n_workers=2, *, host="127.0.0.1", port=0,
                 max_inflight=None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._n_workers = n_workers
        self._host = host
        self._port = port
        self._max_inflight = max_inflight
        self._registrations = []
        self._socket = None
        self._processes = []
        self._stores = {}
        self._controls = {}
        self._stats_docs = {}
        self._namespace = None
        self._publish_lock = None
        self._supervisor_doc = None
        self._supervisor = None
        self._stop_supervising = None
        self._wake = None
        self._prev_sigchld = None
        self._sigchld_installed = False
        self._deaths = 0
        self._respawns = 0

    # -- registration (before start) ---------------------------------------

    def register(self, name, path, *, version="1", activate=None,
                 batcher=None):
        """Register a *saved artifact* path to serve as ``name``.

        Same semantics as :meth:`ModelServer.register` with a path
        source; every worker loads the artifact into its own process at
        fork time, then rebinds its weights to the fleet's shared
        memory.  Must be called before :meth:`start`.
        """
        if self._socket is not None:
            raise RuntimeError(
                "FleetServer.register must happen before start(); use "
                "swap_weights/canary routes for live management"
            )
        if not isinstance(path, (str, os.PathLike)):
            raise TypeError(
                "FleetServer serves saved artifacts: register(name, path); "
                f"got {type(path).__name__} (save the model first)"
            )
        # Validate batcher options now, not inside N forked workers.
        ModelServer._batch_config(batcher)
        self._registrations.append({
            "name": name, "path": os.fspath(path), "version": str(version),
            "activate": activate, "batcher": batcher,
        })

    # -- lifecycle ---------------------------------------------------------

    @property
    def url(self):
        if self._socket is None:
            raise RuntimeError("FleetServer is not running")
        host, port = self._socket.getsockname()[:2]
        return f"http://{host}:{port}"

    def _setup_shared_state(self):
        """Seed the fleet's shared memory from a parent-side load: one
        weight store per (model, version) with captures, one control
        block per model, one stats block per worker."""
        from .saved_function import load

        self._namespace = f"rf{secrets.token_hex(3)}"
        self._publish_lock = _mp.Lock()
        actives = {}
        for i, reg in enumerate(self._registrations):
            name, label = reg["name"], reg["version"]
            if (name, label) in self._stores:
                raise ValueError(
                    f"duplicate registration of {name!r} version {label!r}"
                )
            executable = load(reg["path"])
            specs = getattr(executable, "capture_specs", None)
            if specs is not None and specs():
                self._stores[(name, label)] = SharedWeightStore(
                    f"{self._namespace}s{i}", create=True,
                    initial=executable.capture_values(),
                    lock=self._publish_lock)
            if name not in actives or reg["activate"]:
                actives[name] = label
        for j, (name, label) in enumerate(actives.items()):
            control = _SharedDoc(f"{self._namespace}c{j}", create=True,
                                 lock=self._publish_lock)
            control.write({"active": label, "canary": None})
            self._controls[name] = control
        for index in range(self._n_workers):
            self._stats_docs[index] = _SharedDoc(
                f"{self._namespace}w{index}", create=True)
        # Parent-written, worker-read: death/respawn counts (single
        # writer — the supervisor thread — so no lock).
        self._supervisor_doc = _SharedDoc(
            f"{self._namespace}sup", create=True)
        self._publish_supervisor()

    def start(self):
        """Bind, seed shared memory, fork the workers; returns the URL."""
        if self._socket is not None:
            raise RuntimeError("FleetServer is already running")
        if not self._registrations:
            raise RuntimeError("FleetServer has no registered models")
        self._setup_shared_state()

        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        self._socket = sock

        for index in range(self._n_workers):
            process = _mp.Process(
                target=self._worker_entry, args=(index,),
                name=f"repro-fleet-worker-{index}", daemon=True)
            process.start()
            self._processes.append(process)
        self._start_supervisor()
        return self.url

    def _build_worker(self, index):
        """A :class:`_FleetWorker` wired to this fleet's shared blocks
        (used by the forked children, and by in-process tests)."""
        worker = _FleetWorker(
            index, self._n_workers, self._stores, self._controls,
            self._stats_docs, self._publish_lock,
            max_inflight=self._max_inflight,
            supervisor_doc=self._supervisor_doc)
        for reg in self._registrations:
            worker.register(
                reg["name"], reg["path"], version=reg["version"],
                activate=reg["activate"], batcher=reg["batcher"])
        # Bind every stored version's captures to the current shared
        # generation before taking traffic.
        for name in {reg["name"] for reg in self._registrations}:
            worker._sync_endpoint(name)
        return worker

    def _worker_entry(self, index):
        # SIGTERM must unwind normally (not os._exit) so batcher drains
        # and atexit hooks (e.g. coverage) run.
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
        # Forked children share the parent's RNG state; reseed so canary
        # draws are independent per worker.
        random.seed()
        worker = self._build_worker(index)
        try:
            worker.serve_on_socket(self._socket)
        except SystemExit:
            pass

    # -- supervision -------------------------------------------------------

    def _start_supervisor(self):
        """Watch the workers; reap and respawn any that die.

        A ``SIGCHLD`` handler (installable only from the main thread —
        elsewhere the supervisor degrades to pure polling) wakes the
        monitor early, so a crashed worker is usually replaced within
        milliseconds; the 0.2 s poll is the fallback and also paces
        respawns if a worker is crashing in a loop.
        """
        self._stop_supervising = threading.Event()
        self._wake = threading.Event()
        self._sigchld_installed = False
        try:
            self._prev_sigchld = signal.signal(
                signal.SIGCHLD, lambda *_: self._wake.set())
            self._sigchld_installed = True
        except ValueError:  # pragma: no cover - non-main-thread start
            self._prev_sigchld = None
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-fleet-supervisor",
            daemon=True)
        self._supervisor.start()

    def _supervise(self):
        while True:
            self._wake.wait(0.2)
            self._wake.clear()
            if self._stop_supervising.is_set():
                return
            self._reap_and_respawn()

    def _reap_and_respawn(self):
        changed = False
        for index, process in enumerate(self._processes):
            if process.is_alive():
                continue
            process.join()
            self._deaths += 1
            # The replacement forks from the current parent, inheriting
            # the same listening socket, stores, control and stats
            # blocks — it serves the same port under the same worker
            # index as its predecessor.
            replacement = _mp.Process(
                target=self._worker_entry, args=(index,),
                name=f"repro-fleet-worker-{index}", daemon=True)
            replacement.start()
            self._processes[index] = replacement
            self._respawns += 1
            changed = True
        if changed:
            self._publish_supervisor()

    def _publish_supervisor(self):
        if self._supervisor_doc is not None:
            self._supervisor_doc.write({
                "deaths": self._deaths,
                "respawns": self._respawns,
                "pids": [p.pid for p in self._processes],
            })

    def _stop_supervisor(self):
        if self._supervisor is None:
            return
        # Order matters: the supervisor must be down before stop()
        # terminates the workers, or it would respawn them mid-shutdown.
        self._stop_supervising.set()
        self._wake.set()
        self._supervisor.join()
        self._supervisor = None
        if self._sigchld_installed:
            restore = (self._prev_sigchld if self._prev_sigchld is not None
                       else signal.SIG_DFL)
            try:
                signal.signal(signal.SIGCHLD, restore)
            except ValueError:  # pragma: no cover
                pass
            self._sigchld_installed = False
            self._prev_sigchld = None

    def stop(self):
        """Terminate the workers, close the socket, free shared memory."""
        self._stop_supervisor()
        for process in self._processes:
            process.terminate()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5)
        self._processes = []
        if self._socket is not None:
            self._socket.close()
            self._socket = None
        for store in self._stores.values():
            store.unlink()
        self._stores = {}
        for control in self._controls.values():
            control.unlink()
        self._controls = {}
        for doc in self._stats_docs.values():
            doc.unlink()
        self._stats_docs = {}
        if self._supervisor_doc is not None:
            self._supervisor_doc.unlink()
            self._supervisor_doc = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

    def __repr__(self):
        state = "running" if self._socket is not None else "stopped"
        return (f"<FleetServer n_workers={self._n_workers} {state} "
                f"models={sorted({r['name'] for r in self._registrations})}>")
