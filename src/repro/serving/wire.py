"""The binary tensor wire format: ``application/x-repro-tensor``.

JSON is the serving fallback, not the serving format: encoding a float32
tensor as nested decimal lists costs ~10x the bytes and dominates
large-input latency end to end (the client pays ``tolist`` + ``dumps``,
the server pays ``loads`` + ``asarray``, and ``swap_weights`` ships full
weight matrices that way).  This module frames the same JSON-shaped
documents with their tensor leaves carried as **raw buffers**:

::

    magic   b"RPT1"                      (4 bytes)
    hlen    uint32 little-endian         (4 bytes)
    header  JSON, utf-8                  (hlen bytes)
    payload raw tensor buffers           (16-byte aligned each)

The header is ``{"doc": ..., "tensors": [...]}`` — ``doc`` is the
message with every tensor leaf replaced by ``{"__tensor__": i}``, and
``tensors[i]`` records ``{"dtype", "shape", "offset", "nbytes"}`` for
the raw C-order buffer at ``payload[offset : offset + nbytes]``.
Everything JSON can say still travels verbatim, so the predict /
swap_weights envelopes are byte-layout changes only, not schema changes.

Decoding is strict: bad magic, truncated frames, oversized or malformed
headers, non-numeric dtypes (no object arrays over the wire), shape /
byte-count mismatches and out-of-range buffers all raise
:class:`WireError` — a malformed request must be a 400, never a crash or
an allocation amplifier.  Decoded arrays are **zero-copy, read-only
views** into the received buffer (also how the shared-memory weight
store maps fleet weights without materializing per-worker copies).
"""

from __future__ import annotations

import json

import numpy as np

__all__ = ["CONTENT_TYPE", "WireError", "encode", "decode"]

#: Negotiated via ``Content-Type`` (request) / ``Accept`` (response).
CONTENT_TYPE = "application/x-repro-tensor"

MAGIC = b"RPT1"
_ALIGN = 16
#: Upper bound on the JSON header; a frame claiming more is malformed
#: (the header holds metadata, never tensor data).
_MAX_HEADER = 1 << 26
#: Tensor dtypes allowed over the wire: bool, (u)ints, floats, complex.
_DTYPE_KINDS = frozenset("biufc")

_PLACEHOLDER = "__tensor__"


class WireError(ValueError):
    """The frame is not a well-formed ``application/x-repro-tensor``
    message (mapped to HTTP 400 at the server boundary)."""


def _as_wire_array(value):
    """The ndarray for a tensor leaf, or None for plain JSON values."""
    if isinstance(value, (np.ndarray, np.generic)):
        arr = np.asarray(value)
    else:
        numpy_fn = getattr(value, "numpy", None)  # EagerTensor duck-type
        if numpy_fn is None or isinstance(value, (bool, int, float, str)):
            return None
        arr = np.asarray(numpy_fn())
    if arr.dtype.kind not in _DTYPE_KINDS:
        raise WireError(
            f"dtype {arr.dtype!s} cannot travel on the binary wire; "
            "only bool/int/uint/float/complex tensors are supported"
        )
    return arr


def _strip(value, tensors):
    """Replace tensor leaves with placeholders, collecting the arrays."""
    arr = _as_wire_array(value)
    if arr is not None:
        tensors.append(arr)
        return {_PLACEHOLDER: len(tensors) - 1}
    if isinstance(value, dict):
        if _PLACEHOLDER in value:
            raise WireError(
                f"{_PLACEHOLDER!r} is a reserved key in wire messages"
            )
        return {str(k): _strip(v, tensors) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_strip(v, tensors) for v in value]
    return value


def encode(doc):
    """Frame ``doc`` (JSON-shaped, tensor leaves as ndarrays /
    ``EagerTensor``s / numpy scalars) as one binary message."""
    tensors = []
    stripped = _strip(doc, tensors)
    entries = []
    buffers = []
    offset = 0
    for arr in tensors:
        if not arr.flags.c_contiguous:
            # (ascontiguousarray unconditionally would also promote 0-d
            # arrays to 1-d and lose their shape.)
            arr = np.ascontiguousarray(arr)
        pad = -offset % _ALIGN
        if pad:
            buffers.append(b"\x00" * pad)
            offset += pad
        data = arr.tobytes()  # C order
        entries.append({
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": len(data),
        })
        buffers.append(data)
        offset += len(data)
    header = json.dumps(
        {"doc": stripped, "tensors": entries},
        separators=(",", ":"),
    ).encode("utf-8")
    if len(header) > _MAX_HEADER:
        raise WireError(
            f"wire header of {len(header)} bytes exceeds the "
            f"{_MAX_HEADER}-byte bound"
        )
    parts = [MAGIC, len(header).to_bytes(4, "little"), header]
    parts.extend(buffers)
    return b"".join(parts)


def _fill(node, arrays):
    if isinstance(node, dict):
        index = node.get(_PLACEHOLDER)
        if index is not None and len(node) == 1:
            if not isinstance(index, int) or not 0 <= index < len(arrays):
                raise WireError(f"tensor placeholder {index!r} out of range")
            return arrays[index]
        return {k: _fill(v, arrays) for k, v in node.items()}
    if isinstance(node, list):
        return [_fill(v, arrays) for v in node]
    return node


def _decode_entry(entry, payload, index):
    if not isinstance(entry, dict):
        raise WireError(f"tensor entry {index} is not an object")
    try:
        dtype_str = entry["dtype"]
        shape = entry["shape"]
        offset = entry["offset"]
        nbytes = entry["nbytes"]
    except KeyError as e:
        raise WireError(f"tensor entry {index} lacks {e.args[0]!r}") from None
    try:
        dtype = np.dtype(dtype_str)
    except TypeError:
        raise WireError(f"tensor entry {index} has unknown dtype "
                        f"{dtype_str!r}") from None
    if dtype.kind not in _DTYPE_KINDS:
        raise WireError(
            f"tensor entry {index} has refused dtype {dtype!s}; only "
            "bool/int/uint/float/complex tensors travel on the wire"
        )
    if (not isinstance(shape, list)
            or any(not isinstance(d, int) or d < 0 for d in shape)):
        raise WireError(f"tensor entry {index} has malformed shape {shape!r}")
    count = 1
    for d in shape:
        count *= d
    if (not isinstance(nbytes, int) or not isinstance(offset, int)
            or offset < 0 or nbytes != count * dtype.itemsize):
        raise WireError(
            f"tensor entry {index}: {nbytes!r} bytes at offset {offset!r} "
            f"does not match shape {shape} of {dtype!s}"
        )
    if offset + nbytes > len(payload):
        raise WireError(
            f"tensor entry {index} reaches byte {offset + nbytes}, past "
            f"the {len(payload)}-byte payload"
        )
    arr = np.frombuffer(payload, dtype=dtype, count=count,
                        offset=offset).reshape(shape)
    if arr.flags.writeable:
        # Views into shared buffers must not let a kernel scribble on
        # every other reader's weights.
        arr = arr.view()
        arr.flags.writeable = False
    return arr


def decode(data):
    """Parse one binary message back into its document.

    ``data`` may be ``bytes`` or a ``memoryview`` (e.g. straight over a
    shared-memory segment); tensor leaves come back as read-only ndarray
    views into it — zero copies either way.
    """
    view = memoryview(data)
    if len(view) < 8 or bytes(view[:4]) != MAGIC:
        raise WireError(
            f"not a {CONTENT_TYPE} message (bad magic or truncated frame)"
        )
    hlen = int.from_bytes(view[4:8], "little")
    if hlen > _MAX_HEADER:
        raise WireError(f"declared header of {hlen} bytes exceeds the "
                        f"{_MAX_HEADER}-byte bound")
    if 8 + hlen > len(view):
        raise WireError(
            f"declared header of {hlen} bytes overruns the "
            f"{len(view)}-byte frame"
        )
    try:
        header = json.loads(bytes(view[8:8 + hlen]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise WireError(f"malformed wire header: {e}") from None
    if not isinstance(header, dict) or "doc" not in header:
        raise WireError("wire header must be an object with 'doc'")
    entries = header.get("tensors", [])
    if not isinstance(entries, list):
        raise WireError("wire header 'tensors' must be a list")
    payload = view[8 + hlen:]
    arrays = [_decode_entry(entry, payload, i)
              for i, entry in enumerate(entries)]
    return _fill(header["doc"], arrays)
