"""Dynamic micro-batching: coalescing concurrent calls into one execution.

The serving cost model mirrors the paper's Table-2 observation: each
executed call pays a fixed dispatch overhead (feed validation, plan
lookup, Python glue), so N concurrent single-example requests cost
N * overhead executed one by one — but only 1 * overhead (plus the
marginal, well-vectorized math) executed as one stacked batch.

:class:`MicroBatcher` owns a queue and a worker thread.  Client threads
submit single examples (shaped like the executable's signature *minus*
the batch axis) and block; the worker coalesces whatever arrives within
``batch_timeout`` of the first request — up to ``max_batch_size`` —
stacks them along ``batch_axis``, runs the executable once via the
backend-neutral ``call_flat``, splits the result along the batch axis,
and wakes every waiter with its slice.

Examples co-batched together must agree on shape by default; ragged
batches are rejected, because zero-filling silently changes the math of
shape-sensitive models (a mean over a padded axis depends on who you
were batched with).  Passing ``pad_value`` opts into padding for models
where the fill value is neutral (masked attention, sum-pooling over
zeros, ...) — the per-request output slice then keeps the padded shape.

The wrapped executable must therefore be batch-polymorphic along
``batch_axis`` (trace it with that dimension as ``None``).  Outputs are
assumed to carry the batch axis too — a scalar output (e.g. a loss
reduced over the batch) cannot be split and raises.

Two *priority lanes* ride on the queue: ``submit(..., priority="high")``
requests are drained ahead of the normal lane (they still co-batch with
whatever else is waiting), and under load shedding the normal lane is
shed first — high-priority traffic keeps flowing into a 50% headroom
above ``max_queue`` while bulk traffic is already being 503'd.
"""

from __future__ import annotations

import collections
import threading
import time

import numpy as np

from ..framework import nest
from ..framework.eager.tensor import EagerTensor
from ..function.tensor_spec import TensorSpec
from ..observe.events import RECORDER as _REC

__all__ = ["BatchStats", "MicroBatcher", "QueueFullError"]


BatchStats = collections.namedtuple(
    "BatchStats",
    ["requests", "batches", "max_batch_size", "rejected", "high_priority"])


class QueueFullError(RuntimeError):
    """The batcher's queue is at ``max_queue``; the request was rejected.

    Backpressure, not buffering: when the executable cannot drain
    requests as fast as they arrive, callers get an immediate, explicit
    failure (the server maps it to HTTP 503) instead of an unbounded
    queue and a timeout.
    """


class _Request:
    __slots__ = ("inputs", "event", "result", "error")

    def __init__(self, inputs):
        self.inputs = inputs
        self.event = threading.Event()
        self.result = None
        self.error = None


class MicroBatcher:
    """Coalesces concurrent same-signature calls along a batch axis."""

    def __init__(self, executable, *, batch_axis=0, max_batch_size=32,
                 batch_timeout=0.002, pad_value=None, timeout=30.0,
                 max_queue=None):
        """Args:
          executable: a batch-polymorphic
            :class:`~repro.function.Executable` (either backend, or a
            loaded artifact).
          batch_axis: the axis requests stack along.
          max_batch_size: a batch executes as soon as it has this many
            requests.
          batch_timeout: seconds the worker waits (after the first
            request of a batch arrives) for more requests to coalesce.
          pad_value: ``None`` (default) rejects batches whose examples
            disagree on non-batch dimensions; a number opts into padding
            ragged examples up to the max with that fill value — only
            sound when the model treats the fill as neutral.
          timeout: seconds a submitter waits for its result before
            raising ``TimeoutError`` (guards against a wedged worker).
          max_queue: bound on *queued* (not yet executing) requests;
            ``None`` (default) leaves the queue unbounded.  A submit
            arriving while the queue holds ``max_queue`` requests fails
            fast with :class:`QueueFullError`.
        """
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        for spec in executable.signature:
            if not isinstance(spec, TensorSpec):
                raise ValueError(
                    f"MicroBatcher requires an all-tensor signature; "
                    f"{executable.name!r} takes {spec!r}"
                )
        self._executable = executable
        # Bind the dispatch path once: the executable's call_flat is the
        # runtime's slot-addressed fast path (positional execute_flat for
        # graph-backed executables), so the worker's per-batch cost is
        # stack + one bound call + split — no feed dicts, no cache keys.
        self._call_flat = executable.call_flat
        self._n_args = len(executable.signature)
        self._batch_axis = batch_axis
        self._max_batch_size = max_batch_size
        self._batch_timeout = batch_timeout
        self._pad_value = pad_value
        self._timeout = timeout
        self._max_queue = max_queue

        self._cond = threading.Condition()
        self._pending = collections.deque()
        # The high lane: drained ahead of _pending, shed after it.
        self._priority_pending = collections.deque()
        self._closed = False
        self._n_requests = 0
        self._n_batches = 0
        self._max_seen = 0
        self._n_rejected = 0
        self._n_high = 0
        self._worker = threading.Thread(
            target=self._loop, name="repro-microbatcher", daemon=True)
        self._worker.start()

    # -- client side -------------------------------------------------------

    @property
    def executable(self):
        return self._executable

    def __call__(self, *flat_inputs):
        return self.submit(list(flat_inputs))

    def queue_depth(self):
        """Waiting (not yet executing) requests across both lanes."""
        with self._cond:
            return len(self._pending) + len(self._priority_pending)

    def submit(self, flat_inputs, priority="normal"):
        """Enqueue one example; blocks until its slice of a batch result.

        ``flat_inputs`` holds one value per signature entry, shaped
        *without* the batch axis (the batcher adds it by stacking).

        ``priority="high"`` puts the request on the high lane: the
        worker drains it ahead of the normal lane, and under load
        shedding (``max_queue``) the normal lane is shed first — high
        requests are still admitted into a 50% headroom above
        ``max_queue`` before they too are rejected.
        """
        if priority not in ("normal", "high"):
            raise ValueError(
                f"priority must be 'normal' or 'high', got {priority!r}"
            )
        if len(flat_inputs) != self._n_args:
            raise ValueError(
                f"{self._executable.name!r} takes {self._n_args} "
                f"arguments, got {len(flat_inputs)}"
            )
        request = _Request([np.asarray(v) for v in flat_inputs])
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if self._max_queue is not None:
                depth = len(self._pending) + len(self._priority_pending)
                bound = self._max_queue
                if priority == "high":
                    bound += max(1, self._max_queue // 2)
                if depth >= bound:
                    self._n_rejected += 1
                    raise QueueFullError(
                        f"{self._executable.name!r} batch queue is full "
                        f"({depth} requests waiting, {priority} lane sheds "
                        f"at {bound}); retry later or raise max_queue"
                    )
            if priority == "high":
                self._priority_pending.append(request)
                self._n_high += 1
            else:
                self._pending.append(request)
            self._cond.notify_all()
        if not request.event.wait(self._timeout):
            raise TimeoutError(
                f"MicroBatcher request did not complete within "
                f"{self._timeout}s"
            )
        if request.error is not None:
            raise request.error
        return request.result

    @property
    def stats(self):
        with self._cond:
            return BatchStats(self._n_requests, self._n_batches,
                              self._max_seen, self._n_rejected,
                              self._n_high)

    @property
    def average_batch_size(self):
        stats = self.stats
        return stats.requests / stats.batches if stats.batches else 0.0

    def close(self):
        """Stop the worker after draining already-queued requests."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._worker.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- worker side -------------------------------------------------------

    def _loop(self):
        while True:
            batch = self._gather()
            if not batch:
                return
            self._execute(batch)

    def _pop_next(self):
        """The next queued request, high lane first (not thread-safe:
        callers hold ``_cond``)."""
        if self._priority_pending:
            return self._priority_pending.popleft()
        return self._pending.popleft()

    def _gather(self):
        """Block for the first request, then coalesce until full/timeout."""
        with self._cond:
            while not (self._pending or self._priority_pending):
                if self._closed:
                    return []
                self._cond.wait()
            batch = [self._pop_next()]
            deadline = time.monotonic() + self._batch_timeout
            while len(batch) < self._max_batch_size:
                if self._pending or self._priority_pending:
                    batch.append(self._pop_next())
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(remaining)
            return batch

    def _stack(self, values):
        shapes = {v.shape for v in values}
        if len(shapes) > 1:
            ranks = {len(s) for s in shapes}
            if len(ranks) > 1:
                raise ValueError(
                    f"Cannot batch examples of different ranks: "
                    f"{sorted(shapes)}"
                )
            if self._pad_value is None:
                raise ValueError(
                    f"Cannot batch examples of different shapes "
                    f"{sorted(shapes)}: zero-padding would change the "
                    "model's math depending on which requests co-batch. "
                    "Pass pad_value=<fill> to MicroBatcher (or "
                    "add_signature) if padding is neutral for this model."
                )
            target = tuple(max(dims) for dims in zip(*shapes))
            values = [
                np.pad(v, [(0, t - s) for s, t in zip(v.shape, target)],
                       constant_values=self._pad_value)
                if v.shape != target else v
                for v in values
            ]
        return np.stack(values, axis=self._batch_axis)

    def _split(self, result, index):
        """The per-request slice of a structured batch result."""
        flat = nest.flatten(result)
        leaves = []
        for leaf in flat:
            if isinstance(leaf, EagerTensor):
                arr = leaf.numpy()
                if arr.ndim <= self._batch_axis:
                    raise ValueError(
                        f"Output of {self._executable.name!r} has no batch "
                        f"axis {self._batch_axis} to split (shape "
                        f"{arr.shape}); batched signatures must return "
                        "per-example outputs"
                    )
                leaves.append(EagerTensor(
                    np.take(arr, index, axis=self._batch_axis)))
            else:
                leaves.append(leaf)
        return nest.pack_sequence_as(result, leaves)

    def _execute(self, batch):
        rec = _REC
        t0 = rec.begin() if rec.enabled else 0.0
        try:
            stacked = [
                self._stack([r.inputs[i] for r in batch])
                for i in range(self._n_args)
            ]
            result = self._call_flat(stacked)
            for index, request in enumerate(batch):
                request.result = self._split(result, index)
        except Exception as e:  # noqa: BLE001 - delivered to submitters
            for request in batch:
                request.error = e
        finally:
            with self._cond:
                self._n_requests += len(batch)
                self._n_batches += 1
                self._max_seen = max(self._max_seen, len(batch))
            rec.counter("serving.batches")
            rec.counter("serving.batched_requests", len(batch))
            if rec.enabled:
                rec.end("batch_execute", "batch", t0, {
                    "model": self._executable.name,
                    "coalesced": len(batch),
                })
                if len(batch) > 1:
                    rec.instant("batch_coalesce", "batch",
                                {"coalesced": len(batch)})
            for request in batch:
                request.event.set()
