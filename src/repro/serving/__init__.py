"""``repro.serving``: taking traced functions out of the process.

Layers, all speaking the backend-neutral
:class:`~repro.function.Executable` protocol, so a signature traced via
``backend="graph"`` and one lowered via ``backend="lantern"`` are
interchangeable everywhere here:

- :mod:`repro.serving.saved_function` — ``save``/``load``: serialize a
  traced signature (optimized graph or lantern program, ``TensorSpec``
  tree) to disk — frozen, or with a separate named weight checkpoint
  (``freeze=False``) whose loaded captures hot-swap — and rehydrate it
  without retracing;
- :class:`MicroBatcher` — dynamic micro-batching: concurrent
  same-signature calls coalesce along a batch axis (pad + stack, split
  results) under ``max_batch_size`` / ``batch_timeout`` control, with
  two priority lanes and bounded-queue backpressure (``max_queue`` /
  :class:`QueueFullError`);
- :mod:`repro.serving.wire` — the length-prefixed binary tensor wire
  format (``application/x-repro-tensor``): dtype/shape header + raw
  buffers, decoded zero-copy; JSON stays the fallback;
- :class:`ModelServer` — a threaded HTTP front routing named signatures
  (registered via the unified ``server.register(...)``) through the
  batcher to either backend, serving N versions side by side with live,
  zero-retrace weight/version swaps, canary traffic splits, uniform
  ``{"error": {"code", "message"}}`` replies, load shedding and
  per-signature latency stats in ``GET /v1/models``;
- :class:`FleetServer` (:mod:`repro.serving.fleet`) — N prefork worker
  processes behind one shared socket, weights held once per fleet in
  :mod:`~repro.serving.shm_store` shared-memory generations so
  hot-swaps stay atomic and zero-copy fleet-wide;
- :class:`~repro.serving.client.ServingClient` — the stdlib client:
  wire negotiation, transport retries, typed errors mapped from the
  envelope.
"""

from . import client, fleet, saved_function, shm_store, wire
from .batching import MicroBatcher, QueueFullError
from .client import ServingClient
from .fleet import FleetServer
from .saved_function import load, save
from .server import ActiveVersionError, ModelServer

__all__ = [
    "ActiveVersionError",
    "FleetServer",
    "MicroBatcher",
    "ModelServer",
    "QueueFullError",
    "ServingClient",
    "client",
    "fleet",
    "load",
    "save",
    "saved_function",
    "shm_store",
    "wire",
]
