"""``repro.serving``: taking traced functions out of the process.

Three layers, all speaking the backend-neutral
:class:`~repro.function.Executable` protocol, so a signature traced via
``backend="graph"`` and one lowered via ``backend="lantern"`` are
interchangeable everywhere here:

- :mod:`repro.serving.saved_function` — ``save``/``load``: serialize a
  traced signature (optimized graph or lantern program, ``TensorSpec``
  tree) to disk — frozen, or with a separate named weight checkpoint
  (``freeze=False``) whose loaded captures hot-swap — and rehydrate it
  without retracing;
- :class:`MicroBatcher` — dynamic micro-batching: concurrent
  same-signature calls coalesce along a batch axis (pad + stack, split
  results) under ``max_batch_size`` / ``batch_timeout`` control, with
  bounded-queue backpressure (``max_queue`` / :class:`QueueFullError`);
- :class:`ModelServer` — a threaded HTTP/JSON front routing named
  signatures through the batcher to either backend, serving N versions
  side by side with live, zero-retrace weight/version swaps
  (``POST /v1/models/<name>:swap_weights``) and per-signature latency
  stats in ``GET /v1/models``.
"""

from . import client, saved_function
from .batching import MicroBatcher, QueueFullError
from .saved_function import load, save
from .server import ModelServer

__all__ = [
    "MicroBatcher",
    "ModelServer",
    "QueueFullError",
    "client",
    "load",
    "save",
    "saved_function",
]
