"""A tiny stdlib client for :class:`~repro.serving.ModelServer`.

Kept dependency-free (``urllib``) so examples, benchmarks and user code
can hit a server without an HTTP library; it is also the documentation
of the wire format, in code form.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

__all__ = ["ServingError", "list_models", "predict", "remove_version",
           "swap_weights"]


class ServingError(RuntimeError):
    """A server-side error reply (carries the HTTP status)."""

    def __init__(self, status, message):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def _request(url, data=None, timeout=10.0, method=None):
    req = urllib.request.Request(
        url,
        data=None if data is None else json.dumps(data).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as e:
        try:
            message = json.loads(e.read().decode("utf-8")).get("error", "")
        except Exception:  # noqa: BLE001 - error-path best effort
            message = e.reason
        raise ServingError(e.code, message) from None


def list_models(base_url, timeout=10.0):
    """``GET /v1/models``: every served signature's metadata."""
    return _request(f"{base_url}/v1/models", timeout=timeout)


def predict(base_url, name, inputs, timeout=10.0):
    """``POST /v1/models/<name>:predict`` with one value per signature
    entry (nested lists); returns the decoded JSON reply."""
    return _request(
        f"{base_url}/v1/models/{name}:predict",
        data={"inputs": inputs},
        timeout=timeout,
    )


def swap_weights(base_url, name, weights=None, version=None, timeout=10.0):
    """``POST /v1/models/<name>:swap_weights``: live model management.

    ``weights`` replaces capture values (name -> nested lists) on the
    target (default: active) version; ``version`` activates a registered
    version label.  Both are zero-retrace operations.
    """
    data = {}
    if weights is not None:
        data["weights"] = weights
    if version is not None:
        data["version"] = version
    return _request(
        f"{base_url}/v1/models/{name}:swap_weights",
        data=data,
        timeout=timeout,
    )


def remove_version(base_url, name, version, timeout=10.0):
    """``DELETE /v1/models/<name>/versions/<version>``: unload an
    inactive version (version GC).  Deleting the active version is a
    409-``ServingError`` — activate another version first."""
    return _request(
        f"{base_url}/v1/models/{name}/versions/{version}",
        timeout=timeout,
        method="DELETE",
    )
