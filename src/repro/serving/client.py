"""A tiny stdlib client for :class:`~repro.serving.ModelServer`.

Kept dependency-free (``urllib``) so examples, benchmarks and user code
can hit a server — or a :class:`~repro.serving.fleet.FleetServer` —
without an HTTP library; it is also the documentation of the wire
format, in code form.

The surface is :class:`ServingClient`::

    client = ServingClient(server.url)
    client.predict("score", [[1.0, 2.0, 3.0, 4.0]])
    client.swap_weights("score", weights={"w": new_w})
    client.set_canary("score", version="2", fraction=0.1)

By default (``wire="auto"``) tensor payloads travel as the binary wire
format (:mod:`repro.serving.wire` — dtype/shape header + raw buffers,
no JSON number printing/parsing) and fall back to JSON if the server
replies 415; ``wire="json"`` forces JSON end-to-end.  Transport-level
failures (connection refused/reset mid-restart) retry with exponential
backoff; HTTP *error replies* do not retry — they surface as typed
exceptions mapped from the server's error envelope
(``{"error": {"code", "message"}}``):

- ``not_found`` → :class:`UnknownModelError` (404)
- ``queue_full`` → :class:`QueueFullError` (503, carries
  ``retry_after``) — the client-side twin of
  :class:`repro.serving.QueueFullError`
- ``active_version`` → :class:`ActiveVersionError` (409)
- anything else → :class:`ServingError` (the base, carries ``status``
  and ``code``)

The original free functions (``predict(base_url, ...)`` etc.) remain as
deprecated wrappers over a JSON-wire client.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
import warnings

from . import wire

__all__ = [
    "ActiveVersionError",
    "QueueFullError",
    "ServingClient",
    "ServingError",
    "UnknownModelError",
    "list_models",
    "predict",
    "remove_version",
    "swap_weights",
]


class ServingError(RuntimeError):
    """A server-side error reply (carries HTTP status + envelope code)."""

    def __init__(self, status, message, code=None, retry_after=None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.code = code
        #: Seconds the server advised waiting before a retry (503 only).
        self.retry_after = retry_after


class UnknownModelError(ServingError):
    """404: no such signature/version/route on the server."""


class QueueFullError(ServingError):
    """503: the server shed this request; back off ``retry_after``s."""


class ActiveVersionError(ServingError):
    """409: refused to remove the version currently serving traffic."""


_ERROR_TYPES = {
    "not_found": UnknownModelError,
    "queue_full": QueueFullError,
    "active_version": ActiveVersionError,
}

#: Transport failures worth retrying: the request may never have reached
#: a healthy worker (connect refused during restart, worker recycled
#: mid-keepalive).  HTTP error *replies* are never retried here.
_RETRYABLE = (ConnectionError, http.client.RemoteDisconnected, TimeoutError)


def _jsonify(value):
    """Nested-list the tensor leaves for the JSON wire (ndarrays /
    anything with ``.tolist`` or ``.numpy``)."""
    tolist = getattr(value, "tolist", None)
    if tolist is not None and not isinstance(value, (str, bytes)):
        return tolist()
    numpy_fn = getattr(value, "numpy", None)
    if numpy_fn is not None:
        return numpy_fn().tolist()
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _raise_serving_error(status, body, headers):
    """Map an error reply body onto the typed exception hierarchy.

    Lenient on shape: the uniform envelope is
    ``{"error": {"code", "message"}}``, but pre-envelope servers sent
    ``{"error": "<text>"}`` and a dying worker may send no JSON at all.
    """
    code, message = None, ""
    try:
        envelope = json.loads(body.decode("utf-8")).get("error", "")
        if isinstance(envelope, dict):
            code = envelope.get("code")
            message = envelope.get("message", "")
        else:
            message = envelope
    except Exception:  # noqa: BLE001 - error-path best effort
        message = body.decode("utf-8", "replace")[:200]
    retry_after = None
    if headers is not None:
        value = headers.get("Retry-After")
        if value is not None:
            try:
                retry_after = float(value)
            except ValueError:
                pass
    cls = _ERROR_TYPES.get(code, ServingError)
    raise cls(status, message, code=code, retry_after=retry_after) from None


class ServingClient:
    """A connection-config-carrying client for the serving routes.

    Args:
      base_url: e.g. ``server.url`` / ``fleet.url``.
      timeout: per-request socket timeout in seconds.
      retries: how many times to re-send after a *transport* failure
        (connection refused/reset; HTTP error replies never retry).
      backoff: first retry delay in seconds; doubles per attempt.
      wire: ``"auto"`` (binary tensor wire, falling back to JSON if the
        server replies 415) or ``"json"`` (JSON end-to-end).
    """

    def __init__(self, base_url, *, timeout=10.0, retries=2, backoff=0.05,
                 wire="auto"):
        if wire not in ("auto", "json"):
            raise ValueError(f"wire must be 'auto' or 'json', got {wire!r}")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        # Downgrades to "json" (sticky) on the first 415 when "auto".
        self._wire = wire

    # -- routes ------------------------------------------------------------

    def list_models(self):
        """``GET /v1/models``: every served signature's metadata (plus
        fleet-wide worker stats when talking to a fleet)."""
        return self._call("/v1/models")

    def describe(self, name):
        """``GET /v1/models/<name>``: one signature's metadata."""
        return self._call(f"/v1/models/{name}")

    def metrics(self):
        """``GET /v1/metrics``: the live counter snapshot (engine,
        function-cache, serving) plus per-model request/latency stats;
        a fleet additionally reports every worker's counters merged."""
        return self._call("/v1/metrics")

    def predict(self, name, inputs, priority=None):
        """``POST /v1/models/<name>:predict`` with one value per
        signature entry; ``priority="high"`` routes onto the batcher's
        high lane (drained first, shed last)."""
        headers = {}
        if priority is not None:
            headers["X-Repro-Priority"] = priority
        return self._call(f"/v1/models/{name}:predict",
                          data={"inputs": inputs}, headers=headers)

    def swap_weights(self, name, weights=None, version=None):
        """``POST /v1/models/<name>:swap_weights``: live model
        management with zero retraces.

        ``weights`` replaces capture values (name -> arrays) on the
        target (default: active) version; ``version`` activates a
        registered version label.  Against a fleet, one call updates
        every worker atomically (shared-memory generation bump).
        """
        data = {}
        if weights is not None:
            data["weights"] = weights
        if version is not None:
            data["version"] = version
        return self._call(f"/v1/models/{name}:swap_weights", data=data)

    def set_canary(self, name, version=None, fraction=0.0):
        """``POST /v1/models/<name>:canary``: split ``fraction`` of
        predict traffic onto ``version``; ``fraction=0`` clears."""
        return self._call(f"/v1/models/{name}:canary",
                          data={"version": version, "fraction": fraction})

    def remove_version(self, name, version):
        """``DELETE /v1/models/<name>/versions/<version>``: unload an
        inactive version.  Deleting the active version raises
        :class:`ActiveVersionError` — activate another first."""
        return self._call(f"/v1/models/{name}/versions/{version}",
                          method="DELETE")

    # -- transport ---------------------------------------------------------

    def _call(self, path, data=None, method=None, headers=None):
        attempt = 0
        while True:
            try:
                return self._send(path, data, method, headers)
            except ServingError as e:
                if e.status == 415 and self._wire == "auto":
                    # Talking to a JSON-only server: downgrade once,
                    # stay downgraded.
                    self._wire = "json"
                    continue
                raise
            except urllib.error.URLError as e:
                if isinstance(e, urllib.error.HTTPError):
                    raise  # error replies are handled in _send
                if attempt >= self.retries:
                    raise
            except _RETRYABLE:
                if attempt >= self.retries:
                    raise
            time.sleep(self.backoff * (2 ** attempt))
            attempt += 1

    def _send(self, path, data, method, headers):
        all_headers = dict(headers or ())
        body = None
        if data is not None:
            if self._wire == "auto":
                body = wire.encode(data)
                all_headers["Content-Type"] = wire.CONTENT_TYPE
            else:
                body = json.dumps(_jsonify(data)).encode("utf-8")
                all_headers["Content-Type"] = "application/json"
        if self._wire == "auto":
            all_headers["Accept"] = wire.CONTENT_TYPE
        req = urllib.request.Request(
            self.base_url + path, data=body, headers=all_headers,
            method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read()
                ctype = (resp.headers.get("Content-Type") or "").split(
                    ";")[0].strip().lower()
                if ctype == wire.CONTENT_TYPE:
                    return wire.decode(raw)
                return json.loads(raw.decode("utf-8"))
        except urllib.error.HTTPError as e:
            _raise_serving_error(e.code, e.read(), e.headers)


# -- deprecated free-function surface -------------------------------------


def _legacy(base_url, timeout):
    # JSON wire: byte-for-byte the old free functions' behavior
    # (nested-list outputs), minus the envelope change they tolerate.
    return ServingClient(base_url, timeout=timeout, retries=0, wire="json")


def list_models(base_url, timeout=10.0):
    """Deprecated: use :meth:`ServingClient.list_models`."""
    warnings.warn(
        "repro.serving.client.list_models is deprecated; use "
        "ServingClient(base_url).list_models()",
        DeprecationWarning, stacklevel=2)
    return _legacy(base_url, timeout).list_models()


def predict(base_url, name, inputs, timeout=10.0):
    """Deprecated: use :meth:`ServingClient.predict`."""
    warnings.warn(
        "repro.serving.client.predict is deprecated; use "
        "ServingClient(base_url).predict(name, inputs)",
        DeprecationWarning, stacklevel=2)
    return _legacy(base_url, timeout).predict(name, inputs)


def swap_weights(base_url, name, weights=None, version=None, timeout=10.0):
    """Deprecated: use :meth:`ServingClient.swap_weights`."""
    warnings.warn(
        "repro.serving.client.swap_weights is deprecated; use "
        "ServingClient(base_url).swap_weights(name, ...)",
        DeprecationWarning, stacklevel=2)
    return _legacy(base_url, timeout).swap_weights(
        name, weights=weights, version=version)


def remove_version(base_url, name, version, timeout=10.0):
    """Deprecated: use :meth:`ServingClient.remove_version`."""
    warnings.warn(
        "repro.serving.client.remove_version is deprecated; use "
        "ServingClient(base_url).remove_version(name, version)",
        DeprecationWarning, stacklevel=2)
    return _legacy(base_url, timeout).remove_version(name, version)
