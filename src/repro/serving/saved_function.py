"""``save``/``load``: traced signatures as on-disk artifacts.

``save(fn, path, *args)`` serializes one traced signature — the
SavedModel move, for both backends:

- **graph** route: the concrete function's *optimized* graph, with
  variable reads frozen to constants (GraphDef + checkpoint in one);
- **lantern** route: the staged program (IR instruction blocks) with
  frozen ``Param`` values; compilation re-runs at load time.

The artifact is a directory holding ``saved_function.json`` (signature,
output structure, backend payload) and ``arrays.npz`` (every ndarray the
payload references).  ``load(path)`` rehydrates it into an
:class:`~repro.function.Executable` without retracing — no AutoGraph, no
Python source, no Variables required in the loading process — so the
same artifact answers ``call_flat`` (and serves through
:class:`~repro.serving.ModelServer`) whichever backend produced it.
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np

from ..framework.eager.tensor import EagerTensor
from ..function.executable import (
    Executable,
    ExportError,
    ExportSpec,
    descriptor_to_structure,
    resolve_executable,
)
from ..function.tensor_spec import TensorSpec

__all__ = ["save", "load", "LoadedExecutable"]

SPEC_FILE = "saved_function.json"
ARRAYS_FILE = "arrays.npz"
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Input-spec encoding
# ---------------------------------------------------------------------------


def _encode_input_spec(spec):
    if isinstance(spec, str):  # the lantern "Tree" marker
        return {"kind": "tree"}
    dims = spec.shape.dims
    return {
        "kind": "tensor",
        "dtype": spec.dtype.name,
        "shape": None if dims is None else list(dims),
        "name": spec.name,
    }


def _decode_input_spec(data):
    if data["kind"] == "tree":
        return "Tree"
    shape = data["shape"]
    return TensorSpec(
        None if shape is None else tuple(shape),
        data["dtype"],
        name=data.get("name"),
    )


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------


def save(fn, path, *args, freeze=True, **kwargs):
    """Serialize one traced signature of ``fn`` to ``path``.

    Args:
      fn: an :class:`~repro.function.Executable` (e.g. from
        ``Function.get_concrete_function``), or a
        :class:`~repro.function.Function` — then ``*args``/``**kwargs``
        (concrete values or bare :class:`TensorSpec`s) select, and if
        necessary trace, the signature to export.
      path: target directory (created if missing).
      freeze: ``True`` (default) bakes captured state (closed-over
        eager tensors / Variable reads) into the artifact as constants.
        ``False`` exports the graph/program and a *separate* named
        weight checkpoint (in ``arrays.npz``); the loaded executable
        then supports ``set_capture_values`` — weight hot-swapping with
        zero retraces.

    Returns:
      ``path``.

    Raises:
      ExportError: the signature cannot leave the process (stateful
        side effects, unserializable return structure, ...).
    """
    executable = resolve_executable(fn, args, kwargs, "save")
    spec = executable.export_spec(freeze=freeze)
    doc = {
        "format_version": FORMAT_VERSION,
        "backend": spec.backend,
        "name": spec.name,
        "input_specs": [_encode_input_spec(s) for s in spec.input_specs],
        "output_template": [list(leaf) for leaf in spec.output_template],
        "output_descriptor": spec.output_descriptor,
        "payload": spec.payload,
        "captures": list(spec.captures),
    }
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, SPEC_FILE), "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    # Always write the arrays file (even empty) so an artifact directory
    # has a fixed, recognizable layout.
    np.savez(os.path.join(path, ARRAYS_FILE), **spec.arrays)
    return path


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------


class LoadedExecutable(Executable):
    """An :class:`Executable` rehydrated from a saved artifact.

    ``variables`` is empty — loaded state is either frozen into the
    payload or held as named *captures* (non-frozen artifacts), which
    :meth:`set_capture_values` can hot-swap without retracing.
    ``export_spec`` re-serializes, making artifacts round-trip
    (``load(save(load(p)))`` is the identity).
    """

    def __init__(self, name, input_specs, output_template, output_descriptor):
        self.name = name
        self._input_specs = list(input_specs)
        self._output_template = [tuple(leaf) for leaf in output_template]
        self._output_descriptor = output_descriptor
        self._output_structure = descriptor_to_structure(output_descriptor)

    @property
    def structured_input_signature(self):
        return list(self._input_specs)

    @property
    def variables(self):
        return []

    def __call__(self, *args):
        """Convenience: positional flat runtime arguments."""
        return self.call_flat(list(args))

    def _cast_args(self, flat_args):
        if len(flat_args) != len(self._input_specs):
            raise ValueError(
                f"{self.name!r} takes {len(self._input_specs)} arguments, "
                f"got {len(flat_args)}"
            )
        cast = []
        for value, spec in zip(flat_args, self._input_specs):
            if isinstance(spec, TensorSpec):
                if isinstance(value, EagerTensor):
                    value = value.numpy()
                value = np.asarray(value, dtype=spec.dtype.np_dtype)
                if not spec.shape.is_compatible_with(value.shape):
                    raise ValueError(
                        f"{self.name!r}: argument of shape {value.shape} is "
                        f"incompatible with {spec}"
                    )
            cast.append(value)
        return cast

    def _export_spec_from_parts(self, backend, payload, arrays):
        return ExportSpec(
            backend=backend,
            name=self.name,
            input_specs=list(self._input_specs),
            output_template=list(self._output_template),
            output_descriptor=self._output_descriptor,
            payload=payload,
            arrays=arrays,
        )

    def __repr__(self):
        return (f"<{type(self).__name__} {self.name!r} "
                f"inputs={self._input_specs}>")


class _LoadedGraphExecutable(LoadedExecutable):
    """A deserialized graph signature bound once to a runtime plan.

    The rebuilt graph compiles into one
    :class:`~repro.runtime.ExecutionPlan` at load time, with the
    artifact's inputs (and trailing capture placeholders) bound to
    positional slots — every ``call_flat`` is a slot-addressed
    ``execute_flat``, the same fast path a live ``ConcreteFunction``
    uses; no per-request feed dicts or plan-cache keys.

    Loaded from a non-frozen artifact, the trailing graph inputs are
    capture placeholders: their values live in ``_capture_state`` (a
    tuple, rebound atomically by :meth:`set_capture_values`) and feed
    every run — weight hot-swaps are atomic under in-flight requests.
    """

    backend = "graph"

    def __init__(self, name, input_specs, output_template,
                 output_descriptor, graph, inputs, outputs, captures=(),
                 capture_values=()):
        super().__init__(name, input_specs, output_template,
                         output_descriptor)
        from ..runtime import BoundPlan, compile_plan

        self._graph = graph
        n_caps = len(captures)
        self._inputs = inputs[:len(inputs) - n_caps]
        self._capture_inputs = inputs[len(inputs) - n_caps:]
        self._capture_names = [c["name"] for c in captures]
        self._capture_state = tuple(
            np.asarray(v) for v in capture_values)
        self._outputs = outputs
        # Serializes swap read-modify-writes; readers (call_flat) just
        # snapshot the tuple attribute and need no lock.
        self._swap_lock = threading.Lock()
        self._bound = BoundPlan(
            compile_plan(graph, outputs, inputs), inputs)

    @property
    def captures(self):
        return list(self._capture_names)

    def capture_values(self):
        state = self._capture_state
        return dict(zip(self._capture_names, state))

    def set_capture_values(self, mapping):
        """Atomically swap capture values (one tuple rebind, no retrace).

        The read-modify-write is serialized behind a lock so concurrent
        swappers of *different* captures cannot silently drop each
        other's update; in-flight calls keep whichever whole tuple they
        snapshotted.
        """
        index = {n: i for i, n in enumerate(self._capture_names)}
        with self._swap_lock:
            state = list(self._capture_state)
            for name, value in mapping.items():
                if name not in index:
                    raise KeyError(
                        f"{self.name!r} has no capture named {name!r}; "
                        f"captures: {sorted(index)}"
                    )
                i = index[name]
                value = np.asarray(value, dtype=state[i].dtype)
                ph = self._capture_inputs[i]
                if not ph.shape.is_compatible_with(value.shape):
                    raise ValueError(
                        f"Capture {name!r} expects shape {ph.shape}, "
                        f"got {value.shape}"
                    )
                state[i] = value
            self._capture_state = tuple(state)

    def capture_specs(self):
        """``[(name, np.dtype, static shape)]`` per capture, in state
        order — what a shared-memory store needs to validate a rebind."""
        return [
            (name, ph.dtype.np_dtype, ph.shape.dims)
            for name, ph in zip(self._capture_names, self._capture_inputs)
        ]

    def set_capture_state(self, arrays):
        """Rebind the *whole* capture tuple to ``arrays`` without copying.

        The fleet's shared-memory hot-swap path: ``arrays`` are typically
        read-only ndarray views into one shared generation segment, and
        this method validates dtype/shape then performs the same single
        atomic tuple rebind as :meth:`set_capture_values` — but with zero
        per-worker copies (``set_capture_values`` casts through
        ``np.asarray`` per capture, which would materialize every weight
        matrix N times fleet-wide).
        """
        arrays = tuple(arrays)
        if len(arrays) != len(self._capture_names):
            raise ValueError(
                f"{self.name!r} has {len(self._capture_names)} captures, "
                f"got {len(arrays)} arrays"
            )
        for name, ph, value in zip(self._capture_names,
                                   self._capture_inputs, arrays):
            if value.dtype != ph.dtype.np_dtype:
                raise ValueError(
                    f"Capture {name!r} expects dtype "
                    f"{ph.dtype.np_dtype}, got {value.dtype}"
                )
            if not ph.shape.is_compatible_with(value.shape):
                raise ValueError(
                    f"Capture {name!r} expects shape {ph.shape}, "
                    f"got {value.shape}"
                )
        with self._swap_lock:
            self._capture_state = arrays

    def engine_stats(self):
        """Bound-plan info for serving observability."""
        return {"bound_plan": self._bound.describe()}

    def call_flat(self, flat_args):
        args = self._cast_args(flat_args)
        if self._capture_inputs:
            # One snapshot per call: a concurrent swap lands wholly
            # before or wholly after this run.
            args = args + list(self._capture_state)
        fetched = self._bound.execute_flat(args)
        tensor_outputs = tuple(EagerTensor(v) for v in fetched)
        return self._pack_outputs(tensor_outputs)

    def export_spec(self, freeze=True):
        from ..framework.graph.serialize import graph_to_def

        state = self._capture_state
        captures = []
        arrays = {}
        if freeze and self._capture_inputs:
            graph_def, arrays = graph_to_def(
                self._graph, self._inputs, self._outputs,
                freeze_placeholders=dict(zip(self._capture_inputs, state)),
            )
        else:
            for i, (name, value) in enumerate(
                    zip(self._capture_names, state)):
                key = f"capture_{i}"
                arrays[key] = value
                captures.append({"name": name, "key": key})
            graph_def, arrays = graph_to_def(
                self._graph, self._inputs + self._capture_inputs,
                self._outputs, arrays=arrays)
        spec = self._export_spec_from_parts(
            "graph", {"graph_def": graph_def}, arrays)
        spec.captures = captures
        return spec


class _LoadedLanternExecutable(LoadedExecutable):
    """A deserialized lantern program, recompiled forward-only.

    Non-frozen artifacts advertise their Params as named captures;
    :meth:`set_capture_values` swaps each Param's storage (per-tensor
    atomic — a running call keeps the array object it already read).
    """

    backend = "lantern"

    def __init__(self, name, input_specs, output_template,
                 output_descriptor, program, entry, captures=()):
        super().__init__(name, input_specs, output_template,
                         output_descriptor)
        from ..lantern.compiler import compile_program

        self._program = program
        self._entry = entry
        self._compiled = compile_program(program, with_grad=False)
        self._capture_to_param = {c["name"]: c["param"] for c in captures}

    @property
    def captures(self):
        return list(self._capture_to_param)

    def capture_values(self):
        values = self._compiled.namespace["_P"]
        return {name: np.asarray(values[param])
                for name, param in self._capture_to_param.items()}

    def set_capture_values(self, mapping):
        """Swap Param values (atomic per tensor, no recompilation)."""
        values = self._compiled.namespace["_P"]
        staged = []
        for name, value in mapping.items():
            param = self._capture_to_param.get(name)
            if param is None:
                raise KeyError(
                    f"{self.name!r} has no capture named {name!r}; "
                    f"captures: {sorted(self._capture_to_param)}"
                )
            old = values[param]
            value = np.asarray(value, dtype=np.float32)
            if value.shape != old.shape:
                raise ValueError(
                    f"Capture {name!r} expects shape {old.shape}, "
                    f"got {value.shape}"
                )
            staged.append((param, value))
        for param, value in staged:
            # Rebind (don't mutate in place): an in-flight call that
            # already read the old array keeps a consistent tensor.
            values[param] = value
            self._compiled.params[param].value = value

    def capture_specs(self):
        """``[(name, np.dtype, shape)]`` per capture, in state order."""
        values = self._compiled.namespace["_P"]
        return [
            (name, values[param].dtype, values[param].shape)
            for name, param in self._capture_to_param.items()
        ]

    def set_capture_state(self, arrays):
        """Rebind every Param to ``arrays`` (:meth:`capture_specs` order).

        Already-float32 ndarrays (e.g. shared-memory views) rebind
        without copying.  Note lantern swaps are atomic *per tensor*:
        the program reads each Param at use time, so a call overlapping
        a swap may mix generations across different Params (the graph
        backend's whole-tuple snapshot does not).
        """
        names = list(self._capture_to_param)
        if len(arrays) != len(names):
            raise ValueError(
                f"{self.name!r} has {len(names)} captures, got "
                f"{len(arrays)} arrays"
            )
        self.set_capture_values(dict(zip(names, arrays)))

    def call_flat(self, flat_args):
        out = self._compiled.namespace[self._entry](
            *self._cast_args(flat_args))
        tensor_outputs = tuple(EagerTensor(np.asarray(r)) for r in out)
        return self._pack_outputs(tensor_outputs)

    def export_spec(self, freeze=True):
        from ..lantern.serialize import program_to_payload

        payload, arrays = program_to_payload(self._program)
        captures = []
        if not freeze:
            param_keys = payload["params"]
            to_param = self._capture_to_param or {
                name: name for name in param_keys
            }
            for name, param in to_param.items():
                captures.append({
                    "name": name, "key": param_keys[param], "param": param,
                })
        spec = self._export_spec_from_parts(
            "lantern", {"program": payload, "entry": self._entry}, arrays)
        spec.captures = captures
        return spec


def load(path):
    """Rehydrate a :func:`save` artifact into an :class:`Executable`.

    No retracing happens: the graph route rebuilds the serialized graph
    and binds a fresh ``repro.runtime`` execution plan to positional
    slots, the lantern route re-runs code generation on the deserialized
    program.
    """
    spec_path = os.path.join(path, SPEC_FILE)
    try:
        with open(spec_path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        raise ExportError(
            f"{path!r} is not a saved-function artifact (no {SPEC_FILE})"
        ) from None
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ExportError(
            f"Unsupported saved-function format_version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    arrays_path = os.path.join(path, ARRAYS_FILE)
    if os.path.exists(arrays_path):
        with np.load(arrays_path) as data:
            arrays = {k: data[k] for k in data.files}
    else:
        arrays = {}

    common = (
        doc["name"],
        [_decode_input_spec(s) for s in doc["input_specs"]],
        doc["output_template"],
        doc["output_descriptor"],
    )
    captures = doc.get("captures", [])
    backend = doc["backend"]
    if backend == "graph":
        from ..framework.graph.serialize import graph_from_def

        graph, inputs, outputs = graph_from_def(
            doc["payload"]["graph_def"], arrays)
        return _LoadedGraphExecutable(
            *common, graph, inputs, outputs, captures=captures,
            capture_values=[arrays[c["key"]] for c in captures])
    if backend == "lantern":
        from ..lantern.serialize import program_from_payload

        program = program_from_payload(doc["payload"]["program"], arrays)
        return _LoadedLanternExecutable(
            *common, program, doc["payload"]["entry"], captures=captures)
    raise ExportError(f"Unknown saved-function backend {backend!r}")
