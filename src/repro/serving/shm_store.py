"""Fleet weights in ``multiprocessing.shared_memory``: one copy, N readers.

The prefork fleet's hot-swap problem: ``swap_weights`` must be observed
**atomically by every worker process** — no request may ever execute
against half-old, half-new weights — and shipping N copies of the weight
matrices through pipes would make swaps O(workers * bytes).

:class:`SharedWeightStore` solves both with *generations*:

- every generation is one immutable shared-memory segment holding **all**
  of a version's capture tensors, framed by the binary wire codec
  (:mod:`repro.serving.wire`), so a reader maps the whole set zero-copy
  as read-only ndarray views;
- a tiny fixed control segment holds the current generation number; the
  publisher writes the new data segment first, then bumps the counter
  (one aligned 8-byte store).  Readers poll the counter (one
  ``unpack_from`` — cheap enough for once-per-request), and on a change
  rebind their executable's *entire* capture tuple from the new
  generation's views in a single atomic assignment;
- old generations stay mapped until their last in-flight reader drops
  them; the publisher unlinks the segment *names* two generations back,
  so the live set is bounded at two while Linux keeps the memory alive
  for whoever still holds views.

Atomicity therefore never depends on locking the readers: a request
either snapshots generation G's whole tuple or generation G+1's whole
tuple.  Concurrent *publishers* (any worker may serve the swap request)
serialize on a fork-inherited ``multiprocessing.Lock``.

Segment names are process-global; creators pass ``create=True`` and own
:meth:`unlink` cleanup, attachers are unregistered from Python's
``resource_tracker`` so a worker exiting never tears down segments its
siblings still serve from (bpo-39959).
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

import numpy as np

from . import wire

__all__ = ["SharedWeightStore"]

_CTL_MAGIC = 0x5250_5753  # "RPWS"
_CTL_SIZE = 16  # u64 magic | u64 generation


def _untrack(segment):
    """Drop ``segment`` from this process's resource tracker.

    The tracker assumes one owner per segment; in a fleet every worker
    attaches (and may create successor generations of) segments whose
    lifetime the acceptor owns.  Without this, the first worker to exit
    would unlink weights the rest of the fleet is still mapping.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker details vary per version
        pass


def _unlink_segment(segment):
    """Remove ``segment``'s name without touching the resource tracker.

    Every attach/create here is untracked (see :func:`_untrack`), so the
    tracker has nothing registered; ``SharedMemory.unlink`` would send
    an unmatched unregister and the tracker process logs a KeyError.
    """
    try:
        from multiprocessing.shared_memory import _posixshmem

        _posixshmem.shm_unlink(segment._name)
    except FileNotFoundError:
        pass
    except (ImportError, AttributeError):  # pragma: no cover - non-posix
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


class SharedWeightStore:
    """Generational shared-memory storage for one executable's captures."""

    def __init__(self, namespace, *, create=False, initial=None, lock=None):
        """Args:
          namespace: short, unique, filesystem-safe segment-name prefix
            (the fleet derives one per served (model, version)).
          create: allocate the control segment and publish ``initial`` as
            generation 1 (the acceptor side); ``False`` attaches to an
            existing store (the worker side).
          initial: ``{capture name: ndarray}`` for the first generation.
          lock: a fork-inherited ``multiprocessing.Lock`` serializing
            publishers; ``None`` leaves publishing unsynchronized (fine
            for a single publisher or in-process tests).
        """
        self._ns = namespace
        self._lock = lock
        self._owner = create
        self._segments = {}  # generation -> (SharedMemory, {name: view})
        if create:
            self._ctl = shared_memory.SharedMemory(
                name=self._ctl_name(), create=True, size=_CTL_SIZE)
            _untrack(self._ctl)
            struct.pack_into("<QQ", self._ctl.buf, 0, _CTL_MAGIC, 0)
            self._write_generation(self._publish_locked(dict(initial or {})))
        else:
            self._ctl = shared_memory.SharedMemory(name=self._ctl_name())
            _untrack(self._ctl)
            magic, = struct.unpack_from("<Q", self._ctl.buf, 0)
            if magic != _CTL_MAGIC:
                raise ValueError(
                    f"shared segment {self._ctl_name()!r} is not a "
                    "SharedWeightStore control block"
                )

    def _ctl_name(self):
        return f"{self._ns}c"

    def _data_name(self, generation):
        return f"{self._ns}g{generation}"

    # -- the generation counter -------------------------------------------

    @property
    def generation(self):
        """The latest published generation (one shared 8-byte read)."""
        return struct.unpack_from("<Q", self._ctl.buf, 8)[0]

    def _write_generation(self, generation):
        struct.pack_into("<Q", self._ctl.buf, 8, generation)
        return generation

    # -- readers -----------------------------------------------------------

    def read(self):
        """``(generation, {name: read-only ndarray view})`` of the latest
        generation, mapped zero-copy from shared memory.

        Retries across the publish race (counter bumped between our read
        and the segment attach, old name already unlinked).
        """
        for _ in range(64):
            generation = self.generation
            cached = self._segments.get(generation)
            if cached is not None:
                return generation, cached[1]
            try:
                seg = shared_memory.SharedMemory(
                    name=self._data_name(generation))
            except FileNotFoundError:
                if self.generation == generation:
                    raise
                continue  # lost the race to a newer generation
            _untrack(seg)
            doc = wire.decode(seg.buf)
            self._segments[generation] = (seg, doc["weights"])
            self._prune(generation)
            return generation, doc["weights"]
        raise RuntimeError(
            f"SharedWeightStore {self._ns!r}: generation kept moving; "
            "publisher storm or corrupted control block"
        )

    def _prune(self, latest):
        """Unmap generations nobody should still be binding.

        A segment whose views are still referenced (an in-flight call's
        capture tuple) refuses to close with ``BufferError``; it is kept
        and retried on the next prune.
        """
        for generation in list(self._segments):
            if generation >= latest - 1:
                continue
            seg, _views = self._segments[generation]
            try:
                seg.close()
            except BufferError:
                continue
            del self._segments[generation]

    # -- publishers --------------------------------------------------------

    def publish(self, mapping):
        """Write ``mapping`` as the next generation and bump the counter.

        Returns the new generation number.  The full mapping replaces the
        previous generation (use :meth:`update` for partial swaps); the
        data segment lands complete *before* the counter moves, so a
        reader can never map a half-written generation.
        """
        if self._lock is not None:
            with self._lock:
                return self._write_generation(self._publish_locked(mapping))
        return self._write_generation(self._publish_locked(mapping))

    def update(self, partial):
        """Merge ``partial`` over the current weights into a new
        generation; unknown names raise ``KeyError``."""
        if self._lock is not None:
            with self._lock:
                return self._write_generation(self._update_locked(partial))
        return self._write_generation(self._update_locked(partial))

    def _update_locked(self, partial):
        _, current = self.read()
        merged = dict(current)
        for name, value in partial.items():
            if name not in merged:
                raise KeyError(
                    f"store {self._ns!r} has no capture named {name!r}; "
                    f"captures: {sorted(merged)}"
                )
            value = np.asarray(value, dtype=merged[name].dtype)
            if value.shape != merged[name].shape:
                raise ValueError(
                    f"Capture {name!r} expects shape {merged[name].shape}, "
                    f"got {value.shape}"
                )
            merged[name] = value
        return self._publish_locked(merged)

    def _publish_locked(self, mapping):
        generation = self.generation + 1
        payload = wire.encode(
            {"weights": {str(k): np.asarray(v) for k, v in mapping.items()}})
        seg = shared_memory.SharedMemory(
            name=self._data_name(generation), create=True,
            size=max(len(payload), 1))
        _untrack(seg)
        seg.buf[:len(payload)] = payload
        seg.close()
        # Bound the named set: by the time G lands, G-2 has no *new*
        # readers (they all see >= G-1); existing mappings stay alive.
        self._unlink_quietly(self._data_name(generation - 2))
        return generation

    # -- lifecycle ---------------------------------------------------------

    @staticmethod
    def _unlink_quietly(name):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        _untrack(seg)
        try:
            _unlink_segment(seg)
        finally:
            seg.close()

    def close(self):
        """Unmap everything this process attached (keeps the store
        published for other processes)."""
        for generation in list(self._segments):
            seg, _views = self._segments.pop(generation)
            try:
                seg.close()
            except BufferError:  # pragma: no cover - views still live
                pass
        try:
            self._ctl.close()
        except BufferError:  # pragma: no cover
            pass

    def unlink(self):
        """Tear the store's names out of the system (creator cleanup)."""
        generation = self.generation
        self.close()
        for g in (generation, generation - 1, generation - 2):
            if g > 0:
                self._unlink_quietly(self._data_name(g))
        self._unlink_quietly(self._ctl_name())

    def __repr__(self):
        return (f"<SharedWeightStore {self._ns!r} "
                f"generation={self.generation}>")
