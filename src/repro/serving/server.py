"""``ModelServer``: a threaded HTTP/JSON front over named executables.

Routes (JSON in, JSON out):

- ``GET /v1/models`` — every served signature: backend, input specs,
  batching configuration, request counts;
- ``GET /v1/models/<name>`` — one signature's metadata;
- ``POST /v1/models/<name>:predict`` with body ``{"inputs": [...]}`` —
  one value per signature entry (nested lists); responds
  ``{"outputs": [...], "backend": ...}`` with the flattened result
  leaves.

Each request is handled on its own thread
(``ThreadingHTTPServer``); signatures registered with ``batch=True``
funnel through a per-signature
:class:`~repro.serving.MicroBatcher`, so concurrent predict calls
coalesce into single batched executions.  For batched signatures the
request body carries a *single example* (no batch axis); unbatched
signatures receive their inputs verbatim.

The executables behind the routes are anything implementing the
backend-neutral protocol — live graph/lantern concrete functions or
loaded :func:`~repro.serving.saved_function.load` artifacts — which is
the point: one server, either backend, same wire format.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..framework import nest
from ..framework.eager.tensor import EagerTensor
from ..framework.errors import FrameworkError
from ..function.executable import resolve_executable
from ..function.tensor_spec import TensorSpec
from .batching import MicroBatcher

__all__ = ["ModelServer"]


class _Endpoint:
    __slots__ = ("name", "executable", "batcher", "batch_config", "requests")

    def __init__(self, name, executable, batch_config):
        self.name = name
        self.executable = executable
        # None = unbatched; otherwise MicroBatcher kwargs, kept so a
        # stopped-and-restarted server rebuilds an equivalent batcher.
        self.batch_config = batch_config
        self.batcher = (
            MicroBatcher(executable, **batch_config)
            if batch_config is not None else None
        )
        self.requests = 0

    def describe(self):
        info = {
            "backend": self.executable.backend,
            "signature": [
                repr(s) if isinstance(s, TensorSpec) else s
                for s in self.executable.signature
            ],
            "batching": self.batcher is not None,
            "requests": self.requests,
        }
        if self.batcher is not None:
            stats = self.batcher.stats
            info["batch_stats"] = {
                "batches": stats.batches,
                "requests": stats.requests,
                "max_batch_size": stats.max_batch_size,
            }
        return info


class ModelServer:
    """Serve named :class:`~repro.function.Executable` signatures.

    ::

        server = ModelServer()
        server.add_signature("score", model_fn, spec)   # traces if needed
        with server:                                     # start/stop
            reply = repro.serving.client.predict(
                server.url, "score", [[1.0, 2.0, 3.0, 4.0]])
    """

    def __init__(self, host="127.0.0.1", port=0):
        self._host = host
        self._port = port
        self._endpoints = {}
        self._httpd = None
        self._thread = None
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------

    def add_signature(self, name, fn, *args, batch=True, batch_axis=0,
                      max_batch_size=32, batch_timeout=0.002,
                      pad_value=None, **kwargs):
        """Route ``POST /v1/models/<name>:predict`` to ``fn``.

        Args:
          name: URL-visible signature name.
          fn: an :class:`~repro.function.Executable`, or a polymorphic
            :class:`~repro.function.Function` — then ``*args``/
            ``**kwargs`` (values or :class:`TensorSpec`s) select the
            signature, exactly like ``get_concrete_function``.
          batch: coalesce concurrent requests through a
            :class:`MicroBatcher`.  The executable must then be
            batch-polymorphic along ``batch_axis`` and each request
            carries one example without that axis.
          batch_axis / max_batch_size / batch_timeout / pad_value:
            :class:`MicroBatcher` knobs.

        Returns:
          The registered executable.
        """
        executable = resolve_executable(fn, args, kwargs, "add_signature")
        if name in self._endpoints:
            raise ValueError(f"Signature {name!r} is already registered")
        batch_config = None
        if batch:
            batch_config = {"batch_axis": batch_axis,
                            "max_batch_size": max_batch_size,
                            "batch_timeout": batch_timeout,
                            "pad_value": pad_value}
        self._endpoints[name] = _Endpoint(name, executable, batch_config)
        executable._mark_served(name)
        return executable

    # -- lifecycle ---------------------------------------------------------

    @property
    def url(self):
        if self._httpd is None:
            raise RuntimeError("ModelServer is not running")
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self):
        """Bind and serve on a daemon thread; returns the base URL."""
        if self._httpd is not None:
            raise RuntimeError("ModelServer is already running")
        # A restarted server gets fresh batchers (stop() drained the old
        # ones) so batched signatures stay batched across restarts.
        for endpoint in self._endpoints.values():
            if endpoint.batch_config is not None and endpoint.batcher is None:
                endpoint.batcher = MicroBatcher(
                    endpoint.executable, **endpoint.batch_config)
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-model-server",
            daemon=True)
        self._thread.start()
        return self.url

    def stop(self):
        """Shut the listener down and drain the batchers."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._thread.join()
            self._httpd = None
            self._thread = None
        for endpoint in self._endpoints.values():
            if endpoint.batcher is not None:
                endpoint.batcher.close()
                endpoint.batcher = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

    # -- request plumbing (called from handler threads) --------------------

    def _describe_all(self):
        return {
            "models": {
                name: ep.describe() for name, ep in self._endpoints.items()
            }
        }

    def _predict(self, name, body):
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(name)
        inputs = body.get("inputs")
        signature = endpoint.executable.signature
        if not isinstance(inputs, list) or len(inputs) != len(signature):
            raise ValueError(
                f"Body must carry 'inputs': a list of "
                f"{len(signature)} values (one per signature entry)"
            )
        values = []
        for value, spec in zip(inputs, signature):
            if isinstance(spec, TensorSpec):
                value = np.asarray(value, dtype=spec.dtype.np_dtype)
            values.append(value)
        with self._lock:
            endpoint.requests += 1
        # Snapshot: stop() may null the batcher under an in-flight
        # handler thread.  A drained batcher raises its own "closed"
        # error; an already-nulled one must NOT fall through to the
        # unbatched path (these values are single examples without the
        # batch axis).
        batcher = endpoint.batcher
        if batcher is not None:
            result = batcher.submit(values)
        elif endpoint.batch_config is not None:
            raise RuntimeError("ModelServer is stopping")
        else:
            result = endpoint.executable.call_flat(values)
        outputs = []
        for leaf in nest.flatten(result):
            if isinstance(leaf, EagerTensor):
                leaf = leaf.numpy()
            if isinstance(leaf, (np.ndarray, np.generic)):
                leaf = leaf.tolist()
            outputs.append(leaf)
        return {"outputs": outputs, "backend": endpoint.executable.backend}


def _make_handler(server):
    class _Handler(BaseHTTPRequestHandler):
        # Handler threads must not write to the test/benchmark console.
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _reply(self, status, payload):
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):  # noqa: N802 - http.server API
            if self.path == "/v1/models":
                self._reply(200, server._describe_all())
                return
            if self.path.startswith("/v1/models/"):
                name = self.path[len("/v1/models/"):]
                endpoint = server._endpoints.get(name)
                if endpoint is not None:
                    self._reply(200, {name: endpoint.describe()})
                    return
            self._reply(404, {"error": f"No route {self.path!r}"})

        def do_POST(self):  # noqa: N802 - http.server API
            if not (self.path.startswith("/v1/models/")
                    and self.path.endswith(":predict")):
                self._reply(404, {"error": f"No route {self.path!r}"})
                return
            name = self.path[len("/v1/models/"):-len(":predict")]
            try:
                length = int(self.headers.get("Content-Length", 0))
                body = json.loads(self.rfile.read(length) or b"{}")
                self._reply(200, server._predict(name, body))
            except KeyError:
                self._reply(404, {"error": f"No signature {name!r}"})
            except (ValueError, TypeError, FrameworkError) as e:
                self._reply(400, {"error": str(e)})
            except Exception as e:  # noqa: BLE001 - wire boundary
                self._reply(500, {"error": f"{type(e).__name__}: {e}"})

    return _Handler
