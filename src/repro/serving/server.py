"""``ModelServer``: an HTTP front over named executables.

Routes (JSON in/out by default; ``:predict`` and ``:swap_weights`` also
speak the binary tensor wire format — send
``Content-Type: application/x-repro-tensor`` bodies and/or
``Accept: application/x-repro-tensor`` to skip JSON tensor encoding
entirely, see :mod:`repro.serving.wire`):

- ``GET /v1/models`` — every served signature: backend, input specs,
  versions, batching configuration, canary split, request counts,
  latency stats and engine (bound-plan) info;
- ``GET /v1/models/<name>`` — one signature's metadata;
- ``GET /v1/metrics`` — the live :mod:`repro.observe` counter snapshot
  (engine, function-cache and serving counters) plus per-model request
  counts and latency stats; a fleet worker answers with the counters of
  *every* worker merged from the shared stats blocks;
- ``POST /v1/models/<name>:predict`` with body ``{"inputs": [...]}`` —
  one value per signature entry; responds ``{"outputs": [...],
  "backend": ..., "version": ...}`` with the flattened result leaves.
  An ``X-Repro-Priority: high`` header routes the request onto the
  batcher's high lane (drained first, shed last);
- ``POST /v1/models/<name>:swap_weights`` — live model management with
  **zero retraces**: body ``{"weights": {<capture>: values}}`` replaces
  the active version's capture values in place, body
  ``{"version": <label>}`` atomically activates another registered
  version, and both may be combined (swap then activate);
- ``POST /v1/models/<name>:canary`` with ``{"version", "fraction"}`` —
  split that fraction of predict traffic onto another registered
  version (``fraction: 0`` clears the split);
- ``DELETE /v1/models/<name>/versions/<version>`` — version GC: unload
  an *inactive* version (drains its batcher, drops its executable).

Every error reply carries one uniform envelope::

    {"error": {"code": <machine code>, "message": <human text>}}

with codes ``bad_request`` (400), ``not_found`` (404),
``active_version`` (409), ``unsupported_media_type`` (415),
``queue_full`` (503, with a ``Retry-After`` header) and ``internal``
(500); :class:`repro.serving.client.ServingClient` maps them back onto a
typed exception hierarchy.

Registration goes through one entry point::

    server.register(name, source, version=..., batcher=...)

where ``source`` is an :class:`~repro.function.Executable`, a
polymorphic :class:`~repro.function.Function` (select its signature with
``signature=(specs...)``), or a saved-artifact *path* (loaded via
:func:`~repro.serving.saved_function.load`).  Registering an existing
name adds a version; ``batcher=`` is ``None`` (default micro-batching),
``False`` (unbatched) or a dict of :class:`MicroBatcher` options.  The
older ``add_signature`` / ``add_version`` methods remain as deprecated
aliases.

Each request is handled on its own thread (``ThreadingHTTPServer``);
batched signatures funnel through a per-version
:class:`~repro.serving.MicroBatcher`, so concurrent predict calls
coalesce into single batched executions.  Load shedding is two-layered:
the batcher's ``max_queue`` bounds queued work per signature, and
``ModelServer(max_inflight=N)`` bounds concurrently executing predicts
per process — both reject with 503 + ``Retry-After`` instead of
queueing without limit.

A signature may serve several *versions* side by side — each version is
its own executable (and batcher), so activating one is a single
attribute rebind: in-flight requests finish on the version they started
on, later requests see the new one, and nothing retraces.  For a
multi-process front over the same routes, see
:class:`repro.serving.fleet.FleetServer`, which runs N prefork workers
(each one of these servers) behind a shared listening socket with
weights in shared memory.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import warnings
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..framework import nest
from ..framework.eager.tensor import EagerTensor
from ..framework.errors import FrameworkError
from ..function.executable import Executable, resolve_executable
from ..function.tensor_spec import TensorSpec
from ..observe.events import RECORDER as _REC
from . import wire
from .batching import MicroBatcher, QueueFullError

__all__ = ["ActiveVersionError", "ModelServer", "RETRY_AFTER_SECONDS"]


class ActiveVersionError(ValueError):
    """Refusal to garbage-collect the version currently serving traffic.

    Mapped to HTTP 409 (Conflict): activate another version first, then
    delete this one.
    """

# Latency window: enough samples for a stable p99 without unbounded
# growth under sustained traffic.
_LATENCY_WINDOW = 2048

#: Advised by 503 replies; load-shed clients should back off at least
#: this long before retrying.
RETRY_AFTER_SECONDS = 1

#: MicroBatcher options a ``batcher=`` dict may carry.
_BATCHER_KEYS = ("batch_axis", "max_batch_size", "batch_timeout",
                 "pad_value", "max_queue")

_DEFAULT_BATCHER = {"batch_axis": 0, "max_batch_size": 32,
                    "batch_timeout": 0.002, "pad_value": None,
                    "max_queue": None}


def error_envelope(code, message):
    """The one error body every route and status speaks."""
    return {"error": {"code": code, "message": str(message)}}


class _Version:
    """One registered executable version of an endpoint."""

    __slots__ = ("label", "executable", "batcher", "batch_config")

    def __init__(self, label, executable, batch_config):
        self.label = label
        self.executable = executable
        # None = unbatched; otherwise MicroBatcher kwargs, kept so a
        # stopped-and-restarted server rebuilds an equivalent batcher.
        self.batch_config = batch_config
        self.batcher = None

    def ensure_batcher(self):
        if self.batch_config is not None and self.batcher is None:
            self.batcher = MicroBatcher(self.executable, **self.batch_config)

    def close_batcher(self):
        if self.batcher is not None:
            self.batcher.close()
            self.batcher = None


class _Endpoint:
    __slots__ = ("name", "versions", "active", "canary", "requests",
                 "_lock", "_latencies", "_latency_count", "_latency_total")

    def __init__(self, name):
        self.name = name
        self.versions = {}
        self.active = None
        # (version label, fraction of predict traffic) or None.
        self.canary = None
        self.requests = 0
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=_LATENCY_WINDOW)
        self._latency_count = 0
        self._latency_total = 0.0

    def add_version(self, label, executable, batch_config, running):
        if label in self.versions:
            raise ValueError(
                f"Signature {self.name!r} already has a version {label!r}"
            )
        if self.versions:
            reference = next(iter(self.versions.values())).executable
            if len(executable.signature) != len(reference.signature):
                raise ValueError(
                    f"Version {label!r} of {self.name!r} takes "
                    f"{len(executable.signature)} arguments; existing "
                    f"versions take {len(reference.signature)}"
                )
        version = _Version(label, executable, batch_config)
        if running:
            version.ensure_batcher()
        self.versions[label] = version
        if self.active is None:
            self.active = label
        return version

    def activate(self, label):
        if label not in self.versions:
            raise KeyError(label)
        # One attribute rebind: requests snapshot the active version, so
        # the switch is atomic with respect to in-flight traffic.
        self.active = label

    def remove_version(self, label):
        if label not in self.versions:
            raise KeyError(
                f"{self.name!r} has no version {label!r}; registered: "
                f"{sorted(self.versions)}"
            )
        if label == self.active:
            raise ActiveVersionError(
                f"Version {label!r} of {self.name!r} is the active "
                "version; activate another version before removing it"
            )
        if self.canary is not None and self.canary[0] == label:
            self.canary = None
        return self.versions.pop(label)

    def active_version(self):
        return self.versions[self.active]

    def routed_version(self):
        """The version this predict request executes on: the canary
        version for its traffic fraction, the active version otherwise."""
        canary = self.canary
        if canary is not None and random.random() < canary[1]:
            version = self.versions.get(canary[0])
            if version is not None:
                return version
        return self.versions[self.active]

    def record_latency(self, seconds):
        with self._lock:
            self.requests += 1
            self._latencies.append(seconds)
            self._latency_count += 1
            self._latency_total += seconds

    def latency_stats(self):
        with self._lock:
            window = sorted(self._latencies)
            count, total = self._latency_count, self._latency_total
        if not window:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0}

        def pct(q):
            i = min(len(window) - 1, int(q * len(window)))
            return round(window[i] * 1e3, 3)

        return {
            "count": count,
            "mean_ms": round(total / count * 1e3, 3),
            "p50_ms": pct(0.50),
            "p99_ms": pct(0.99),
        }

    def describe(self):
        version = self.active_version()
        executable = version.executable
        info = {
            "backend": executable.backend,
            "signature": [
                repr(s) if isinstance(s, TensorSpec) else s
                for s in executable.signature
            ],
            "batching": version.batch_config is not None,
            "requests": self.requests,
            "latency": self.latency_stats(),
            "versions": sorted(self.versions),
            "active_version": self.active,
        }
        if self.canary is not None:
            info["canary"] = {"version": self.canary[0],
                              "fraction": self.canary[1]}
        engine_stats = getattr(executable, "engine_stats", None)
        if engine_stats is not None:
            info["engine"] = engine_stats()
        if version.batcher is not None:
            stats = version.batcher.stats
            info["batch_stats"] = {
                "batches": stats.batches,
                "requests": stats.requests,
                "max_batch_size": stats.max_batch_size,
                "rejected": stats.rejected,
                "high_priority": stats.high_priority,
            }
        return info


class ModelServer:
    """Serve named :class:`~repro.function.Executable` signatures.

    ::

        server = ModelServer()
        server.register("score", model_fn, signature=(spec,))
        server.register("score", model_fn_v2, signature=(spec,),
                        version="2")
        with server:                                     # start/stop
            client = repro.serving.ServingClient(server.url)
            reply = client.predict("score", [[1.0, 2.0, 3.0, 4.0]])
            client.swap_weights("score", version="2")
    """

    def __init__(self, host="127.0.0.1", port=0, max_inflight=None):
        """``max_inflight`` bounds concurrently *executing* predict
        requests in this process; requests over the bound shed with 503
        + ``Retry-After`` (``None`` = unbounded)."""
        self._host = host
        self._port = port
        self._endpoints = {}
        self._httpd = None
        self._thread = None
        self._swap_lock = threading.Lock()
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        self._max_inflight = max_inflight
        self._inflight_sem = (
            None if max_inflight is None
            else threading.BoundedSemaphore(max_inflight))

    # -- registration ------------------------------------------------------

    def register(self, name, source, *, signature=(), version="1",
                 activate=None, batcher=None):
        """The one registration entry point.

        Args:
          name: URL-visible signature name.  A new name creates the
            endpoint; an existing name registers another *version* of it.
          source: what to serve — an :class:`~repro.function.Executable`,
            a polymorphic :class:`~repro.function.Function` (its
            signature selected, and traced if needed, by ``signature=``),
            or a saved-artifact path (``str`` / ``os.PathLike``, loaded
            via :func:`~repro.serving.saved_function.load`).
          signature: positional specs/values selecting a Function's
            signature, exactly like ``get_concrete_function``.
          version: label for this version (default ``"1"``).
          activate: switch traffic to this version immediately.  Default
            (``None``): the first registered version of a name becomes
            active, later ones serve but do not take traffic.
          batcher: ``None`` — micro-batch with default settings;
            ``False`` — serve unbatched (requests carry full tensors);
            a dict — :class:`MicroBatcher` options
            (``batch_axis``, ``max_batch_size``, ``batch_timeout``,
            ``pad_value``, ``max_queue``) overriding the defaults.

        Returns:
          The registered executable.
        """
        if isinstance(source, (str, os.PathLike)):
            from .saved_function import load

            if signature:
                raise TypeError(
                    "register(path) takes no signature= (artifacts are "
                    "already one concrete signature)"
                )
            executable = load(source)
        elif isinstance(source, Executable):
            executable = resolve_executable(source, (), {}, "register")
        else:
            executable = resolve_executable(
                source, tuple(signature), {}, "register")
        return self._register_executable(
            name, executable, version=version, activate=activate,
            batch_config=self._batch_config(batcher))

    @staticmethod
    def _batch_config(batcher):
        if batcher is False:
            return None
        if batcher is None:
            return dict(_DEFAULT_BATCHER)
        if isinstance(batcher, dict):
            unknown = set(batcher) - set(_BATCHER_KEYS)
            if unknown:
                raise TypeError(
                    f"Unknown batcher option(s) {sorted(unknown)}; "
                    f"valid: {list(_BATCHER_KEYS)}"
                )
            return {**_DEFAULT_BATCHER, **batcher}
        raise TypeError(
            f"batcher must be None, False or a dict of MicroBatcher "
            f"options, got {type(batcher).__name__}"
        )

    def _register_executable(self, name, executable, *, version, activate,
                             batch_config):
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            endpoint = _Endpoint(name)
            self._endpoints[name] = endpoint
        endpoint.add_version(str(version), executable, batch_config,
                             running=self._httpd is not None)
        if activate:
            endpoint.activate(str(version))
        executable._mark_served(name)
        return executable

    def add_signature(self, name, fn, *args, batch=True, batch_axis=0,
                      max_batch_size=32, batch_timeout=0.002,
                      pad_value=None, max_queue=None, version="1", **kwargs):
        """Deprecated: use :meth:`register`.

        Kept as a thin alias (same semantics, including refusing an
        already-registered name).
        """
        warnings.warn(
            "ModelServer.add_signature is deprecated; use "
            "server.register(name, source, version=..., batcher=...)",
            DeprecationWarning, stacklevel=2)
        if name in self._endpoints:
            raise ValueError(f"Signature {name!r} is already registered")
        executable = resolve_executable(fn, args, kwargs, "add_signature")
        batch_config = None
        if batch:
            batch_config = {"batch_axis": batch_axis,
                            "max_batch_size": max_batch_size,
                            "batch_timeout": batch_timeout,
                            "pad_value": pad_value,
                            "max_queue": max_queue}
        return self._register_executable(
            name, executable, version=version, activate=None,
            batch_config=batch_config)

    def add_version(self, name, fn, *args, version, activate=False,
                    batch=True, batch_axis=0, max_batch_size=32,
                    batch_timeout=0.002, pad_value=None, max_queue=None,
                    **kwargs):
        """Deprecated: use :meth:`register` with an existing ``name``."""
        warnings.warn(
            "ModelServer.add_version is deprecated; use "
            "server.register(name, source, version=..., batcher=...)",
            DeprecationWarning, stacklevel=2)
        if name not in self._endpoints:
            raise KeyError(
                f"No signature {name!r}; register it first (register or "
                "add_signature)")
        executable = resolve_executable(fn, args, kwargs, "add_version")
        batch_config = None
        if batch:
            batch_config = {"batch_axis": batch_axis,
                            "max_batch_size": max_batch_size,
                            "batch_timeout": batch_timeout,
                            "pad_value": pad_value,
                            "max_queue": max_queue}
        return self._register_executable(
            name, executable, version=version, activate=activate,
            batch_config=batch_config)

    def remove_version(self, name, version):
        """Unload (garbage-collect) an *inactive* version of ``name``.

        The version's batcher is drained and its executable dropped from
        the registry — the memory GC story for long-lived servers that
        keep registering new versions.  The active version is refused
        with :class:`ActiveVersionError` (HTTP 409 over the wire):
        activate another version first, so traffic never loses its
        target.  A canary split pointing at the removed version is
        cleared.  Requests that snapshotted the version before removal
        finish on it; remove after traffic has drained off the version
        for a clean cut.

        Also exposed as ``DELETE /v1/models/<name>/versions/<version>``.
        """
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(f"No signature {name!r}")
        with self._swap_lock:
            removed = endpoint.remove_version(str(version))
        # Outside the lock: close() joins the worker thread, which may be
        # mid-batch; swaps/activations need not wait on that drain.
        removed.close_batcher()
        return {
            "model": name,
            "removed": removed.label,
            "versions": sorted(endpoint.versions),
            "active_version": endpoint.active,
        }

    def set_canary(self, name, version=None, fraction=0.0):
        """Split ``fraction`` of ``name``'s predict traffic onto
        ``version`` (the canary); ``fraction=0`` clears the split.

        Both versions keep serving: each predict draws once, executes on
        exactly one version (never a mix), and reports which in its
        ``"version"`` reply field — measuring the split, and the canary's
        behavior, is just counting replies.
        """
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(f"No signature {name!r}")
        try:
            fraction = float(fraction)
        except (TypeError, ValueError):
            raise ValueError(
                f"canary fraction must be a number in [0, 1], got "
                f"{fraction!r}") from None
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"canary fraction must be within [0, 1], got {fraction}"
            )
        with self._swap_lock:
            if fraction == 0.0:
                endpoint.canary = None
            else:
                if version is None:
                    raise ValueError(
                        "a nonzero canary fraction needs a version label"
                    )
                label = str(version)
                if label not in endpoint.versions:
                    raise ValueError(
                        f"{name!r} has no version {label!r}; registered: "
                        f"{sorted(endpoint.versions)}"
                    )
                endpoint.canary = (label, fraction)
        return {
            "model": name,
            "canary": None if endpoint.canary is None else
            {"version": endpoint.canary[0], "fraction": endpoint.canary[1]},
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def url(self):
        if self._httpd is None:
            raise RuntimeError("ModelServer is not running")
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def _ensure_batchers(self):
        # A restarted server gets fresh batchers (stop() drained the old
        # ones) so batched signatures stay batched across restarts.
        for endpoint in self._endpoints.values():
            for version in endpoint.versions.values():
                version.ensure_batcher()

    def start(self):
        """Bind and serve on a daemon thread; returns the base URL."""
        if self._httpd is not None:
            raise RuntimeError("ModelServer is already running")
        self._ensure_batchers()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-model-server",
            daemon=True)
        self._thread.start()
        return self.url

    def stop(self):
        """Shut the listener down and drain the batchers."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._thread.join()
            self._httpd = None
            self._thread = None
        for endpoint in self._endpoints.values():
            for version in endpoint.versions.values():
                version.close_batcher()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

    # -- fleet hooks (overridden by fleet workers) -------------------------

    def _sync_endpoint(self, name):
        """Pull fleet-shared state (active version, canary, weight
        generation) before touching ``name``; no-op standalone."""

    def _fleet_info(self):
        """Extra fleet-wide observability for ``GET /v1/models``."""
        return {}

    def _metrics_info(self):
        """Fleet hook: merged per-worker counters for ``/v1/metrics``."""
        return {}

    def _request_served(self):
        """Post-request hook (fleet workers publish stats here)."""

    # -- request plumbing (called from handler threads) --------------------

    def _describe_all(self):
        for name in self._endpoints:
            self._sync_endpoint(name)
        doc = {
            "models": {
                name: ep.describe() for name, ep in self._endpoints.items()
            }
        }
        doc.update(self._fleet_info())
        return doc

    def _metrics(self):
        """The ``GET /v1/metrics`` document: this process's live
        :mod:`repro.observe` counters (engine, function-cache, serving)
        plus per-model request counts and latency stats.  Fleet workers
        extend it with the merged per-worker view via
        :meth:`_metrics_info`."""
        doc = {
            "counters": _REC.counters(),
            "models": {
                name: {
                    "requests": ep.requests,
                    "latency": ep.latency_stats(),
                }
                for name, ep in self._endpoints.items()
            },
        }
        doc.update(self._metrics_info())
        return doc

    def _describe_one(self, name):
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(name)
        self._sync_endpoint(name)
        return {name: endpoint.describe()}

    def _predict(self, name, body, priority=None):
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(name)
        self._sync_endpoint(name)
        if priority is None:
            priority = "normal"
        started = time.perf_counter()
        # Snapshot the routed version once: a concurrent version swap (or
        # server stop) cannot hand this request half of each version.
        version = endpoint.routed_version()
        executable = version.executable
        inputs = body.get("inputs") if isinstance(body, dict) else None
        signature = executable.signature
        if not isinstance(inputs, list) or len(inputs) != len(signature):
            raise ValueError(
                f"Body must carry 'inputs': a list of "
                f"{len(signature)} values (one per signature entry)"
            )
        values = []
        for value, spec in zip(inputs, signature):
            if isinstance(spec, TensorSpec):
                # Binary-wire inputs arrive as correctly-typed ndarray
                # views and pass through asarray copy-free; JSON inputs
                # (nested lists) materialize here.
                value = np.asarray(value, dtype=spec.dtype.np_dtype)
            values.append(value)
        if self._inflight_sem is not None:
            if not self._inflight_sem.acquire(blocking=False):
                raise QueueFullError(
                    f"worker is at max_inflight={self._max_inflight} "
                    "concurrently executing requests; retry later"
                )
            try:
                result = self._execute(version, values, priority)
            finally:
                self._inflight_sem.release()
        else:
            result = self._execute(version, values, priority)
        outputs = []
        for leaf in nest.flatten(result):
            if isinstance(leaf, EagerTensor):
                leaf = leaf.numpy()
            outputs.append(leaf)
        endpoint.record_latency(time.perf_counter() - started)
        _REC.counter("serving.requests")
        _REC.counter(f"serving.requests.{name}")
        if _REC.enabled:
            _REC.end(f"predict:{name}", "request", started, {
                "model": name, "version": version.label,
                "priority": priority,
            })
        self._request_served()
        return {"outputs": outputs, "backend": executable.backend,
                "version": version.label}

    def _execute(self, version, values, priority):
        # Snapshot: stop() may null the batcher under an in-flight
        # handler thread.  A drained batcher raises its own "closed"
        # error; an already-nulled one must NOT fall through to the
        # unbatched path (these values are single examples without the
        # batch axis).
        batcher = version.batcher
        if batcher is not None:
            return batcher.submit(values, priority=priority)
        if version.batch_config is not None:
            raise RuntimeError("ModelServer is stopping")
        return version.executable.call_flat(values)

    def _swap_weights(self, name, body):
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(name)
        self._sync_endpoint(name)
        weights = body.get("weights")
        target = body.get("version")
        if weights is None and target is None:
            raise ValueError(
                "Body must carry 'weights' (capture name -> values) "
                "and/or 'version' (a registered version label)"
            )
        with self._swap_lock:
            swapped = []
            if weights is not None:
                if not isinstance(weights, dict):
                    raise ValueError("'weights' must map capture names to "
                                     "nested-list values")
                label = str(target) if target is not None else endpoint.active
                version = endpoint.versions.get(label)
                if version is None:
                    raise ValueError(
                        f"{name!r} has no version {label!r}; registered: "
                        f"{sorted(endpoint.versions)}"
                    )
                try:
                    self._apply_weights(name, label, version, weights)
                except KeyError as e:
                    raise ValueError(str(e)) from e
                swapped = sorted(weights)
            if target is not None:
                try:
                    self._activate(name, endpoint, str(target))
                except KeyError:
                    raise ValueError(
                        f"{name!r} has no version {target!r}; registered: "
                        f"{sorted(endpoint.versions)}"
                    ) from None
        self._request_served()
        return {
            "model": name,
            "active_version": endpoint.active,
            "swapped": swapped,
        }

    def _apply_weights(self, name, label, version, weights):
        """Swap one version's capture values (fleet workers override to
        publish into shared memory instead)."""
        # No dtype here: each backend casts to the capture's own dtype
        # (float32 would corrupt wider captures).
        version.executable.set_capture_values({
            k: np.asarray(v) for k, v in weights.items()
        })

    def _activate(self, name, endpoint, label):
        """Activate a version (fleet workers override to publish the
        label fleet-wide)."""
        endpoint.activate(label)

    def _set_canary_route(self, name, body):
        if not isinstance(body, dict):
            raise ValueError("Body must be an object with 'version' and "
                             "'fraction'")
        self._sync_endpoint(name)
        result = self.set_canary(name, body.get("version"),
                                 body.get("fraction", 0.0))
        self._request_served()
        return result


def _jsonify(value):
    """Make a reply JSON-encodable (ndarray leaves -> nested lists)."""
    if isinstance(value, (np.ndarray, np.generic)):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _make_handler(server):
    class _Handler(BaseHTTPRequestHandler):
        # Handler threads must not write to the test/benchmark console.
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _reply_bytes(self, status, data, content_type, headers=()):
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for key, value in headers:
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(data)

        def _reply(self, status, payload, headers=()):
            """JSON reply, or binary when the client accepts the tensor
            wire format (tensor leaves then skip ``tolist`` entirely)."""
            if status == 200 and self._accepts_binary():
                self._reply_bytes(status, wire.encode(payload),
                                  wire.CONTENT_TYPE, headers)
                return
            data = json.dumps(_jsonify(payload)).encode("utf-8")
            self._reply_bytes(status, data, "application/json", headers)

        def _accepts_binary(self):
            return wire.CONTENT_TYPE in (self.headers.get("Accept") or "")

        def _error(self, status, code, message):
            headers = ()
            if status == 503:
                headers = (("Retry-After", str(RETRY_AFTER_SECONDS)),)
            data = json.dumps(error_envelope(code, message)).encode("utf-8")
            self._reply_bytes(status, data, "application/json", headers)

        def _read_body(self):
            """Decode the request body per its Content-Type."""
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            ctype = (self.headers.get("Content-Type") or
                     "application/json").split(";")[0].strip().lower()
            if ctype == wire.CONTENT_TYPE:
                return wire.decode(raw)
            if ctype in ("", "application/json"):
                return json.loads(raw or b"{}")
            raise _UnsupportedMediaType(ctype)

        def do_GET(self):  # noqa: N802 - http.server API
            try:
                if self.path == "/v1/models":
                    self._reply(200, server._describe_all())
                    return
                if self.path == "/v1/metrics":
                    self._reply(200, server._metrics())
                    return
                if self.path.startswith("/v1/models/"):
                    name = self.path[len("/v1/models/"):]
                    self._reply(200, server._describe_one(name))
                    return
                self._error(404, "not_found", f"No route {self.path!r}")
            except KeyError:
                self._error(404, "not_found", f"No signature {name!r}")
            except Exception as e:  # noqa: BLE001 - wire boundary
                self._error(500, "internal", f"{type(e).__name__}: {e}")

        def do_POST(self):  # noqa: N802 - http.server API
            route = None
            for action in (":predict", ":swap_weights", ":canary"):
                if (self.path.startswith("/v1/models/")
                        and self.path.endswith(action)):
                    route = action
                    name = self.path[len("/v1/models/"):-len(action)]
                    break
            if route is None:
                self._error(404, "not_found", f"No route {self.path!r}")
                return
            try:
                body = self._read_body()
                if route == ":predict":
                    priority = self._priority()
                    self._reply(200, server._predict(name, body,
                                                     priority=priority))
                elif route == ":swap_weights":
                    self._reply(200, server._swap_weights(name, body))
                else:
                    self._reply(200, server._set_canary_route(name, body))
            except _UnsupportedMediaType as e:
                self._error(415, "unsupported_media_type",
                            f"Cannot decode Content-Type {e.args[0]!r}; "
                            f"send application/json or {wire.CONTENT_TYPE}")
            except KeyError:
                self._error(404, "not_found", f"No signature {name!r}")
            except QueueFullError as e:
                self._error(503, "queue_full", e)
            except ActiveVersionError as e:
                self._error(409, "active_version", e)
            except (wire.WireError, json.JSONDecodeError, ValueError,
                    TypeError, FrameworkError) as e:
                self._error(400, "bad_request", e)
            except Exception as e:  # noqa: BLE001 - wire boundary
                self._error(500, "internal", f"{type(e).__name__}: {e}")

        def _priority(self):
            priority = self.headers.get("X-Repro-Priority")
            if priority is None:
                return None
            priority = priority.strip().lower()
            if priority not in ("normal", "high"):
                raise ValueError(
                    f"X-Repro-Priority must be 'normal' or 'high', "
                    f"got {priority!r}"
                )
            return priority

        def do_DELETE(self):  # noqa: N802 - http.server API
            prefix = "/v1/models/"
            marker = "/versions/"
            if not (self.path.startswith(prefix) and marker in self.path):
                self._error(404, "not_found", f"No route {self.path!r}")
                return
            name, _, label = self.path[len(prefix):].partition(marker)
            try:
                self._reply(200, server.remove_version(name, label))
            except ActiveVersionError as e:
                self._error(409, "active_version", e)
            except KeyError as e:
                self._error(404, "not_found",
                            str(e.args[0]) if e.args
                            else f"No signature {name!r}")
            except Exception as e:  # noqa: BLE001 - wire boundary
                self._error(500, "internal", f"{type(e).__name__}: {e}")

    return _Handler


class _UnsupportedMediaType(Exception):
    """Internal: request body in a Content-Type we do not speak."""
