"""``ModelServer``: a threaded HTTP/JSON front over named executables.

Routes (JSON in, JSON out):

- ``GET /v1/models`` — every served signature: backend, input specs,
  versions, batching configuration, request counts and latency stats;
- ``GET /v1/models/<name>`` — one signature's metadata;
- ``POST /v1/models/<name>:predict`` with body ``{"inputs": [...]}`` —
  one value per signature entry (nested lists); responds
  ``{"outputs": [...], "backend": ..., "version": ...}`` with the
  flattened result leaves;
- ``POST /v1/models/<name>:swap_weights`` — live model management with
  **zero retraces**: body ``{"weights": {<capture>: values}}`` replaces
  the active version's capture values in place, body
  ``{"version": <label>}`` atomically activates another registered
  version, and both may be combined (swap then activate);
- ``DELETE /v1/models/<name>/versions/<version>`` — version GC: unload
  an *inactive* version (drains its batcher, drops its executable).
  Deleting the active version is refused with 409 — activate another
  version first.

Each request is handled on its own thread (``ThreadingHTTPServer``);
signatures registered with ``batch=True`` funnel through a per-version
:class:`~repro.serving.MicroBatcher`, so concurrent predict calls
coalesce into single batched executions.  For batched signatures the
request body carries a *single example* (no batch axis); unbatched
signatures receive their inputs verbatim.  ``max_queue=`` bounds the
per-version batch queue: requests arriving over the bound are rejected
with HTTP 503 instead of growing the queue without limit.

A signature may serve several *versions* side by side (``add_version``)
— each version is its own executable (and batcher), so activating one
is a single attribute rebind: in-flight requests finish on the version
they started on, later requests see the new one, and nothing retraces.

The executables behind the routes are anything implementing the
backend-neutral protocol — live graph/lantern concrete functions or
loaded :func:`~repro.serving.saved_function.load` artifacts — which is
the point: one server, either backend, same wire format.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..framework import nest
from ..framework.eager.tensor import EagerTensor
from ..framework.errors import FrameworkError
from ..function.executable import resolve_executable
from ..function.tensor_spec import TensorSpec
from .batching import MicroBatcher, QueueFullError

__all__ = ["ActiveVersionError", "ModelServer"]


class ActiveVersionError(ValueError):
    """Refusal to garbage-collect the version currently serving traffic.

    Mapped to HTTP 409 (Conflict): activate another version first, then
    delete this one.
    """

# Latency window: enough samples for a stable p99 without unbounded
# growth under sustained traffic.
_LATENCY_WINDOW = 2048


class _Version:
    """One registered executable version of an endpoint."""

    __slots__ = ("label", "executable", "batcher", "batch_config")

    def __init__(self, label, executable, batch_config):
        self.label = label
        self.executable = executable
        # None = unbatched; otherwise MicroBatcher kwargs, kept so a
        # stopped-and-restarted server rebuilds an equivalent batcher.
        self.batch_config = batch_config
        self.batcher = None

    def ensure_batcher(self):
        if self.batch_config is not None and self.batcher is None:
            self.batcher = MicroBatcher(self.executable, **self.batch_config)

    def close_batcher(self):
        if self.batcher is not None:
            self.batcher.close()
            self.batcher = None


class _Endpoint:
    __slots__ = ("name", "versions", "active", "requests", "_lock",
                 "_latencies", "_latency_count", "_latency_total")

    def __init__(self, name):
        self.name = name
        self.versions = {}
        self.active = None
        self.requests = 0
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=_LATENCY_WINDOW)
        self._latency_count = 0
        self._latency_total = 0.0

    def add_version(self, label, executable, batch_config, running):
        if label in self.versions:
            raise ValueError(
                f"Signature {self.name!r} already has a version {label!r}"
            )
        if self.versions:
            reference = next(iter(self.versions.values())).executable
            if len(executable.signature) != len(reference.signature):
                raise ValueError(
                    f"Version {label!r} of {self.name!r} takes "
                    f"{len(executable.signature)} arguments; existing "
                    f"versions take {len(reference.signature)}"
                )
        version = _Version(label, executable, batch_config)
        if running:
            version.ensure_batcher()
        self.versions[label] = version
        if self.active is None:
            self.active = label
        return version

    def activate(self, label):
        if label not in self.versions:
            raise KeyError(label)
        # One attribute rebind: requests snapshot the active version, so
        # the switch is atomic with respect to in-flight traffic.
        self.active = label

    def remove_version(self, label):
        if label not in self.versions:
            raise KeyError(
                f"{self.name!r} has no version {label!r}; registered: "
                f"{sorted(self.versions)}"
            )
        if label == self.active:
            raise ActiveVersionError(
                f"Version {label!r} of {self.name!r} is the active "
                "version; activate another version before removing it"
            )
        return self.versions.pop(label)

    def active_version(self):
        return self.versions[self.active]

    def record_latency(self, seconds):
        with self._lock:
            self.requests += 1
            self._latencies.append(seconds)
            self._latency_count += 1
            self._latency_total += seconds

    def latency_stats(self):
        with self._lock:
            window = sorted(self._latencies)
            count, total = self._latency_count, self._latency_total
        if not window:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0}

        def pct(q):
            i = min(len(window) - 1, int(q * len(window)))
            return round(window[i] * 1e3, 3)

        return {
            "count": count,
            "mean_ms": round(total / count * 1e3, 3),
            "p50_ms": pct(0.50),
            "p99_ms": pct(0.99),
        }

    def describe(self):
        version = self.active_version()
        executable = version.executable
        info = {
            "backend": executable.backend,
            "signature": [
                repr(s) if isinstance(s, TensorSpec) else s
                for s in executable.signature
            ],
            "batching": version.batch_config is not None,
            "requests": self.requests,
            "latency": self.latency_stats(),
            "versions": sorted(self.versions),
            "active_version": self.active,
        }
        if version.batcher is not None:
            stats = version.batcher.stats
            info["batch_stats"] = {
                "batches": stats.batches,
                "requests": stats.requests,
                "max_batch_size": stats.max_batch_size,
                "rejected": stats.rejected,
            }
        return info


class ModelServer:
    """Serve named :class:`~repro.function.Executable` signatures.

    ::

        server = ModelServer()
        server.add_signature("score", model_fn, spec)   # traces if needed
        server.add_version("score", model_fn_v2, spec, version="2")
        with server:                                     # start/stop
            reply = repro.serving.client.predict(
                server.url, "score", [[1.0, 2.0, 3.0, 4.0]])
            client.swap_weights(server.url, "score", version="2")
    """

    def __init__(self, host="127.0.0.1", port=0):
        self._host = host
        self._port = port
        self._endpoints = {}
        self._httpd = None
        self._thread = None
        self._swap_lock = threading.Lock()

    # -- registration ------------------------------------------------------

    def add_signature(self, name, fn, *args, batch=True, batch_axis=0,
                      max_batch_size=32, batch_timeout=0.002,
                      pad_value=None, max_queue=None, version="1", **kwargs):
        """Route ``POST /v1/models/<name>:predict`` to ``fn``.

        Args:
          name: URL-visible signature name.
          fn: an :class:`~repro.function.Executable`, or a polymorphic
            :class:`~repro.function.Function` — then ``*args``/
            ``**kwargs`` (values or :class:`TensorSpec`s) select the
            signature, exactly like ``get_concrete_function``.
          batch: coalesce concurrent requests through a
            :class:`MicroBatcher`.  The executable must then be
            batch-polymorphic along ``batch_axis`` and each request
            carries one example without that axis.
          batch_axis / max_batch_size / batch_timeout / pad_value:
            :class:`MicroBatcher` knobs.
          max_queue: per-signature queue bound — requests arriving while
            this many are already waiting get HTTP 503 (backpressure)
            instead of queueing without limit.  ``None`` = unbounded.
          version: label for this first registered version.

        Returns:
          The registered executable.
        """
        if name in self._endpoints:
            raise ValueError(f"Signature {name!r} is already registered")
        executable = resolve_executable(fn, args, kwargs, "add_signature")
        batch_config = None
        if batch:
            batch_config = {"batch_axis": batch_axis,
                            "max_batch_size": max_batch_size,
                            "batch_timeout": batch_timeout,
                            "pad_value": pad_value,
                            "max_queue": max_queue}
        endpoint = _Endpoint(name)
        endpoint.add_version(str(version), executable, batch_config,
                             running=self._httpd is not None)
        self._endpoints[name] = endpoint
        executable._mark_served(name)
        return executable

    def add_version(self, name, fn, *args, version, activate=False,
                    batch=True, batch_axis=0, max_batch_size=32,
                    batch_timeout=0.002, pad_value=None, max_queue=None,
                    **kwargs):
        """Register another executable version under an existing name.

        The new version serves immediately at
        ``POST /v1/models/<name>:swap_weights`` ``{"version": <label>}``
        time — it is compiled/loaded *now*, so activation later is a
        zero-retrace pointer swap.  ``activate=True`` switches to it
        right away.

        Returns:
          The registered executable.
        """
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(f"No signature {name!r}; add_signature it first")
        executable = resolve_executable(fn, args, kwargs, "add_version")
        batch_config = None
        if batch:
            batch_config = {"batch_axis": batch_axis,
                            "max_batch_size": max_batch_size,
                            "batch_timeout": batch_timeout,
                            "pad_value": pad_value,
                            "max_queue": max_queue}
        endpoint.add_version(str(version), executable, batch_config,
                             running=self._httpd is not None)
        if activate:
            endpoint.activate(str(version))
        executable._mark_served(name)
        return executable

    def remove_version(self, name, version):
        """Unload (garbage-collect) an *inactive* version of ``name``.

        The version's batcher is drained and its executable dropped from
        the registry — the memory GC story for long-lived servers that
        keep registering new versions.  The active version is refused
        with :class:`ActiveVersionError` (HTTP 409 over the wire):
        activate another version first, so traffic never loses its
        target.  Requests that snapshotted the version before removal
        finish on it; remove after traffic has drained off the version
        for a clean cut.

        Also exposed as ``DELETE /v1/models/<name>/versions/<version>``.
        """
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(f"No signature {name!r}")
        with self._swap_lock:
            removed = endpoint.remove_version(str(version))
        # Outside the lock: close() joins the worker thread, which may be
        # mid-batch; swaps/activations need not wait on that drain.
        removed.close_batcher()
        return {
            "model": name,
            "removed": removed.label,
            "versions": sorted(endpoint.versions),
            "active_version": endpoint.active,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def url(self):
        if self._httpd is None:
            raise RuntimeError("ModelServer is not running")
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self):
        """Bind and serve on a daemon thread; returns the base URL."""
        if self._httpd is not None:
            raise RuntimeError("ModelServer is already running")
        # A restarted server gets fresh batchers (stop() drained the old
        # ones) so batched signatures stay batched across restarts.
        for endpoint in self._endpoints.values():
            for version in endpoint.versions.values():
                version.ensure_batcher()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-model-server",
            daemon=True)
        self._thread.start()
        return self.url

    def stop(self):
        """Shut the listener down and drain the batchers."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._thread.join()
            self._httpd = None
            self._thread = None
        for endpoint in self._endpoints.values():
            for version in endpoint.versions.values():
                version.close_batcher()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

    # -- request plumbing (called from handler threads) --------------------

    def _describe_all(self):
        return {
            "models": {
                name: ep.describe() for name, ep in self._endpoints.items()
            }
        }

    def _predict(self, name, body):
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(name)
        started = time.perf_counter()
        # Snapshot the active version once: a concurrent version swap (or
        # server stop) cannot hand this request half of each version.
        version = endpoint.active_version()
        executable = version.executable
        inputs = body.get("inputs")
        signature = executable.signature
        if not isinstance(inputs, list) or len(inputs) != len(signature):
            raise ValueError(
                f"Body must carry 'inputs': a list of "
                f"{len(signature)} values (one per signature entry)"
            )
        values = []
        for value, spec in zip(inputs, signature):
            if isinstance(spec, TensorSpec):
                value = np.asarray(value, dtype=spec.dtype.np_dtype)
            values.append(value)
        # Snapshot: stop() may null the batcher under an in-flight
        # handler thread.  A drained batcher raises its own "closed"
        # error; an already-nulled one must NOT fall through to the
        # unbatched path (these values are single examples without the
        # batch axis).
        batcher = version.batcher
        if batcher is not None:
            result = batcher.submit(values)
        elif version.batch_config is not None:
            raise RuntimeError("ModelServer is stopping")
        else:
            result = executable.call_flat(values)
        outputs = []
        for leaf in nest.flatten(result):
            if isinstance(leaf, EagerTensor):
                leaf = leaf.numpy()
            if isinstance(leaf, (np.ndarray, np.generic)):
                leaf = leaf.tolist()
            outputs.append(leaf)
        endpoint.record_latency(time.perf_counter() - started)
        return {"outputs": outputs, "backend": executable.backend,
                "version": version.label}

    def _swap_weights(self, name, body):
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(name)
        weights = body.get("weights")
        target = body.get("version")
        if weights is None and target is None:
            raise ValueError(
                "Body must carry 'weights' (capture name -> values) "
                "and/or 'version' (a registered version label)"
            )
        with self._swap_lock:
            swapped = []
            if weights is not None:
                if not isinstance(weights, dict):
                    raise ValueError("'weights' must map capture names to "
                                     "nested-list values")
                label = str(target) if target is not None else endpoint.active
                version = endpoint.versions.get(label)
                if version is None:
                    raise ValueError(
                        f"{name!r} has no version {label!r}; registered: "
                        f"{sorted(endpoint.versions)}"
                    )
                try:
                    # No dtype here: each backend casts to the capture's
                    # own dtype (float32 would corrupt wider captures).
                    version.executable.set_capture_values({
                        k: np.asarray(v) for k, v in weights.items()
                    })
                except KeyError as e:
                    raise ValueError(str(e)) from e
                swapped = sorted(weights)
            if target is not None:
                try:
                    endpoint.activate(str(target))
                except KeyError:
                    raise ValueError(
                        f"{name!r} has no version {target!r}; registered: "
                        f"{sorted(endpoint.versions)}"
                    ) from None
        return {
            "model": name,
            "active_version": endpoint.active,
            "swapped": swapped,
        }


def _make_handler(server):
    class _Handler(BaseHTTPRequestHandler):
        # Handler threads must not write to the test/benchmark console.
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _reply(self, status, payload):
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):  # noqa: N802 - http.server API
            if self.path == "/v1/models":
                self._reply(200, server._describe_all())
                return
            if self.path.startswith("/v1/models/"):
                name = self.path[len("/v1/models/"):]
                endpoint = server._endpoints.get(name)
                if endpoint is not None:
                    self._reply(200, {name: endpoint.describe()})
                    return
            self._reply(404, {"error": f"No route {self.path!r}"})

        def do_POST(self):  # noqa: N802 - http.server API
            route = None
            for action in (":predict", ":swap_weights"):
                if (self.path.startswith("/v1/models/")
                        and self.path.endswith(action)):
                    route = action
                    name = self.path[len("/v1/models/"):-len(action)]
                    break
            if route is None:
                self._reply(404, {"error": f"No route {self.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                body = json.loads(self.rfile.read(length) or b"{}")
                if route == ":predict":
                    self._reply(200, server._predict(name, body))
                else:
                    self._reply(200, server._swap_weights(name, body))
            except KeyError:
                self._reply(404, {"error": f"No signature {name!r}"})
            except QueueFullError as e:
                self._reply(503, {"error": str(e)})
            except (ValueError, TypeError, FrameworkError) as e:
                self._reply(400, {"error": str(e)})
            except Exception as e:  # noqa: BLE001 - wire boundary
                self._reply(500, {"error": f"{type(e).__name__}: {e}"})

        def do_DELETE(self):  # noqa: N802 - http.server API
            prefix = "/v1/models/"
            marker = "/versions/"
            if not (self.path.startswith(prefix) and marker in self.path):
                self._reply(404, {"error": f"No route {self.path!r}"})
                return
            name, _, label = self.path[len(prefix):].partition(marker)
            try:
                self._reply(200, server.remove_version(name, label))
            except ActiveVersionError as e:
                self._reply(409, {"error": str(e)})
            except KeyError as e:
                self._reply(404, {"error": str(e.args[0]) if e.args
                                  else f"No signature {name!r}"})
            except Exception as e:  # noqa: BLE001 - wire boundary
                self._reply(500, {"error": f"{type(e).__name__}: {e}"})

    return _Handler
