"""Benchmark harness matching the paper's measurement protocol.

The paper reports mean ± std over N timed runs after W warm-up runs
(§9: "Five warm-up runs were executed, and the mean and standard
deviation of the 100 following runs are reported").  ``measure``
implements exactly that; sizes/run-counts scale down via the
``REPRO_BENCH_FAST`` environment variable so the suite stays runnable in
constrained environments.
"""

from __future__ import annotations

import os
import time

import numpy as np

__all__ = ["measure", "BenchResult", "fast_mode", "scaled", "print_table"]


def fast_mode():
    """True when REPRO_BENCH_FAST is set: tiny sizes, few runs."""
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def scaled(normal, fast):
    """Pick a parameter by mode."""
    return fast if fast_mode() else normal


class BenchResult:
    """Mean/std of per-run wall time, plus derived throughputs."""

    def __init__(self, times, label=""):
        self.times = np.asarray(times, dtype=np.float64)
        self.label = label

    @property
    def mean(self):
        return float(self.times.mean())

    @property
    def std(self):
        return float(self.times.std())

    def throughput(self, units_per_run):
        """(mean, std) of units/sec across runs (e.g. examples/sec)."""
        rates = units_per_run / self.times
        return float(rates.mean()), float(rates.std())

    def __repr__(self):
        return f"BenchResult({self.label!r}, mean={self.mean:.6f}s, std={self.std:.6f}s)"


def measure(fn, warmup=None, runs=None, label=""):
    """Time ``fn`` with the paper's warm-up + timed-runs protocol."""
    if warmup is None:
        warmup = scaled(5, 1)
    if runs is None:
        runs = scaled(20, 3)
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return BenchResult(times, label=label)


def print_table(title, headers, rows):
    """Print a paper-style results table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()
