"""Elementwise fusion: collapse chains/trees of ufunc steps into one
``exec``-compiled composite kernel.

The planner's wavefront levels (PR 6) fan *independent* chains across
workers, but every step inside a chain is still one Python dispatch with
its own freshly allocated intermediate.  This pass deletes that per-step
overhead: maximal groups of fusable steps — elementwise ufunc kernels
flagged via :attr:`OpDef.fusable <repro.framework.registry.OpDef>`
whose intermediates are single-consumer and not fetched — are rewritten
into ONE generated Python closure that evaluates the whole expression in
a single step dispatch, chaining the raw NumPy ufuncs (the
mapping-table idiom: op type → compiled primitive) with ``out=``
scratch reuse, so a k-op chain costs 1 dispatch and ≤2 live
temporaries instead of k dispatches and k buffers.

**Group discovery.**  An edge producer→consumer fuses when both steps
are candidates (fusable, single-output, attr- and control-free) and the
producer's output has exactly one consumer occurrence and is not
fetched.  Every member's out-degree inside the group is therefore ≤ 1,
so each connected component is a tree converging on exactly one root;
no member except the root is visible outside the group, and the fused
step simply takes the root's place in topological order (the root is
the group's last step, so every external input is already produced and
every external consumer still follows).  Level assignment then derives
the fused step's wavefront from its external inputs exactly as it
would have for the root — independent fused chains keep landing in the
same level and fan out across ``BlockScheduler`` workers.

**Scratch reuse is proof-carrying, not guarded.**  ``out=`` is only
emitted where the runtime dtype AND shape of both the dying temporary
and the new result are *guaranteed* at compile time, by propagating
trust from the group's external inputs:

- bound feeds are coerced to their declared dtype and exact-checked
  against fully-defined declared shapes by every execution front
  (``BoundPlan``, ``Session.run``), so those are trusted;
- pre-evaluated constants are baked arrays whose dtype/shape are known
  exactly (scalar Consts fold inline as closure defaults — zero
  per-call locator reads);
- outputs of non-fused producer steps are *untrusted* — static
  inference may diverge from what a kernel really returns — so reuse
  sites downstream of them fall back to plain allocating calls.

Result dtypes are derived by evaluating the actual ufunc on 0-d dummies
of the trusted input dtypes (never the registry's optimistic
``dtype_fn``), and shapes by ``np.broadcast_shapes`` — so a fused plan
is bit-identical to the unfused one by construction: same ufuncs, same
operands, same evaluation order, and ``out=`` never changes a value or
forces a cast.

**Donation composes.**  The generated closure allocates its result (or
reuses an intra-call temporary), so a fused step's output is
``fresh_output`` — a legal donation target for downstream kernels.  A
second generated variant writes the root result into a caller-provided
``out=`` buffer; it is alias-*tolerant* (the only external-buffer
write is the final elementwise ufunc call, where NumPy permits ``out``
to alias an equal-shaped operand), so fused steps join the same
dying-input buffer-reuse discipline as single ufunc steps, and the
``execute_flat(donate=True)`` feed-donation pass sees fused steps'
reads when computing feed liveness.
"""

from __future__ import annotations

import numpy as np

from ..framework.registry import OpDef
from ..observe.events import RECORDER as _REC

__all__ = ["fuse_elementwise_steps"]

#: Cap on op names spelled out in a fused step's span name; longer
#: groups truncate (``fused[add+mul+tanh+exp+neg+7more]``) so profiler
#: kernel names stay readable and stable.
_NAME_CAP = 6


class _FusedOp:
    """An op-shaped record for a fused composite step.

    Quacks like :class:`~repro.framework.graph.graph.Operation` exactly
    as far as the planner's later passes read one: ``op_def`` carries
    the generated kernels and donation metadata, ``inputs``/``outputs``
    expose the *external* input tensors (aligned with the fused step's
    locators) and the root's output tensor for dtype/shape pools, and
    ``member_ids`` lets level computation resolve control dependencies
    other ops may hold on any fused-away member.
    """

    __slots__ = ("op_def", "attrs", "inputs", "outputs", "control_inputs",
                 "name", "member_ids", "member_types")

    def __init__(self, op_def, inputs, outputs, name, member_ids,
                 member_types):
        self.op_def = op_def
        self.attrs = {}
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.control_inputs = ()
        self.name = name
        self.member_ids = member_ids
        self.member_types = member_types


def _span_name(types):
    """The stable ``fused[add+mul+tanh]``-style step/span name."""
    parts = [t.lower() for t in types]
    if len(parts) > _NAME_CAP:
        parts = parts[:_NAME_CAP - 1] + [f"{len(parts) - _NAME_CAP + 1}more"]
    return f"fused[{'+'.join(parts)}]"


def _result_dtype(ufunc, in_dtypes):
    """The dtype ``ufunc`` really produces for these input dtypes —
    found by evaluating it on 0-d dummies (NumPy's own promotion, not
    the registry's optimistic inference).  ``None`` when any input
    dtype is untrusted or the dummy evaluation refuses."""
    if any(dt is None for dt in in_dtypes):
        return None
    try:
        return ufunc(*(np.ones((), dt) for dt in in_dtypes)).dtype
    except Exception:
        return None


def _result_shape(in_shapes):
    if any(s is None for s in in_shapes):
        return None
    try:
        return tuple(np.broadcast_shapes(*in_shapes))
    except ValueError:
        return None


def _candidates(steps, step_ops):
    """Indices of steps eligible to join a fused group.

    Steps that hold control dependencies — or are *targets* of another
    step's control dependency — stay standalone: fusing would move a
    member's execution to the group root's position, and the level
    pass assumes control edges always point backwards in step order.
    """
    control_targets = {
        id(c) for op in step_ops for c in op.control_inputs
    }
    out = set()
    for i, op in enumerate(step_ops):
        od = op.op_def
        if od.fusable is None or od.num_outputs != 1 or od.stateful:
            continue
        if op.control_inputs or id(op) in control_targets:
            continue
        if any(not k.startswith("_") for k in op.attrs):
            continue
        out.add(i)
    return out


class _Union:
    __slots__ = ("parent",)

    def __init__(self):
        self.parent = {}

    def find(self, x):
        p = self.parent.setdefault(x, x)
        while p != self.parent[p]:
            self.parent[p] = self.parent[self.parent[p]]
            p = self.parent[p]
        self.parent[x] = p
        return p

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _codegen(group, steps, step_ops, const_slots, base_values, feed_info):
    """Generate one group's composite kernel and its ``out=`` donation
    variant.  Returns ``(kernel, inplace_kernel, ext_locators,
    ext_tensors)``."""
    member_set = set(group)
    produced = {steps[m][0]: m for m in group}
    root = group[-1]

    params = []           # external locators, first-use order
    param_of = {}         # locator -> generated name (params AND consts)
    namespace = {"__builtins__": {}}
    kw_names = []         # closure defaults: ufuncs + inlined consts
    trust = {}            # value name -> (dtype | None, shape | None)
    var_of = {}           # member index -> result variable name
    lines = []
    root_call_args = None
    root_fname = None
    n_temps = 0
    n_consts = 0

    for m in group:
        op = step_ops[m]
        ufunc = op.op_def.fusable
        fname = f"_f{m}"
        namespace[fname] = ufunc
        kw_names.append(fname)
        args, arg_dtypes, arg_shapes = [], [], []
        for loc in steps[m][2]:
            p = produced.get(loc[0]) if loc[1] == 0 else None
            if p is not None and p in member_set:
                name = var_of[p]
            elif loc[1] == 0 and loc[0] in const_slots:
                name = param_of.get(loc)
                if name is None:
                    baked = base_values[loc[0]][0]
                    name = f"_c{n_consts}"
                    n_consts += 1
                    param_of[loc] = name
                    namespace[name] = baked
                    kw_names.append(name)
                    trust[name] = (baked.dtype, baked.shape)
            else:
                name = param_of.get(loc)
                if name is None:
                    name = f"p{len(params)}"
                    param_of[loc] = name
                    params.append(loc)
                    trust[name] = feed_info.get(loc, (None, None))
            dt, sh = trust[name]
            args.append(name)
            arg_dtypes.append(dt)
            arg_shapes.append(sh)
        out_dt = _result_dtype(ufunc, arg_dtypes)
        out_sh = _result_shape(arg_shapes)

        # A dying intra-call temporary with exactly the result's
        # dtype/shape may carry the result: its single consumer is this
        # very call, and these ufuncs permit ``out`` aliasing an
        # equal-shaped operand.  0-d results are excluded — ufuncs
        # return *scalars* there, which ``out=`` refuses.
        reuse = None
        if out_dt is not None and out_sh is not None and out_sh != ():
            for loc, name in zip(steps[m][2], args):
                p = produced.get(loc[0]) if loc[1] == 0 else None
                if p is None or p not in member_set:
                    continue
                if trust[name] == (out_dt, out_sh):
                    reuse = name
                    break

        if m == root:
            root_call_args = list(args)
            root_fname = fname
            tail = f", out={reuse})" if reuse is not None else ")"
            lines.append(f"return {fname}({', '.join(args)}{tail}")
            break
        if reuse is not None:
            var = reuse
            lines.append(f"{var} = {fname}({', '.join(args)}, out={var})")
        else:
            var = f"t{n_temps}"
            n_temps += 1
            lines.append(f"{var} = {fname}({', '.join(args)})")
        var_of[m] = var
        trust[var] = (out_dt, out_sh)

    param_names = [param_of[loc] for loc in params]
    defaults = ", ".join(f"{n}={n}" for n in kw_names)
    header = ", ".join(param_names + [f"*, {defaults}"])
    src = f"def _fused({header}):\n    " + "\n    ".join(lines) + "\n"
    exec(compile(src, "<repro.fuse>", "exec"), namespace)
    kernel = namespace.pop("_fused")

    # The donation variant: identical interior, but the root ufunc
    # writes into the caller-provided ``out`` buffer (the planner only
    # arms this with a dying same-dtype/shape input under the
    # alias-tolerant discipline — the final elementwise write happens
    # after every other read of that buffer).
    out_lines = list(lines)
    out_lines[-1] = (
        f"return {root_fname}({', '.join(root_call_args)}, out=out)")
    out_header = ", ".join(param_names + ["*", "out", defaults])
    out_src = (f"def _fused_out({out_header}):\n    "
               + "\n    ".join(out_lines) + "\n")
    ns2 = dict(namespace)
    exec(compile(out_src, "<repro.fuse>", "exec"), ns2)
    inplace_kernel = ns2.pop("_fused_out")

    ext_tensors = _external_tensors(group, steps, step_ops, params)
    return kernel, inplace_kernel, tuple(params), ext_tensors


def _external_tensors(group, steps, step_ops, params):
    """The first graph tensor seen for each external locator, in param
    order (the donation passes ``zip(op.inputs, step_locators)``)."""
    by_loc = {}
    for m in group:
        for t, loc in zip(step_ops[m].inputs, steps[m][2]):
            by_loc.setdefault(loc, t)
    return [by_loc[loc] for loc in params]


def fuse_elementwise_steps(steps, step_ops, fetch_locators, feed_slots,
                           const_slots, base_values):
    """Rewrite fused groups of ``steps``; returns ``(steps, step_ops,
    fused_groups)``.

    ``fused_groups`` is a tuple of ``(span_name, member_op_names,
    member_op_types, slot)`` records kept on the plan for observability
    (:meth:`ExecutionPlan.describe`).  Emits ``runtime.fused_steps``
    (composite steps created) and ``runtime.fusion_fallbacks`` (fusable
    steps left standalone) counters — both accumulate whether or not
    event recording is enabled, feeding ``/v1/metrics``.
    """
    cand = _candidates(steps, step_ops)
    if not cand:
        return steps, step_ops, ()

    consumers = {}
    for s in steps:
        for loc in s[2]:
            consumers[loc] = consumers.get(loc, 0) + 1
    fetched = set(fetch_locators)
    producer = {s[0]: i for i, s in enumerate(steps)}

    uf = _Union()
    for i in cand:
        for loc in steps[i][2]:
            if loc[1] != 0:
                continue
            p = producer.get(loc[0])
            if (p is None or p not in cand
                    or consumers.get(loc, 0) != 1 or loc in fetched):
                continue
            uf.union(p, i)

    groups = {}
    for i in cand:
        groups.setdefault(uf.find(i), []).append(i)
    fused = sorted(sorted(g) for g in groups.values() if len(g) >= 2)
    n_standalone = len(cand) - sum(len(g) for g in fused)
    if n_standalone:
        _REC.counter("runtime.fusion_fallbacks", n_standalone)
    if not fused:
        return steps, step_ops, ()
    _REC.counter("runtime.fused_steps", len(fused))

    # Trusted per-feed runtime metadata: the binder coerces a declared
    # dtype and exact-checks a fully-defined declared shape.
    feed_info = {}
    for t, slot in feed_slots:
        dt = t.dtype.np_dtype
        feed_info[(slot, 0)] = (
            np.dtype(dt) if dt is not None else None,
            t.shape.as_tuple() if t.shape.is_fully_defined else None,
        )

    replaced = {}   # root (= last member) index -> (fused step, shim)
    absorbed = set()
    fused_groups = []
    for group in fused:
        kernel, inplace_kernel, ext_locs, ext_tensors = _codegen(
            group, steps, step_ops, const_slots, base_values, feed_info)
        types = tuple(step_ops[m].type for m in group)
        names = tuple(step_ops[m].name for m in group)
        span = _span_name(types)
        root = group[-1]
        root_slot = steps[root][0]
        op_def = OpDef(span, kernel, num_outputs=1,
                       inplace_kernel=inplace_kernel, fresh_output=True)
        shim = _FusedOp(
            op_def,
            inputs=ext_tensors,
            outputs=[step_ops[root].outputs[0]],
            name=span,
            member_ids=tuple(id(step_ops[m]) for m in group),
            member_types=types,
        )
        # The fused step takes the ROOT's position: the root is the
        # group's topologically last member, so every external input is
        # produced earlier and every external consumer follows.
        replaced[root] = (
            [root_slot, kernel, ext_locs, True, span, None], shim)
        absorbed.update(group)
        fused_groups.append((span, names, types, root_slot))

    new_steps, new_ops = [], []
    for i, (s, op) in enumerate(zip(steps, step_ops)):
        if i in replaced:
            fs, shim = replaced[i]
            new_steps.append(fs)
            new_ops.append(shim)
        elif i not in absorbed:
            new_steps.append(s)
            new_ops.append(op)
    return new_steps, new_ops, tuple(fused_groups)
