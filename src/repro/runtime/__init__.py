"""``repro.runtime``: the shared, backend-neutral execution engine.

Every consumer of a compiled graph — ``Session.run``'s feed-dict
compatibility path, traced ``ConcreteFunction`` calls, loaded serving
artifacts, and the micro-batcher's batched dispatch — executes through
this one package:

- :mod:`repro.runtime.plan` compiles a graph + fetches + feeds into an
  :class:`ExecutionPlan` (pruned topo steps, slot locators, feed/fetch
  slot tables) with constant pre-evaluation, dead-step elision and
  output-buffer reuse;
- :mod:`repro.runtime.engine` provides :class:`BoundPlan` — the
  positional **fast path** that binds feed tensors to slots once and
  executes per call with no dict lookups, no per-call flattening and no
  validation copies — plus the bounded LRU :class:`PlanCache`.

The paper's Table 2 isolates per-call dispatch overhead as the cost
in-graph execution amortizes; this package is where that overhead is
engineered out for the function-call and serving hot paths.
"""

from .engine import (
    DEFAULT_PLAN_CACHE_SIZE,
    BoundPlan,
    CacheStats,
    PlanCache,
)
from .plan import ExecutionPlan, compile_plan

__all__ = [
    "BoundPlan",
    "CacheStats",
    "DEFAULT_PLAN_CACHE_SIZE",
    "ExecutionPlan",
    "PlanCache",
    "compile_plan",
]
