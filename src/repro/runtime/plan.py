"""``ExecutionPlan``: the compiled form of one ``(graph, fetches, feeds)``.

This is the execution engine's IR — lifted out of ``Session`` so that the
session, traced ``ConcreteFunction``s, loaded serving artifacts and the
micro-batcher all compile against one planner instead of re-deriving
fetch/feed plumbing per layer.

A plan is a pruned, topologically-ordered list of *steps* (kernel +
pre-resolved value-slot locators), a slot table for feeds, and locators
for the fetches.  Compilation also performs the plan-level optimizations
that make the per-call path as close to "a loop over kernels" as Python
allows (the Table-2 dispatch-overhead story):

- **constant pre-evaluation** — stateless ops whose inputs are all
  compile-time constants execute *once* at compile time; their values are
  baked into the plan's base slot values and their steps disappear;
- **dead-step elision** — only ops the fetches (or their control deps)
  reach are compiled at all;
- **output-buffer reuse** — a step whose kernel advertises an in-place
  variant (``OpDef.inplace_kernel``) may write its result into the buffer
  of a single-consumer intermediate input (alias-tolerant ufuncs), or —
  for ``inplace_no_alias`` kernels like ``MatMul`` — into any
  intermediate buffer that is provably dead before the step runs, in
  both serial and level-parallel execution order; donated buffers are
  never feeds (caller-owned), baked constants (shared across calls) or
  fetches (returned to the caller);
- **elementwise fusion** (``fuse=True``) — maximal chains/trees of
  fusable ufunc steps whose intermediates are single-consumer and not
  fetched collapse into one ``exec``-compiled composite kernel
  (:mod:`repro.runtime.fusion`), so a k-op chain costs one step
  dispatch instead of k.  Constant pre-evaluation runs *first*, so a
  chain split by a foldable ``Const`` subtree still fuses end to end.

Compilation also derives the plan's **levels**: a wavefront partition of
the steps by data/control dependency depth (stateful steps additionally
chained in program order).  Steps within one level are mutually
independent, which is what lets :meth:`ExecutionPlan.execute` fan a
level out on a :class:`repro.blocks.scheduler.BlockScheduler` — the
per-block steps of a blocked plan all land in wide levels.

Plans are executed either through :meth:`ExecutionPlan.execute` on a
bound values list (the ``Session.run`` compatibility path) or through
:class:`repro.runtime.engine.BoundPlan`'s positional fast path.
"""

from __future__ import annotations

import functools

import numpy as np

from ..framework.errors import ExecutionError, FetchError
from ..framework.graph.graph import Operation, Tensor
from ..framework.graph.optimize import has_opaque_attrs
from ..observe.events import RECORDER as _REC
from .fusion import fuse_elementwise_steps

__all__ = ["ExecutionPlan", "compile_plan"]


class ExecutionPlan:
    """A pruned, topologically-ordered, slot-resolved execution plan.

    Attributes:
      steps: ``(slot, kernel, locators, single, op_name, inplace)``
        tuples; ``inplace`` is ``None`` or a buffer-donation record
        ``(donor_slot, donor_index, inplace_kernel, out_shape, out_dtype)``.
      fetch_locators: ``(slot, output_index)`` per flat fetch (``(-1, 0)``
        for ``None`` fetches).
      feed_slots: ``(tensor, slot)`` per feed tensor, in feed order.
      n_slots: total number of value slots (op slots + feed slots).
      base_values: length-``n_slots`` template with pre-evaluated constant
        slots filled; every execution starts from a shallow copy.
      levels: wavefront partition of step indices — steps in one level
        are mutually independent (data, control and stateful-order
        dependencies all land in earlier levels).
      donate_steps: ``None``, or an alternate ``steps`` tuple in which
        some ``inplace_no_alias`` steps additionally write into dead
        *feed* buffers — the opt-in ``execute(..., donate=True)`` path
        (the caller relinquishes its input arrays for the call).
      donated_feed_slots: the feed slots ``donate_steps`` writes into;
        the binder runtime-checks those buffers before opting in.
      fused_groups: ``(span_name, member_op_names, member_op_types,
        slot)`` per fused composite step (empty when compiled with
        ``fuse=False`` or nothing fused).
      refs: strong references to the fetch/feed objects this plan was
        compiled for.  Cache keys contain ``id()``s; holding the objects
        guarantees CPython cannot recycle those ids into *different*
        tensors while a cache entry is alive.
    """

    __slots__ = ("steps", "fetch_locators", "feed_slots", "n_slots",
                 "base_values", "graph", "graph_version", "levels",
                 "donate_steps", "donated_feed_slots", "fused_groups",
                 "refs")

    def __init__(self, steps, fetch_locators, feed_slots, n_slots,
                 base_values, graph, graph_version, levels=(),
                 donate_steps=None, donated_feed_slots=(), fused_groups=(),
                 refs=()):
        self.steps = steps
        self.fetch_locators = fetch_locators
        self.feed_slots = feed_slots
        self.n_slots = n_slots
        self.base_values = base_values
        self.graph = graph
        self.graph_version = graph_version
        self.levels = levels
        self.donate_steps = donate_steps
        self.donated_feed_slots = donated_feed_slots
        self.fused_groups = fused_groups
        self.refs = refs

    # -- execution ---------------------------------------------------------

    def new_values(self):
        """A fresh per-call slot array (constants already in place)."""
        return list(self.base_values)

    def execute(self, values, scheduler=None, donate=False):
        """Run every step against ``values`` (feeds already bound).

        With a parallel ``scheduler`` the steps run level by level,
        each level's independent steps fanned out on the scheduler's
        worker pool (slot stores into distinct indices of ``values``
        are safe under the GIL; the kernels release it).

        ``donate=True`` runs :attr:`donate_steps` instead — the caller
        asserts the donated feed buffers are writeable and exclusively
        owned for this call (:meth:`BoundPlan.execute_flat
        <repro.runtime.engine.BoundPlan.execute_flat>` verifies this
        before opting in).
        """
        steps = self.steps
        if donate and self.donate_steps is not None:
            steps = self.donate_steps
        if _REC.enabled:
            return self._execute_traced(values, scheduler, steps)
        if scheduler is not None and scheduler.parallel and len(steps) > 1:
            run = self._run_step
            for level in self.levels:
                if len(level) == 1:
                    run(steps[level[0]], values)
                else:
                    scheduler.map(
                        lambda i, _s=steps, _v=values: run(_s[i], _v),
                        level)
            return values
        for slot, kernel, locators, single, op_name, inplace in steps:
            try:
                args = [values[j][k] for j, k in locators]
                if inplace is not None:
                    dj, dk, ikernel, out_shape, out_dtype = inplace
                    buf = values[dj][dk]
                    # Static shapes/dtypes matched at compile time; this
                    # cheap runtime guard protects against kernels whose
                    # actual output metadata diverged from inference.
                    if (type(buf) is np.ndarray and buf.shape == out_shape
                            and buf.dtype == out_dtype):
                        try:
                            out = ikernel(*args, out=buf)
                        except (TypeError, ValueError):
                            # The ufunc refused the out= cast (static
                            # dtype inference was optimistic); NumPy
                            # rejects before writing, so fall back clean.
                            out = kernel(*args)
                    else:
                        out = kernel(*args)
                else:
                    out = kernel(*args)
            except ExecutionError:
                raise
            except Exception as e:
                raise ExecutionError(
                    f"Error executing op {op_name!r}: {e}", op_name=op_name
                ) from e
            values[slot] = (out,) if single else tuple(out)
        return values

    def _run_step(self, step, values):
        """One step of the level-parallel path (same semantics as the
        inlined serial loop body, which stays unrolled for call speed)."""
        slot, kernel, locators, single, op_name, inplace = step
        try:
            args = [values[j][k] for j, k in locators]
            if inplace is not None:
                dj, dk, ikernel, out_shape, out_dtype = inplace
                buf = values[dj][dk]
                if (type(buf) is np.ndarray and buf.shape == out_shape
                        and buf.dtype == out_dtype):
                    try:
                        out = ikernel(*args, out=buf)
                    except (TypeError, ValueError):
                        out = kernel(*args)
                else:
                    out = kernel(*args)
            else:
                out = kernel(*args)
        except ExecutionError:
            raise
        except Exception as e:
            raise ExecutionError(
                f"Error executing op {op_name!r}: {e}", op_name=op_name
            ) from e
        values[slot] = (out,) if single else tuple(out)

    def _execute_traced(self, values, scheduler, steps):
        """The recording twin of :meth:`execute`: one ``"step"`` span
        per executed step (named after the op, so the profiler's
        top-kernels view aggregates directly) and — on the parallel
        path — one ``"level"`` span per wavefront.  Lives off to the
        side so the untraced loops stay branch-free inside."""
        rec = _REC
        run = self._run_step_traced
        t_plan = rec.begin()
        try:
            if (scheduler is not None and scheduler.parallel
                    and len(steps) > 1):
                for ln, level in enumerate(self.levels):
                    t0 = rec.begin()
                    if len(level) == 1:
                        run(steps[level[0]], values)
                    else:
                        scheduler.map(
                            lambda i, _s=steps, _v=values: run(_s[i], _v),
                            level)
                    rec.end(f"level[{ln}]", "level", t0,
                            {"steps": len(level)})
            else:
                for step in steps:
                    run(step, values)
        finally:
            rec.end("plan.execute", "plan", t_plan,
                    {"steps": len(steps)})
        return values

    def _run_step_traced(self, step, values):
        rec = _REC
        t0 = rec.begin()
        try:
            self._run_step(step, values)
        finally:
            rec.end(step[4], "step", t0, {"slot": step[0]})

    def fetch(self, values):
        """The flat fetch results out of an executed ``values`` array."""
        return [
            values[j][k] if j >= 0 else None for j, k in self.fetch_locators
        ]

    def run_flat(self, values):
        """Execute and fetch in one call."""
        self.execute(values)
        return self.fetch(values)

    def describe(self):
        """A human-readable plan dump: steps, levels, fused groups and
        donation arms — the debugging aid for "what did the planner
        actually compile?".  Stable enough to grep in tests, cheap
        enough to print from a REPL."""
        fused_by_slot = {g[3]: g for g in self.fused_groups}
        lines = [
            f"ExecutionPlan: {len(self.steps)} steps in "
            f"{len(self.levels)} levels, {self.n_slots} slots, "
            f"{len(self.feed_slots)} feeds, "
            f"{len(self.fetch_locators)} fetches, "
            f"{len(self.fused_groups)} fused"
        ]
        level_of = {}
        for ln, level in enumerate(self.levels):
            for i in level:
                level_of[i] = ln
        for i, (slot, _kernel, locators, _single, name, inplace) in (
                enumerate(self.steps)):
            ins = ", ".join(f"{j}:{k}" for j, k in locators)
            line = (f"  [{i}] L{level_of.get(i, 0)} slot={slot} "
                    f"{name}({ins})")
            if inplace is not None:
                line += f" inplace<-slot{inplace[0]}"
            g = fused_by_slot.get(slot)
            if g is not None and name == g[0]:
                line += f" members=[{', '.join(g[1])}]"
            lines.append(line)
        if self.donate_steps is not None:
            lines.append(
                "  donate variant writes feed slots "
                f"{list(self.donated_feed_slots)}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"<ExecutionPlan steps={len(self.steps)} "
                f"feeds={len(self.feed_slots)} "
                f"fetches={len(self.fetch_locators)} slots={self.n_slots}>")


def _resolve_fetch_tensors(graph, flat_fetches):
    """Map user-level fetches (tensors/ops/Variables/None) to tensors."""
    fetch_tensors = []
    for f in flat_fetches:
        if isinstance(f, Tensor):
            if f.graph is not graph:
                raise FetchError(f"Fetch {f.name!r} is not in this session's graph")
            fetch_tensors.append(f)
        elif isinstance(f, Operation):
            if f.graph is not graph:
                raise FetchError(f"Fetch {f.name!r} is not in this session's graph")
            fetch_tensors.append(f.outputs[0] if f.outputs else None)
        elif f is None:
            fetch_tensors.append(None)
        else:
            # Variables fetch their read value.
            from ..framework.graph.variables import Variable

            if isinstance(f, Variable):
                fetch_tensors.append(f.value())
            else:
                raise FetchError(
                    f"Cannot fetch object of type {type(f).__name__}: {f!r}"
                )
    return fetch_tensors


def compile_plan(graph, flat_fetches, feed_tensors, *, fuse=True):
    """Compile an :class:`ExecutionPlan` for ``graph``.

    Args:
      graph: the graph to execute.
      flat_fetches: flat list of fetches — ``Tensor``/``Operation``/
        ``Variable``/``None``.
      feed_tensors: the placeholder (or intermediate) tensors whose
        values the caller will supply per call, in slot-binding order.
      fuse: collapse chains/trees of fusable elementwise steps into
        ``exec``-compiled composite kernels (:mod:`repro.runtime.fusion`).
        ``False`` compiles the plain one-step-per-op plan — the A/B
        lever for measuring what fusion buys.

    Raises:
      FetchError: on foreign-graph fetches/feeds, unfetchable objects, or
        a required placeholder missing from ``feed_tensors``.
    """
    feed_tensors = list(feed_tensors)
    fed_ids = {id(t) for t in feed_tensors}
    for t in feed_tensors:
        if not isinstance(t, Tensor) or t.graph is not graph:
            raise FetchError(f"Feed key {t!r} is not a tensor of this graph")

    fetch_tensors = _resolve_fetch_tensors(graph, flat_fetches)

    # Reverse reachability from fetches, stopping at fed tensors.
    needed = []
    seen = set()
    stack = [t.op for t in fetch_tensors if t is not None and id(t) not in fed_ids]
    while stack:
        op = stack.pop()
        if id(op) in seen:
            continue
        seen.add(id(op))
        needed.append(op)
        for t in op.inputs:
            if id(t) in fed_ids:
                continue
            if id(t.op) not in seen:
                stack.append(t.op)
        for c in op.control_inputs:
            if id(c) not in seen:
                stack.append(c)

    # Topological order by creation index (graphs append in topo order;
    # control inputs always reference earlier ops).
    order = {id(op): i for i, op in enumerate(graph.ops)}
    needed.sort(key=lambda op: order[id(op)])

    slot_of = {id(op): i for i, op in enumerate(needed)}
    n_slots = len(needed)
    feed_slots = []
    feed_slot_of = {}
    for t in feed_tensors:
        feed_slot_of[id(t)] = n_slots
        feed_slots.append((t, n_slots))
        n_slots += 1

    def locator(tensor):
        if id(tensor) in feed_slot_of:
            return (feed_slot_of[id(tensor)], 0)
        return (slot_of[id(tensor.op)], tensor.value_index)

    # -- step emission with constant pre-evaluation ------------------------
    base_values = [None] * n_slots
    # Slots whose base value is baked (shared across calls; never donate).
    const_slots = set()
    steps = []
    step_ops = []  # parallel to steps, for the buffer-reuse pass

    for op in needed:
        if op.type == "Placeholder":
            if id(op.outputs[0]) not in feed_slot_of:
                raise FetchError(
                    f"Placeholder {op.name!r} is required by the fetches but "
                    "was not fed"
                )
            continue
        slot = slot_of[id(op)]
        locators = tuple(locator(t) for t in op.inputs)
        runtime_attrs = {
            k: v for k, v in op.attrs.items() if not k.startswith("_")
        }
        kernel = op.op_def.kernel
        if runtime_attrs:
            kernel = functools.partial(kernel, **runtime_attrs)

        # Constant pre-evaluation: a stateless op whose inputs are all
        # already-baked constants runs once, now, and sheds its step.
        # Ops carrying subgraph attrs (Cond/While) or control inputs are
        # conservatively left live.
        if (not op.op_def.stateful
                and not op.control_inputs
                and not has_opaque_attrs(op)
                and all(j < len(needed) and j in const_slots
                        for j, _ in locators)):
            if op.type == "Const":
                base_values[slot] = (_bake(op.attrs["value"]),)
                const_slots.add(slot)
                continue
            if op.op_def.num_outputs == 1:
                try:
                    out = kernel(*[base_values[j][k] for j, k in locators])
                except Exception:
                    out = _DEFER  # kernel failed: surface the error at run time
                if out is not _DEFER and isinstance(
                        out, (np.ndarray, np.generic, int, float, bool)):
                    base_values[slot] = (_bake(out),)
                    const_slots.add(slot)
                    continue

        steps.append([slot, kernel, locators, op.op_def.num_outputs == 1,
                      op.name, None])
        step_ops.append(op)

    fetch_locators = []
    for t in fetch_tensors:
        if t is None:
            fetch_locators.append((-1, 0))
        else:
            fetch_locators.append(locator(t))

    # Elementwise fusion runs after constant pre-evaluation (so folded
    # Const subtrees never split a fusable chain) and needs the fetch
    # locators (fetched intermediates block fusion edges), but before
    # level/donation assignment, which must see the *fused* steps.
    fused_groups = ()
    if fuse:
        steps, step_ops, fused_groups = fuse_elementwise_steps(
            steps, step_ops, fetch_locators, feed_slots, const_slots,
            base_values)

    step_levels, levels = _compute_levels(steps, step_ops)
    _assign_buffer_reuse(steps, step_ops, fetch_locators, const_slots,
                         len(needed), step_levels)
    donate_steps, donated_feed_slots = _assign_feed_donations(
        steps, step_ops, feed_slots, fetch_locators, step_levels)

    return ExecutionPlan(
        tuple(tuple(s) for s in steps),
        tuple(fetch_locators),
        tuple(feed_slots),
        n_slots,
        base_values,
        graph,
        graph.version,
        levels=levels,
        donate_steps=donate_steps,
        donated_feed_slots=donated_feed_slots,
        fused_groups=fused_groups,
    )


def _compute_levels(steps, step_ops):
    """Dependency-depth wavefronts over the emitted steps.

    A step's level is one past the deepest level among (a) the steps
    producing its input slots, (b) the steps its op holds control
    dependencies on, and (c) — for stateful ops — the previous stateful
    step, so side effects keep their program order even when levels run
    in parallel.  Returns ``(per-step levels, tuple of index tuples)``.
    """
    producer = {s[0]: i for i, s in enumerate(steps)}
    # Fused composite steps answer for every member op they absorbed,
    # so control dependencies held on a fused-away op still resolve.
    index_of_op = {}
    for i, op in enumerate(step_ops):
        for mid in getattr(op, "member_ids", None) or (id(op),):
            index_of_op[mid] = i
    level = [0] * len(steps)
    last_stateful = None
    for i, (s, op) in enumerate(zip(steps, step_ops)):
        lv = 0
        for j, _k in s[2]:
            p = producer.get(j)
            if p is not None and level[p] >= lv:
                lv = level[p] + 1
        for c in op.control_inputs:
            p = index_of_op.get(id(c))
            if p is not None and level[p] >= lv:
                lv = level[p] + 1
        if op.op_def.stateful:
            if last_stateful is not None and level[last_stateful] >= lv:
                lv = level[last_stateful] + 1
            last_stateful = i
        level[i] = lv
    buckets = [[] for _ in range((max(level) + 1) if level else 0)]
    for i, lv in enumerate(level):
        buckets[lv].append(i)
    return level, tuple(tuple(b) for b in buckets)


_DEFER = object()


def _bake(value):
    """A private, read-only copy of a pre-evaluated constant.

    Baked values are *shared by every execution* of the plan (and handed
    to callers when fetched), so they must be immune to in-place
    mutation: a caller doing ``out += 1`` on a fetched result must get a
    loud ``read-only`` error, never silently corrupt later calls.  The
    copy also decouples the plan from the graph's own ``Const`` attr
    arrays.
    """
    arr = np.asarray(value).copy()
    arr.setflags(write=False)
    return arr


def _assign_buffer_reuse(steps, step_ops, fetch_locators, const_slots,
                         n_op_slots, step_levels):
    """Mark steps that may write their output into a reusable buffer.

    A donated buffer must be produced by an executed step of this plan
    whose kernel *allocates* its result (``OpDef.fresh_output``) — never
    a feed (the caller owns that array), a baked constant (shared across
    calls), or the output of an alias-returning kernel like ``Identity``
    or a variable read (writing into those would corrupt caller arrays
    or live state) — and never a fetch (the caller receives it).  The
    in-place variant's output shape/dtype must be statically known and
    match the donor exactly.  Two donation disciplines:

    - **alias-tolerant** kernels (ufuncs) take a dying *input*: a buffer
      this step is the sole consumer of, written while being read;
    - **no-alias** kernels (``inplace_no_alias``, e.g. BLAS ``MatMul``)
      take any intermediate that is provably dead before the step runs —
      its last consumer finishing earlier both in serial step order
      *and* in level order, so the level-parallel path can never be
      writing it concurrently.

    Each buffer is donated at most once (the ``claimed`` set): after
    donation it carries the donee's output, which later steps may read.
    """
    donatable = {}
    for i, (s, op) in enumerate(zip(steps, step_ops)):
        if op.op_def.fresh_output:
            for k in range(op.op_def.num_outputs):
                donatable[(s[0], k)] = i

    consumers = {}
    last_use = {}
    for i, s in enumerate(steps):
        for loc in s[2]:
            consumers[loc] = consumers.get(loc, 0) + 1
            li, ll = last_use.get(loc, (-1, -1))
            last_use[loc] = (max(li, i), max(ll, step_levels[i]))
    fetched = set(fetch_locators)

    # Dead-buffer pool for no-alias kernels: donatable intermediates
    # keyed by (dtype, shape), each tagged with the last (index, level)
    # at which anything touches the buffer.
    pool = {}
    for s, op in zip(steps, step_ops):
        for k, t in enumerate(op.outputs):
            loc = (s[0], k)
            if loc not in donatable or loc in fetched:
                continue
            if loc[0] in const_slots or loc[0] >= n_op_slots:
                continue
            if t.dtype.np_dtype is None or not t.shape.is_fully_defined:
                continue
            pi = donatable[loc]
            li, ll = last_use.get(loc, (-1, -1))
            entry = (max(li, pi), max(ll, step_levels[pi]), loc)
            pool.setdefault(
                (np.dtype(t.dtype.np_dtype), t.shape.as_tuple()), []
            ).append(entry)
    for entries in pool.values():
        entries.sort()

    claimed = set()
    for i, (s, op) in enumerate(zip(steps, step_ops)):
        ikernel = op.op_def.inplace_kernel
        if ikernel is None or not s[3]:
            continue
        runtime_attrs = {
            k: v for k, v in op.attrs.items() if not k.startswith("_")
        }
        if runtime_attrs:
            ikernel = functools.partial(ikernel, **runtime_attrs)
        out_t = op.outputs[0]
        out_dtype = out_t.dtype.np_dtype
        if out_dtype is None or not out_t.shape.is_fully_defined:
            continue
        out_shape = out_t.shape.as_tuple()

        if op.op_def.inplace_no_alias:
            lv = step_levels[i]
            for li, ll, loc in pool.get(
                    (np.dtype(out_dtype), out_shape), ()):
                if li >= i or ll >= lv:
                    continue
                if loc in claimed:
                    continue
                s[5] = (loc[0], loc[1], ikernel, out_shape,
                        np.dtype(out_dtype))
                claimed.add(loc)
                break
            continue

        for t, loc in zip(op.inputs, s[2]):
            if loc not in donatable or loc[0] in const_slots:
                continue
            if loc[0] >= n_op_slots:  # a feed slot
                continue
            if consumers.get(loc, 0) != 1 or loc in fetched or loc in claimed:
                continue
            if t.dtype.np_dtype != out_dtype:
                continue
            if not t.shape.is_fully_defined or t.shape.as_tuple() != out_shape:
                continue
            s[5] = (loc[0], loc[1], ikernel, out_shape, np.dtype(out_dtype))
            claimed.add(loc)
            break


def _assign_feed_donations(steps, step_ops, feed_slots, fetch_locators,
                           step_levels):
    """The opt-in *feed-buffer* donation variant of the plan's steps.

    :func:`_assign_buffer_reuse` never touches feed slots — the caller
    owns those arrays.  But a caller that explicitly opts in
    (``execute_flat(args, donate=True)``) relinquishes its input
    buffers for the call, so an ``inplace_no_alias`` step that found no
    intermediate donor may instead write into a *feed* that is dead by
    the time the step runs, under exactly the discipline the dead-pool
    pass uses: the feed's last consumer finishes strictly earlier in
    both serial step order and level order, the feed is not itself
    fetched, shapes/dtypes match exactly, and each buffer is claimed
    once.  Steals-from-the-caller semantics make this compile-time-safe
    but *call-time conditional*: the binder still verifies at each call
    that every donated buffer is a writeable ndarray not aliased by
    another argument, and falls back to the normal steps otherwise.

    Returns ``(donate_steps, donated_feed_slots)`` — ``(None, ())``
    when no step could be armed, so plans without donation
    opportunities carry no extra tuple.
    """
    fetched = set(fetch_locators)
    last_use = {}
    for i, s in enumerate(steps):
        for loc in s[2]:
            li, ll = last_use.get(loc, (-1, -1))
            last_use[loc] = (max(li, i), max(ll, step_levels[i]))

    pool = {}
    for t, slot in feed_slots:
        loc = (slot, 0)
        if loc in fetched:
            continue
        if t.dtype.np_dtype is None or not t.shape.is_fully_defined:
            continue
        li, ll = last_use.get(loc, (-1, -1))
        pool.setdefault(
            (np.dtype(t.dtype.np_dtype), t.shape.as_tuple()), []
        ).append((li, ll, loc))
    for entries in pool.values():
        entries.sort()

    donate_steps = [list(s) for s in steps]
    donated = []
    claimed = set()
    for i, (s, op) in enumerate(zip(donate_steps, step_ops)):
        # Only steps the intermediate-reuse pass left unarmed, and only
        # the no-alias discipline: an alias-tolerant ufunc reading the
        # feed it writes would still be correct, but a *dead* feed is
        # the only case where donating beats the existing reuse.
        if s[5] is not None or not s[3]:
            continue
        ikernel = op.op_def.inplace_kernel
        if ikernel is None or not op.op_def.inplace_no_alias:
            continue
        runtime_attrs = {
            k: v for k, v in op.attrs.items() if not k.startswith("_")
        }
        if runtime_attrs:
            ikernel = functools.partial(ikernel, **runtime_attrs)
        out_t = op.outputs[0]
        out_dtype = out_t.dtype.np_dtype
        if out_dtype is None or not out_t.shape.is_fully_defined:
            continue
        out_shape = out_t.shape.as_tuple()
        lv = step_levels[i]
        for li, ll, loc in pool.get((np.dtype(out_dtype), out_shape), ()):
            if li >= i or ll >= lv or loc in claimed:
                continue
            s[5] = (loc[0], loc[1], ikernel, out_shape, np.dtype(out_dtype))
            claimed.add(loc)
            donated.append(loc[0])
            break
    if not donated:
        return None, ()
    return tuple(tuple(s) for s in donate_steps), tuple(sorted(donated))
