"""The execution engine's call-side surfaces: positional binding + cache.

Two pieces live here:

- :class:`BoundPlan` — the **slot-addressed fast path**.  A consumer that
  always feeds the same tensors in the same order (a traced
  ``ConcreteFunction``, a loaded serving artifact, the micro-batcher's
  batched dispatch) binds those tensors to plan slots *once*, at
  construction.  Each call is then ``execute_flat(args)``: a list copy of
  the plan's base values, one slot store per argument, and the kernel
  loop — no ``nest.flatten``, no cache-key construction, no feed dict, no
  per-feed ``np.array(..., copy=True)``.  Arguments that are already
  correctly-dtyped ndarrays are used as-is (dtype/shape metadata was
  resolved at bind time); anything else is coerced through
  ``np.asarray``.

- :class:`PlanCache` — a bounded (LRU) cache of compiled plans with
  hit/miss/eviction counters, used by ``Session`` so long-lived servers
  compiling many fetch sets don't grow without limit.

Evicting a plan is safe even though cache keys contain ``id()``s: a
recycled id can only be *served stale* on a cache hit, and a hit requires
the entry — whose ``refs`` keep the original tensors alive — to still be
in the cache.
"""

from __future__ import annotations

import collections
import threading

import numpy as np

from ..framework.errors import FetchError
from ..observe.events import RECORDER as _REC

__all__ = ["BoundPlan", "CacheStats", "PlanCache", "DEFAULT_PLAN_CACHE_SIZE"]


#: Default bound for per-session plan caches.  128 plans comfortably
#: covers every (fetches, feeds) pair a server or test suite touches
#: while capping memory for signature-churning workloads.
DEFAULT_PLAN_CACHE_SIZE = 128


class BoundPlan:
    """An :class:`~repro.runtime.plan.ExecutionPlan` bound to a fixed
    positional argument order."""

    __slots__ = ("plan", "scheduler", "calls", "_arg_binds", "_n_args",
                 "_donor_args")

    def __init__(self, plan, arg_tensors, scheduler=None):
        """Bind ``arg_tensors`` (the plan's feed tensors, in the order
        ``execute_flat`` will receive their values) to plan slots.

        Validation work that does not depend on per-call values — slot
        resolution, dtype lookup, static-shape extraction — happens here,
        once.  ``scheduler`` (a :class:`repro.blocks.BlockScheduler`)
        turns on level-parallel step execution; ``None`` keeps the serial
        kernel loop.
        """
        slot_of = {id(t): slot for t, slot in plan.feed_slots}
        binds = []
        for t in arg_tensors:
            slot = slot_of.pop(id(t), None)
            if slot is None:
                raise FetchError(
                    f"Cannot bind {t!r}: not an unbound feed of this plan"
                )
            dims = t.shape.dims
            # Fully-defined shapes compare as one tuple equality on the
            # hot path; partial shapes keep the per-dimension walk.
            exact = dims if dims is not None and None not in dims else None
            partial = dims if exact is None else None
            binds.append((slot, t.dtype.np_dtype, exact, partial, t.name))
        if slot_of:
            leftover = set(slot_of.values())
            unbound = [t.name for t, slot in plan.feed_slots
                       if slot in leftover]
            raise FetchError(
                f"Plan feeds {unbound} were not bound to argument positions"
            )
        self.plan = plan
        self.scheduler = scheduler
        self._arg_binds = tuple(binds)
        self._n_args = len(binds)
        # Argument positions whose buffers the donate path writes into
        # (resolved once here so each donate call checks a tuple of
        # ints, not the feed-slot mapping).
        donated = set(plan.donated_feed_slots)
        self._donor_args = tuple(
            i for i, b in enumerate(binds) if b[0] in donated)
        # Lifetime execute_flat count.  Updated without a lock: one
        # CPython int add on a path that already runs the kernel loop,
        # so the serving-observability counter is approximate under
        # threads rather than a contention point.
        self.calls = 0

    @property
    def graph_version(self):
        return self.plan.graph_version

    def describe(self):
        """Observability snapshot: how big the bound plan is and how
        often it has run (surfaced in ``GET /v1/models``)."""
        plan = self.plan
        info = {
            "args": self._n_args,
            "steps": len(plan.steps),
            "levels": len(plan.levels),
            "calls": self.calls,
            "graph_version": plan.graph_version,
        }
        fused = getattr(plan, "fused_groups", ())
        if fused:
            info["fused_steps"] = len(fused)
            info["fused_ops"] = sum(len(g[1]) for g in fused)
            info["fused_kernels"] = [g[0] for g in fused]
        return info

    def execute_flat(self, args, donate=False):
        """Run the plan on positional argument values; returns the flat
        fetch results (ndarrays, in fetch order).

        The per-call overhead is intentionally minimal: inputs that are
        already ndarrays of the bound dtype are stored into their slot
        untouched (no validation copy); others are coerced once.  Shape
        compatibility against the bound placeholder's static shape is
        still enforced — it is one tuple walk, and silently broadcasting
        a wrong-shaped feed is how serving bugs become model bugs.

        ``donate=True`` relinquishes the caller's input buffers for this
        call: ``inplace_no_alias`` steps the plan armed at compile time
        may write results directly into dead feed arrays (so a fetched
        result can *be* the caller's input array).  Opting in is safe
        but conditional — each donated buffer must arrive as a writeable
        ndarray not aliased by any other argument, otherwise this call
        silently runs the normal non-donating steps.
        """
        if len(args) != self._n_args:
            raise FetchError(
                f"Bound plan takes {self._n_args} positional values, "
                f"got {len(args)}"
            )
        self.calls += 1
        plan = self.plan
        values = list(plan.base_values)
        for (slot, np_dtype, exact, partial, name), a in zip(
                self._arg_binds, args):
            if np_dtype is not None:
                if type(a) is not np.ndarray or a.dtype != np_dtype:
                    a = np.asarray(a, dtype=np_dtype)
                if exact is not None:
                    if a.shape != exact:
                        raise FetchError(
                            f"Feed for {name!r} has shape {a.shape}, "
                            f"incompatible with declared {exact}"
                        )
                elif partial is not None:
                    shape = a.shape
                    if len(shape) != len(partial) or any(
                            d is not None and d != s
                            for d, s in zip(partial, shape)):
                        raise FetchError(
                            f"Feed for {name!r} has shape {shape}, "
                            f"incompatible with declared "
                            f"({', '.join(str(d) for d in partial)})"
                        )
            values[slot] = (a,)
        if donate and self._donor_args:
            donate = self._donation_safe(values)
            if donate:
                _REC.counter("runtime.feed_donations", len(self._donor_args))
            else:
                _REC.counter("runtime.feed_donation_fallbacks")
        else:
            donate = False
        plan.execute(values, self.scheduler, donate=donate)
        return plan.fetch(values)

    def _donation_safe(self, values):
        """Whether every donated feed buffer may really be written: a
        writeable ndarray that is not the same object as any *other*
        bound argument (writing into a shared buffer would corrupt the
        reads of later steps through the aliasing slot)."""
        binds = self._arg_binds
        for ai in self._donor_args:
            slot = binds[ai][0]
            buf = values[slot][0]
            if type(buf) is not np.ndarray or not buf.flags.writeable:
                return False
            for b in binds:
                if b[0] != slot and buf is values[b[0]][0]:
                    return False
        return True

    def __repr__(self):
        return f"<BoundPlan args={self._n_args} plan={self.plan!r}>"


CacheStats = collections.namedtuple(
    "CacheStats", ["hits", "misses", "evictions", "size", "capacity"])


class PlanCache:
    """A thread-safe LRU cache of compiled execution plans.

    ``get`` records a hit or miss and refreshes recency; ``put`` is
    first-wins (a racing second compile returns the incumbent, so plan
    ``refs`` are never stranded) and evicts the least-recently-used
    entries beyond ``capacity``.
    """

    def __init__(self, capacity=None):
        if capacity is None:
            capacity = DEFAULT_PLAN_CACHE_SIZE
        if capacity < 1:
            raise ValueError("PlanCache capacity must be >= 1")
        self.capacity = capacity
        self._entries = collections.OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key):
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        _REC.counter("runtime.plan_cache.hits" if plan is not None
                     else "runtime.plan_cache.misses")
        return plan

    def peek(self, key):
        """Lookup without stats or recency effects (double-check path)."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key, plan):
        """Insert ``plan`` (unless ``key`` is already present) and return
        the cached plan; evicts LRU entries beyond capacity."""
        evicted = 0
        with self._lock:
            incumbent = self._entries.get(key)
            if incumbent is not None:
                return incumbent
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            _REC.counter("runtime.plan_cache.evictions", evicted)
        return plan

    def clear(self):
        with self._lock:
            self._entries.clear()

    @property
    def stats(self):
        with self._lock:
            return CacheStats(self._hits, self._misses, self._evictions,
                              len(self._entries), self.capacity)

    def values(self):
        with self._lock:
            return list(self._entries.values())

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def __repr__(self):
        s = self.stats
        return (f"<PlanCache size={s.size}/{s.capacity} hits={s.hits} "
                f"misses={s.misses} evictions={s.evictions}>")
