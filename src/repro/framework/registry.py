"""Operation registry.

Every primitive operation is described once by an :class:`OpDef` and is
shared by the two execution modes:

- the **eager** executor calls ``kernel`` immediately on NumPy values;
- the **graph** builder records an ``Operation`` node whose kernel is
  bound into the session's compiled execution plan.

Gradient functions are expressed in terms of the *public dispatching ops*
(``repro.framework.ops``), which makes the same gradient definitions
usable both for graph-mode ``gradients()`` and for the eager
``GradientTape`` (which replays them eagerly).
"""

from __future__ import annotations

__all__ = ["OpDef", "register_op", "register_gradient", "get_op_def", "list_ops"]

_REGISTRY = {}


class OpDef:
    """Static description of a primitive operation.

    Attributes:
      name: unique op type name, e.g. ``"MatMul"``.
      kernel: ``fn(*input_values, **attrs)`` returning a value (or a tuple
        when ``num_outputs > 1``).  Input values are NumPy arrays or opaque
        runtime objects (TensorArray state, etc.).
      num_outputs: number of output tensors.
      grad_fn: ``fn(op, *output_grads) -> [input_grads]`` written against
        the public ops API; None when not differentiable.
      shape_fn: optional ``fn(input_shapes, attrs) -> [TensorShape]``.
      dtype_fn: optional ``fn(input_dtypes, attrs) -> [DType]``.
      stateful: True for ops with side effects (variables, random, print);
        stateful ops are never deduplicated or constant-folded.
      inplace_kernel: optional ``fn(*input_values, out=buffer)`` variant
        writing the result into ``out`` (same shape/dtype as the result).
        The runtime planner uses it to reuse an intermediate's buffer
        instead of allocating.  Elementwise ufunc kernels tolerate
        ``out`` aliasing an input and may be donated a dying input's
        buffer; kernels that do NOT tolerate aliasing (BLAS-backed
        ``MatMul``) must also set ``inplace_no_alias`` so the planner
        only donates buffers that are fully dead before the step runs.
      inplace_no_alias: True when ``inplace_kernel`` requires ``out`` to
        be disjoint from every input (e.g. ``np.matmul(..., out=)``).
      fresh_output: True when the kernel always *allocates* its result —
        the returned array never aliases an input, a variable's storage,
        or any other external buffer.  Only fresh outputs are eligible
        as buffer-donation targets: donating an alias-returning kernel's
        output (``Identity``, variable reads, views) would let an
        in-place step silently corrupt caller arrays or live state.
      fusable: ``None``, or the plain elementwise NumPy ufunc this
        kernel wraps (``np.add``, ``np.tanh``, ...).  The runtime
        planner's fusion pass (:mod:`repro.runtime.plan`) collapses
        chains/trees of fusable steps into one ``exec``-compiled
        composite kernel that calls these ufuncs directly — the
        mapping-table idiom: op type → compiled primitive.  Only set it
        for stateless, single-output, attr-free kernels whose behavior
        is *exactly* ``ufunc(*inputs)`` (including dtype promotion),
        and whose ufunc accepts ``out=`` aliasing an input.
    """

    __slots__ = (
        "name",
        "kernel",
        "num_outputs",
        "grad_fn",
        "shape_fn",
        "dtype_fn",
        "stateful",
        "inplace_kernel",
        "inplace_no_alias",
        "fresh_output",
        "fusable",
    )

    def __init__(self, name, kernel, *, num_outputs=1, grad_fn=None, shape_fn=None,
                 dtype_fn=None, stateful=False, inplace_kernel=None,
                 inplace_no_alias=False, fresh_output=False, fusable=None):
        self.name = name
        self.kernel = kernel
        self.num_outputs = num_outputs
        self.grad_fn = grad_fn
        self.shape_fn = shape_fn
        self.dtype_fn = dtype_fn
        self.stateful = stateful
        self.inplace_kernel = inplace_kernel
        self.inplace_no_alias = inplace_no_alias
        self.fresh_output = fresh_output
        self.fusable = fusable

    def __repr__(self):
        return f"OpDef({self.name!r}, outputs={self.num_outputs}, stateful={self.stateful})"


def register_op(name, kernel, **kwargs):
    """Register an op; returns the created :class:`OpDef`.

    Raises:
      ValueError: if ``name`` is already registered.
    """
    if name in _REGISTRY:
        raise ValueError(f"Op {name!r} is already registered")
    op_def = OpDef(name, kernel, **kwargs)
    _REGISTRY[name] = op_def
    return op_def


def register_gradient(name):
    """Decorator attaching a gradient function to a registered op."""

    def decorator(fn):
        op_def = get_op_def(name)
        if op_def.grad_fn is not None:
            raise ValueError(f"Op {name!r} already has a gradient")
        op_def.grad_fn = fn
        return fn

    return decorator


def get_op_def(name):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"Unknown op type: {name!r}") from None


def list_ops():
    """All registered op names, sorted."""
    return sorted(_REGISTRY)
