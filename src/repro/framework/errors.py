"""Framework exception hierarchy.

Errors are split along the three execution steps the paper's Appendix B
identifies: graph construction ("staging"), graph execution ("runtime"),
and — in the AutoGraph package — source conversion.
"""

from __future__ import annotations

__all__ = [
    "FrameworkError",
    "OpError",
    "InvalidArgumentError",
    "ShapeError",
    "DTypeError",
    "GraphError",
    "StagingError",
    "ExecutionError",
    "UninitializedVariableError",
    "FetchError",
]


class FrameworkError(Exception):
    """Base class for all framework errors."""


class OpError(FrameworkError):
    """An error raised by an operation, at build or run time.

    Attributes:
      op_name: name of the offending op, when known.
    """

    def __init__(self, message, op_name=None):
        super().__init__(message)
        self.op_name = op_name


class InvalidArgumentError(OpError):
    """An op received an argument of invalid value, dtype or shape."""


class ShapeError(InvalidArgumentError):
    """Shapes are incompatible for the requested operation."""


class DTypeError(InvalidArgumentError):
    """DTypes are incompatible for the requested operation."""


class GraphError(FrameworkError):
    """Graph structure errors (wrong graph, cycles, missing ops)."""


class StagingError(FrameworkError):
    """Raised while building (staging) a graph from user code.

    Corresponds to the paper's "staging errors": legal Python that cannot
    be lowered into the target IR, e.g. inconsistent values across the
    branches of a staged conditional.
    """


class ExecutionError(OpError):
    """Raised while executing a compiled graph plan."""


class UninitializedVariableError(ExecutionError):
    """A variable was read before being initialized."""


class FetchError(FrameworkError):
    """An invalid fetch or feed was passed to ``Session.run``."""
