"""Operator-overloading mixin shared by eager and symbolic tensors.

This is the classic "operator overloading" facility the paper's Section 4
describes: ``a + b`` builds/executes an ``Add`` op.  Both tensor kinds get
identical overloads, so user code is mode-agnostic.  Note that — exactly as
the paper points out — this technique cannot reach control flow (``if``,
``while``, ``for``), which is why AutoGraph exists.
"""

from __future__ import annotations

__all__ = ["TensorOpsMixin"]


def _ops():
    # Late import: the public ops package imports tensor classes.
    from repro.framework import ops

    return ops


class TensorOpsMixin:
    """Arithmetic/comparison operator overloads shared by tensor types."""

    # Make numpy defer to our reflected overloads (a np.ndarray + Tensor
    # would otherwise broadcast element-wise into an object array).
    __array_priority__ = 100

    def __add__(self, other):
        return _ops().add(self, other)

    def __radd__(self, other):
        return _ops().add(other, self)

    def __sub__(self, other):
        return _ops().subtract(self, other)

    def __rsub__(self, other):
        return _ops().subtract(other, self)

    def __mul__(self, other):
        return _ops().multiply(self, other)

    def __rmul__(self, other):
        return _ops().multiply(other, self)

    def __truediv__(self, other):
        return _ops().divide(self, other)

    def __rtruediv__(self, other):
        return _ops().divide(other, self)

    def __floordiv__(self, other):
        return _ops().floordiv(self, other)

    def __rfloordiv__(self, other):
        return _ops().floordiv(other, self)

    def __mod__(self, other):
        return _ops().mod(self, other)

    def __rmod__(self, other):
        return _ops().mod(other, self)

    def __pow__(self, other):
        return _ops().pow(self, other)

    def __rpow__(self, other):
        return _ops().pow(other, self)

    def __neg__(self):
        return _ops().negative(self)

    def __abs__(self):
        return _ops().abs(self)

    def __matmul__(self, other):
        return _ops().matmul(self, other)

    def __rmatmul__(self, other):
        return _ops().matmul(other, self)

    # Comparisons.  Like TF, ``==`` is *not* overloaded on symbolic tensors
    # (it stays identity-based so tensors remain hashable and usable in
    # sets/dicts); AutoGraph's logical_expressions pass routes ``==`` to
    # ``ag__.eq`` instead — see Section 7.2 of the paper.
    def __gt__(self, other):
        return _ops().greater(self, other)

    def __ge__(self, other):
        return _ops().greater_equal(self, other)

    def __lt__(self, other):
        return _ops().less(self, other)

    def __le__(self, other):
        return _ops().less_equal(self, other)

    def __getitem__(self, key):
        return _ops().get_item(self, key)
