"""Define-by-run automatic differentiation: ``GradientTape``.

The tape records every differentiable op executed while it is active and
replays the registered gradient functions in reverse on request.  Because
gradient functions are written against the public dispatching ops, replay
itself executes eagerly.

This is the comparator for the paper's eager-mode training rows (Table 2)
and the "PyTorch" define-by-run comparator in Table 3: a fresh tape is
built on every training step, which is precisely the per-step overhead the
staged backends avoid.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import FrameworkError
from .execute import OpRecord
from .tensor import EagerTensor

__all__ = ["GradientTape", "record_operation"]


class _ThreadLocalTapeStack:
    """The active-tape stack, kept per thread.

    A tape records through whichever thread executes the ops; two
    threads each running their own ``with GradientTape()`` block (e.g.
    per-shard gradients in :mod:`repro.blocks.data_parallel`, or
    concurrent server handlers) must not see — or record onto — each
    other's tapes.  The list-like surface matches how the single global
    list was used everywhere (truthiness, iteration, indexing).
    """

    def __init__(self):
        self._local = threading.local()

    @property
    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def append(self, tape):
        self._stack.append(tape)

    def pop(self):
        return self._stack.pop()

    def remove(self, tape):
        self._stack.remove(tape)

    def __bool__(self):
        return bool(self._stack)

    def __len__(self):
        return len(self._stack)

    def __iter__(self):
        return iter(self._stack)

    def __getitem__(self, index):
        return self._stack[index]


_TAPE_STACK = _ThreadLocalTapeStack()


def record_operation(op_def, inputs, outputs, attrs):
    """Called by the eager executor after each differentiable op."""
    if not _TAPE_STACK:
        return
    record = None
    for tape in _TAPE_STACK:
        if tape._should_record(inputs):
            if record is None:
                record = OpRecord(op_def, tuple(inputs), tuple(outputs), dict(attrs))
            tape._record(record)


class GradientTape:
    """Records ops for reverse-mode differentiation.

    Example:
      >>> with GradientTape() as tape:
      ...     tape.watch(x)
      ...     y = x * x
      >>> dx = tape.gradient(y, x)
    """

    def __init__(self, persistent=False):
        self._persistent = persistent
        self._records = []
        self._watched = set()
        # ids of tensors known to be on a path from a watched tensor.
        self._tracked = set()
        self._used = False

    # -- context management ----------------------------------------------

    def __enter__(self):
        _TAPE_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        if _TAPE_STACK and _TAPE_STACK[-1] is self:
            _TAPE_STACK.pop()
        else:  # pragma: no cover - defensive
            _TAPE_STACK.remove(self)
        return False

    # -- recording ---------------------------------------------------------

    def watch(self, tensor):
        """Mark ``tensor`` (or a Variable) as differentiable input."""
        from ..graph.variables import Variable

        if isinstance(tensor, Variable):
            tensor = tensor.value()
        if not isinstance(tensor, EagerTensor):
            raise TypeError(f"Can only watch eager tensors, got {type(tensor).__name__}")
        self._watched.add(tensor.id)
        self._tracked.add(tensor.id)

    def _should_record(self, inputs):
        for value in inputs:
            if isinstance(value, EagerTensor) and value.id in self._tracked:
                return True
        return False

    def _record(self, record):
        self._records.append(record)
        for out in record.outputs:
            if isinstance(out, EagerTensor):
                self._tracked.add(out.id)

    # -- differentiation ---------------------------------------------------

    def gradient(self, target, sources, output_gradients=None):
        """Compute d(target)/d(sources) by reverse replay.

        Args:
          target: an EagerTensor (scalar or not; non-scalars are seeded with
            ones, matching ``tf.GradientTape``).
          sources: a tensor/Variable or (possibly nested) list of them.
          output_gradients: optional seed gradient for ``target``.

        Returns:
          A structure of gradients matching ``sources``; ``None`` entries
          for sources the target does not depend on.
        """
        from ..graph.variables import Variable

        if self._used and not self._persistent:
            raise FrameworkError(
                "A non-persistent GradientTape can only be used once"
            )
        self._used = True

        single = not isinstance(sources, (list, tuple))
        source_list = [sources] if single else list(sources)
        source_tensors = []
        for s in source_list:
            if isinstance(s, Variable):
                s = s.value()
            if not isinstance(s, EagerTensor):
                raise TypeError(f"Invalid gradient source: {type(s).__name__}")
            source_tensors.append(s)

        if not isinstance(target, EagerTensor):
            raise TypeError("gradient target must be an EagerTensor")

        # Reverse accumulation over the recorded ops.
        grads = {}
        if output_gradients is None:
            seed = EagerTensor(np.ones_like(target.numpy()))
        else:
            seed = output_gradients
        grads[target.id] = seed

        for record in reversed(self._records):
            out_grads = [
                grads.get(out.id) if isinstance(out, EagerTensor) else None
                for out in record.outputs
            ]
            if all(g is None for g in out_grads):
                continue
            filled = []
            for g, out in zip(out_grads, record.outputs):
                if g is None and isinstance(out, EagerTensor):
                    g = EagerTensor(np.zeros_like(out.numpy()))
                filled.append(g)
            input_grads = record.op_def.grad_fn(record, *filled)
            if not isinstance(input_grads, (list, tuple)):
                input_grads = [input_grads]
            for inp, g in zip(record.inputs, input_grads):
                if g is None or not isinstance(inp, EagerTensor):
                    continue
                if inp.id in grads:
                    grads[inp.id] = EagerTensor(grads[inp.id].numpy() + g.numpy())
                else:
                    grads[inp.id] = g

        results = [grads.get(s.id) for s in source_tensors]
        if not self._persistent:
            self._records = []
            self._tracked = set(self._watched)
        return results[0] if single else results
