"""Eager (define-by-run) execution mode."""

from .tensor import EagerTensor, convert_to_eager_tensor
from .tape import GradientTape

__all__ = ["EagerTensor", "convert_to_eager_tensor", "GradientTape"]
