"""Eager op execution: dispatch, validation, kernel call, tape recording.

This module is the define-by-run interpreter.  Its per-op costs (argument
conversion, dtype metadata, output wrapping, tape bookkeeping) model the
interpretive overhead of systems like TF Eager and PyTorch that the paper
measures against.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError
from ..registry import get_op_def
from .tensor import EagerTensor, convert_to_eager_tensor

__all__ = ["execute_op", "OpRecord"]


class OpRecord:
    """A lightweight record of an executed op, for tape replay.

    Exposes the same surface gradient functions need from a graph
    ``Operation``: ``inputs``, ``outputs``, ``attrs`` and ``get_attr``.
    """

    __slots__ = ("op_def", "inputs", "outputs", "attrs")

    def __init__(self, op_def, inputs, outputs, attrs):
        self.op_def = op_def
        self.inputs = inputs
        self.outputs = outputs
        self.attrs = attrs

    @property
    def type(self):
        return self.op_def.name

    def get_attr(self, name, default=None):
        return self.attrs.get(name, default)


def _unwrap(value):
    if isinstance(value, EagerTensor):
        return value.numpy()
    return value


def _is_array_like(value):
    return isinstance(value, (np.ndarray, np.generic, int, float, bool))


def execute_op(op_name, inputs, attrs=None, name=None):
    """Execute ``op_name`` eagerly and return EagerTensor output(s)."""
    op_def = get_op_def(op_name)
    attrs = attrs or {}

    converted = []
    for value in inputs:
        if isinstance(value, EagerTensor):
            converted.append(value)
        elif _is_array_like(value) or isinstance(value, (list, tuple)):
            converted.append(convert_to_eager_tensor(value))
        else:
            # Opaque runtime objects (TensorArray state, variable handles)
            # pass through untouched.
            converted.append(value)

    raw_inputs = [_unwrap(v) for v in converted]
    try:
        result = op_def.kernel(*raw_inputs, **attrs)
    except (TypeError, ValueError) as e:
        raise InvalidArgumentError(f"{op_name}: {e}", op_name=name or op_name) from e

    if op_def.num_outputs == 1:
        raw_outputs = (result,)
    else:
        raw_outputs = tuple(result)

    outputs = tuple(
        EagerTensor(r) if _is_array_like(r) else r for r in raw_outputs
    )

    if op_def.grad_fn is not None:
        from .tape import record_operation

        record_operation(op_def, converted, outputs, attrs)

    if op_def.num_outputs == 1:
        return outputs[0]
    return outputs
