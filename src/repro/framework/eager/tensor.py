"""Eager tensors: immediate values with per-op dispatch overhead.

``EagerTensor`` wraps a NumPy array plus framework dtype metadata.  Each
operation on eager tensors goes through the full public-API dispatch path
(validation, conversion, kernel call, re-wrapping) — the interpretive
overhead that define-by-run systems pay on every op of every step, and
that staging into a graph amortises away.
"""

from __future__ import annotations

import numpy as np

from .. import dtypes
from ..errors import InvalidArgumentError
from ..shapes import TensorShape
from ..tensor_mixin import TensorOpsMixin

__all__ = ["EagerTensor", "convert_to_eager_tensor"]


class EagerTensor(TensorOpsMixin):
    """A concrete tensor value."""

    __slots__ = ("_value", "_dtype", "_id")

    _next_id = 0

    def __init__(self, value, dtype=None):
        if isinstance(value, EagerTensor):
            value = value._value
        if dtype is not None:
            dtype = dtypes.as_dtype(dtype)
            value = np.asarray(value, dtype=dtype.np_dtype)
        else:
            value = np.asarray(value)
            if value.dtype == np.float64 and not isinstance(value, np.ndarray.__class__):
                pass
            dtype = dtypes.from_numpy(value.dtype)
        self._value = value
        self._dtype = dtype
        self._id = EagerTensor._next_id
        EagerTensor._next_id += 1

    # -- metadata --------------------------------------------------------

    @property
    def dtype(self):
        return self._dtype

    @property
    def shape(self):
        return TensorShape(self._value.shape)

    @property
    def ndim(self):
        return self._value.ndim

    @property
    def id(self):
        return self._id

    def numpy(self):
        """The underlying NumPy array (no copy)."""
        return self._value

    # -- conversions -----------------------------------------------------

    def __array__(self, dtype=None):
        return self._value if dtype is None else self._value.astype(dtype)

    def __float__(self):
        return float(self._value)

    def __int__(self):
        return int(self._value)

    def __bool__(self):
        # Unlike symbolic tensors, eager tensors *can* be used as Python
        # booleans — this is what lets dynamic dispatch fall back to plain
        # Python control flow in eager mode.
        if self._value.size != 1:
            raise InvalidArgumentError(
                "The truth value of a non-scalar tensor is ambiguous"
            )
        return bool(self._value)

    def __index__(self):
        if self._value.ndim != 0 or self._dtype.is_floating:
            raise TypeError("Only integer scalar tensors can be used as an index")
        return int(self._value)

    def __len__(self):
        if self._value.ndim == 0:
            raise TypeError("len() of a 0-d tensor")
        return self._value.shape[0]

    def __iter__(self):
        if self._value.ndim == 0:
            raise TypeError("Cannot iterate over a 0-d tensor")
        return iter([EagerTensor(self._value[i])
                     for i in range(self._value.shape[0])])

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        # Identity equality, matching symbolic tensors (see TensorOpsMixin
        # docstring); value equality is spelled ops.equal / ag__.eq.
        return self is other

    def __ne__(self, other):
        return self is not other

    def __repr__(self):
        return (
            f"<EagerTensor shape={tuple(self._value.shape)} dtype={self._dtype.name} "
            f"value={np.array2string(self._value, threshold=8)}>"
        )


def convert_to_eager_tensor(value, dtype=None):
    """Coerce ``value`` to an EagerTensor, with an optional target dtype."""
    if isinstance(value, EagerTensor):
        if dtype is not None and value.dtype != dtypes.as_dtype(dtype):
            return EagerTensor(value.numpy(), dtype=dtype)
        return value
    if dtype is None and isinstance(value, float):
        # Python floats default to float32, like TF.
        return EagerTensor(np.asarray(value, dtype=np.float32))
    if dtype is None and isinstance(value, bool):
        return EagerTensor(np.asarray(value))
    if dtype is None and isinstance(value, int):
        # Python ints default to int32, like TF.
        return EagerTensor(np.asarray(value, dtype=np.int32))
    if dtype is None and isinstance(value, (list, tuple)) and value and all(
        isinstance(v, float) for v in value
    ):
        return EagerTensor(np.asarray(value, dtype=np.float32))
    return EagerTensor(value, dtype=dtype)
