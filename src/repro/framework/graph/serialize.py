"""GraphDef-style serialization: a traced graph to/from plain data.

``graph_to_def`` walks a (usually optimized) :class:`Graph` and encodes
it as JSON-able dictionaries plus an ndarray pool, the repo's analogue
of TensorFlow's ``GraphDef`` + checkpoint pair; ``graph_from_def``
rebuilds an executable graph in a fresh process from that data.

Closed-over state serializes two ways.  *Freezing* (the default path):
capture placeholders listed in ``freeze_placeholders`` — and legacy
variable-read ops (still staged inside control-flow bodies) — are
replaced by ``Const`` nodes holding the current value, so the artifact
is self-contained and the loading process needs none of the exporting
process's per-variable op registrations.  *Non-frozen* export instead
keeps capture placeholders as ordinary graph inputs; the caller ships
their values as a separate checkpoint and the loaded artifact can
hot-swap them.  Ops with other side effects (assigns, random draws,
staged prints) are refused — an exported signature is a pure function
of its inputs.  Functional control flow (``Cond*`` / ``While*``) is
supported: the branch/body ``FuncGraph``s stored in their attrs are
encoded recursively.
"""

from __future__ import annotations

import numpy as np

from .. import dtypes
from ..errors import GraphError
from ..registry import _REGISTRY
from ..shapes import TensorShape
from .func_graph import FuncGraph
from .graph import Graph

__all__ = ["GraphSerializationError", "find_unexportable_ops",
           "graph_to_def", "graph_from_def"]

FORMAT_VERSION = 1


class GraphSerializationError(GraphError):
    """The graph contains something that cannot cross a process boundary."""


def _is_variable_read(op):
    return (op.op_def.stateful and not op.inputs
            and op.type.startswith("ReadVariable_"))


def _is_control_flow(op):
    return op.type == "Cond" or op.type.startswith("Cond_") \
        or op.type == "While" or op.type.startswith("While_")


def find_unexportable_ops(graph):
    """``"name (type)"`` for every op serialization would refuse.

    The pre-flight twin of :func:`graph_to_def`'s stateful-op check —
    recursing into ``Cond``/``While`` subgraph attrs exactly like the
    encoder does, so diagnostics (``export_compatibility``,
    ``pretty_cache``) agree with what ``save`` will actually accept.
    """
    offending = []
    for op in graph.ops:
        if (op.op_def.stateful and not _is_variable_read(op)
                and not _is_control_flow(op)):
            offending.append(f"{op.name} ({op.type})")
            continue
        for value in op.attrs.values():
            if isinstance(value, FuncGraph):
                offending.extend(find_unexportable_ops(value))
    return offending


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _encode_attr(value, arrays):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        key = f"arr_{len(arrays)}"
        arrays[key] = value
        return {"__kind__": "array", "key": key}
    if isinstance(value, dtypes.DType):
        return {"__kind__": "dtype", "name": value.name}
    if isinstance(value, TensorShape):
        dims = value.dims
        return {"__kind__": "shape",
                "dims": None if dims is None else list(dims)}
    if isinstance(value, FuncGraph):
        return {"__kind__": "func_graph",
                "graph": _encode_func_graph(value, arrays)}
    if isinstance(value, (list, tuple)):
        return {"__kind__": "tuple" if isinstance(value, tuple) else "list",
                "items": [_encode_attr(v, arrays) for v in value]}
    raise GraphSerializationError(
        f"Attribute value {value!r} of type {type(value).__name__} is not "
        "serializable"
    )


def _tensor_ref(tensor):
    return f"{tensor.op.name}:{tensor.value_index}"


def _encode_nodes(graph, arrays, freeze_placeholders=None):
    freeze_placeholders = freeze_placeholders or {}
    nodes = []
    for op in graph.ops:
        if op.type == "Placeholder" and id(op.outputs[0]) in freeze_placeholders:
            # Freeze a capture placeholder: the artifact bakes the
            # capture's current value as a constant.
            value = np.asarray(freeze_placeholders[id(op.outputs[0])])
            nodes.append({
                "name": op.name,
                "type": "Const",
                "inputs": [],
                "control_inputs": [],
                "attrs": {"value": _encode_attr(value, arrays)},
            })
            continue
        if _is_variable_read(op):
            # Freeze: the read kernel takes no inputs and returns the
            # variable's live value — bake it as a constant.
            try:
                value = np.asarray(op.op_def.kernel())
            except Exception as e:
                raise GraphSerializationError(
                    f"Cannot freeze variable read {op.name!r}: {e}"
                ) from e
            nodes.append({
                "name": op.name,
                "type": "Const",
                "inputs": [],
                "control_inputs": [],
                "attrs": {"value": _encode_attr(value, arrays)},
            })
            continue
        if op.op_def.stateful and not _is_control_flow(op):
            raise GraphSerializationError(
                f"Op {op.name!r} (type {op.type!r}) is stateful; exported "
                "signatures must be pure functions of their inputs — "
                "assigns, random draws and staged prints cannot be "
                "serialized. Freeze state into variables read by a "
                "separate inference function and export that."
            )
        try:
            attrs = {
                k: _encode_attr(v, arrays) for k, v in op.attrs.items()
            }
        except GraphSerializationError as e:
            raise GraphSerializationError(
                f"Op {op.name!r} (type {op.type!r}): {e}"
            ) from e
        nodes.append({
            "name": op.name,
            "type": op.type,
            "inputs": [_tensor_ref(t) for t in op.inputs],
            "control_inputs": [c.name for c in op.control_inputs],
            "attrs": attrs,
            "num_outputs": op.op_def.num_outputs,
        })
    return nodes


def _encode_func_graph(fg, arrays):
    return {
        "name": fg.name,
        "nodes": _encode_nodes(fg, arrays),
        "inputs": [_tensor_ref(t) for t in fg.inputs],
        "capture_placeholders": [
            _tensor_ref(t) for t in fg.capture_placeholders
        ],
        "flat_outputs": [_tensor_ref(t) for t in fg.flat_outputs],
    }


def graph_to_def(graph, inputs, outputs, arrays=None,
                 freeze_placeholders=None):
    """Encode ``graph`` as JSON-able data plus an ndarray pool.

    Args:
      graph: the :class:`Graph` to serialize (typically already
        optimized).
      inputs: placeholder tensors forming the signature, in feed order.
      outputs: tensors forming the results, in fetch order.
      arrays: optional existing ndarray pool to append to.
      freeze_placeholders: optional ``{placeholder tensor: value}`` —
        those Placeholder nodes encode as ``Const`` nodes holding the
        value (how frozen export bakes capture placeholders).

    Returns:
      ``(graph_def, arrays)`` — a JSON-able dict and the array pool it
      references.

    Raises:
      GraphSerializationError: the graph has non-read side effects or
        unserializable attrs.
    """
    arrays = {} if arrays is None else arrays
    frozen = (
        {id(t): v for t, v in freeze_placeholders.items()}
        if freeze_placeholders else None
    )
    graph_def = {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": _encode_nodes(graph, arrays, frozen),
        "inputs": [_tensor_ref(t) for t in inputs],
        "outputs": [_tensor_ref(t) for t in outputs],
    }
    return graph_def, arrays


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_attr(value, arrays):
    if not isinstance(value, dict):
        return value
    kind = value.get("__kind__")
    if kind == "array":
        return np.asarray(arrays[value["key"]])
    if kind == "dtype":
        return dtypes.as_dtype(value["name"])
    if kind == "shape":
        dims = value["dims"]
        return TensorShape(None if dims is None else tuple(dims))
    if kind == "func_graph":
        return _decode_func_graph(value["graph"], arrays)
    if kind == "list":
        return [_decode_attr(v, arrays) for v in value["items"]]
    if kind == "tuple":
        return tuple(_decode_attr(v, arrays) for v in value["items"])
    raise GraphSerializationError(f"Unknown encoded attribute {value!r}")


def _ensure_op_registered(op_type, num_outputs):
    """Dynamically-registered arity variants must exist before lookup."""
    if op_type in _REGISTRY:
        return
    if op_type == "Cond" or op_type.startswith("Cond_"):
        from .control_flow import _get_cond_def

        _get_cond_def(num_outputs)
        return
    if op_type == "While" or op_type.startswith("While_"):
        from .control_flow import _get_while_def

        _get_while_def(num_outputs)
        return
    raise GraphSerializationError(
        f"Op type {op_type!r} is not registered in this process; the "
        "artifact was exported with ops this build does not provide"
    )


def _build_ops(nodes, arrays, graph):
    env = {}     # "op:idx" -> Tensor
    by_name = {}  # op name -> Operation
    for node in nodes:
        _ensure_op_registered(node["type"], node.get("num_outputs", 1))
        attrs = {k: _decode_attr(v, arrays) for k, v in node["attrs"].items()}
        op = graph.create_op(
            node["type"],
            [env[ref] for ref in node["inputs"]],
            attrs,
            name=node["name"],
            control_inputs=[by_name[n] for n in node["control_inputs"]],
        )
        if op.name != node["name"]:
            raise GraphSerializationError(
                f"Node name collision rebuilding {node['name']!r} "
                f"(got {op.name!r})"
            )
        by_name[op.name] = op
        for t in op.outputs:
            env[_tensor_ref(t)] = t
    return env


def _decode_func_graph(fg_def, arrays):
    fg = FuncGraph(fg_def["name"], outer_graph=None)
    env = _build_ops(fg_def["nodes"], arrays, fg)
    fg.inputs = [env[r] for r in fg_def["inputs"]]
    fg.capture_placeholders = [
        env[r] for r in fg_def["capture_placeholders"]
    ]
    fg.flat_outputs = [env[r] for r in fg_def["flat_outputs"]]
    return fg


def graph_from_def(graph_def, arrays):
    """Rebuild a graph from :func:`graph_to_def` output.

    Returns:
      ``(graph, inputs, outputs)`` — the rebuilt graph and its signature
      tensors, ready for a :class:`~repro.framework.graph.session.Session`.
    """
    version = graph_def.get("format_version")
    if version != FORMAT_VERSION:
        raise GraphSerializationError(
            f"Unsupported graph_def format_version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    graph = Graph(name=graph_def.get("name", "loaded"))
    env = _build_ops(graph_def["nodes"], arrays, graph)
    inputs = [env[r] for r in graph_def["inputs"]]
    outputs = [env[r] for r in graph_def["outputs"]]
    return graph, inputs, outputs
