"""Session: the feed-dict compatibility front over ``repro.runtime``.

``Session.run(fetches, feed_dict)`` compiles (and LRU-caches) an
:class:`~repro.runtime.ExecutionPlan` — pruning the graph to what the
fetches need and resolving every op input to a value slot — then binds
the feed dict and executes the plan.

This is deliberately the *general* path, and it keeps the cost model
that Table 2 of the paper measures:

- plan compilation is a one-time cost (like TF's graph pruning/placement);
- each ``run`` call pays a fixed overhead for fetch flattening, cache-key
  construction, feed-dict binding and per-feed validation *copies* —
  which is exactly the overhead the "loop in Python" training style pays
  1000× and the "loop in graph" style pays once.

Consumers that call one compiled signature repeatedly (traced
``ConcreteFunction``s, loaded artifacts, the micro-batcher) skip this
wrapper entirely: they bind a :class:`~repro.runtime.BoundPlan` once and
hit its positional ``execute_flat`` per call.
"""

from __future__ import annotations

import threading

import numpy as np

from ...runtime import PlanCache, compile_plan
from .. import nest
from ..errors import FetchError
from .graph import Graph

__all__ = ["Session"]


class Session:
    """Executes fetches against a graph.

    Thread safety: concurrent ``run`` calls are safe on a *frozen* graph
    (one that is no longer having ops added — every graph a traced
    ``ConcreteFunction`` or loaded serving artifact executes).  Plan
    compilation is serialized behind a lock; execution itself touches
    only per-call locals.  What the session cannot make safe is the
    *kernels*: concurrent runs that assign the same ``Variable``
    interleave nondeterministically, so concurrent serving should stick
    to pure (read-only / frozen) fetches.

    Args:
      graph: the graph to execute.
      plan_cache_size: bound on cached compiled plans (LRU eviction
        beyond it); ``None`` uses
        :data:`repro.runtime.DEFAULT_PLAN_CACHE_SIZE` (128).  Counters
        are exposed via :attr:`plan_cache_stats`.
      fuse: collapse fusable elementwise step chains into compiled
        composite kernels when compiling plans (see
        :func:`repro.runtime.compile_plan`); ``False`` is the A/B
        lever for measuring fusion.
    """

    def __init__(self, graph, plan_cache_size=None, fuse=True):
        if not isinstance(graph, Graph):
            raise TypeError(f"Session requires a Graph, got {type(graph).__name__}")
        self.graph = graph
        self.fuse = bool(fuse)
        self._plan_cache = PlanCache(plan_cache_size)
        self._compile_lock = threading.Lock()

    # -- public API -----------------------------------------------------------

    @property
    def plan_cache_stats(self):
        """Hit/miss/eviction counters of the compiled-plan LRU cache."""
        return self._plan_cache.stats

    def run(self, fetches, feed_dict=None):
        """Evaluate ``fetches`` (a tensor/op or nested structure thereof)."""
        feed_dict = feed_dict or {}
        flat_fetches = nest.flatten(fetches)
        key = (
            tuple(id(f) for f in flat_fetches),
            tuple(sorted(id(t) for t in feed_dict)),
            self.graph.version,
        )
        plan = self._plan_cache.get(key)
        if plan is None:
            # Double-checked behind the lock: two racing first calls
            # must not both compile-and-insert (the loser's plan would
            # strand the winner's refs and waste a compile).
            with self._compile_lock:
                plan = self._plan_cache.peek(key)
                if plan is None:
                    plan = compile_plan(
                        self.graph, flat_fetches, list(feed_dict),
                        fuse=self.fuse)
                    plan.refs = (tuple(flat_fetches), tuple(feed_dict))
                    plan = self._plan_cache.put(key, plan)

        values = plan.new_values()
        for tensor, slot in plan.feed_slots:
            try:
                fed = feed_dict[tensor]
            except KeyError:
                raise FetchError(
                    f"Placeholder {tensor.name!r} requires a fed value"
                ) from None
            if tensor.dtype.np_dtype is not None:
                # Like TF, feeds are validated and *copied* into the
                # runtime on every call — part of the per-run overhead
                # that in-graph loops (and the runtime's positional fast
                # path) amortize (paper §9, Table 2).
                fed = np.array(fed, dtype=tensor.dtype.np_dtype, copy=True)
                if not tensor.shape.is_compatible_with(fed.shape):
                    raise FetchError(
                        f"Feed for {tensor.name!r} has shape {fed.shape}, "
                        f"incompatible with declared {tensor.shape}"
                    )
            values[slot] = (fed,)

        flat_results = plan.run_flat(values)
        return nest.pack_sequence_as(fetches, flat_results)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False
