"""Session: compiled execution of a graph.

``Session.run(fetches, feed_dict)`` prunes the graph to what the fetches
need, compiles a flat execution plan (kernel + pre-resolved value-slot
locators per op), caches it keyed by (fetches, feeds, graph version), and
re-executes that plan on subsequent calls.

This captures the cost model that Table 2 of the paper measures:

- plan compilation is a one-time cost (like TF's graph pruning/placement);
- each ``run`` call pays a fixed overhead for fetch/feed resolution —
  which is exactly the overhead the "loop in Python" training style pays
  1000× and the "loop in graph" style pays once.
"""

from __future__ import annotations

import threading

import numpy as np

from .. import nest
from ..errors import ExecutionError, FetchError, GraphError
from .graph import Graph, Operation, Tensor

__all__ = ["Session"]


class _CompiledPlan:
    """A pruned, topologically-ordered, slot-resolved execution plan."""

    __slots__ = ("steps", "fetch_locators", "feed_slots", "n_slots",
                 "fetch_structure", "refs")

    def __init__(self, steps, fetch_locators, feed_slots, n_slots,
                 fetch_structure, refs=()):
        self.steps = steps
        self.fetch_locators = fetch_locators
        self.feed_slots = feed_slots
        self.n_slots = n_slots
        self.fetch_structure = fetch_structure
        # Strong references to the fetch/feed objects this plan was
        # compiled for.  Cache keys contain id()s; holding the objects
        # guarantees CPython cannot recycle those ids into *different*
        # tensors while the cache entry is alive, which would otherwise
        # serve a stale plan.
        self.refs = refs


class Session:
    """Executes fetches against a graph.

    Thread safety: concurrent ``run`` calls are safe on a *frozen* graph
    (one that is no longer having ops added — every graph a traced
    ``ConcreteFunction`` or loaded serving artifact executes).  Plan
    compilation is serialized behind a lock; execution itself touches
    only per-call locals.  What the session cannot make safe is the
    *kernels*: concurrent runs that assign the same ``Variable``
    interleave nondeterministically, so concurrent serving should stick
    to pure (read-only / frozen) fetches.
    """

    def __init__(self, graph):
        if not isinstance(graph, Graph):
            raise TypeError(f"Session requires a Graph, got {type(graph).__name__}")
        self.graph = graph
        self._plan_cache = {}
        self._compile_lock = threading.Lock()

    # -- public API -----------------------------------------------------------

    def run(self, fetches, feed_dict=None):
        """Evaluate ``fetches`` (a tensor/op or nested structure thereof)."""
        feed_dict = feed_dict or {}
        flat_fetches = nest.flatten(fetches)
        key = (
            tuple(id(f) for f in flat_fetches),
            tuple(sorted(id(t) for t in feed_dict)),
            self.graph.version,
        )
        plan = self._plan_cache.get(key)
        if plan is None:
            # Double-checked behind the lock: two racing first calls
            # must not both insert (the loser's plan would strand the
            # winner's refs and waste a compile), and dict reads stay
            # lock-free on the hot path.
            with self._compile_lock:
                plan = self._plan_cache.get(key)
                if plan is None:
                    plan = self._compile(flat_fetches, feed_dict)
                    plan.refs = (tuple(flat_fetches), tuple(feed_dict))
                    self._plan_cache[key] = plan

        values = [None] * plan.n_slots
        for tensor, slot in plan.feed_slots:
            try:
                fed = feed_dict[tensor]
            except KeyError:
                raise FetchError(
                    f"Placeholder {tensor.name!r} requires a fed value"
                ) from None
            if tensor.dtype.np_dtype is not None:
                # Like TF, feeds are validated and *copied* into the
                # runtime on every call — part of the per-run overhead
                # that in-graph loops amortize (paper §9, Table 2).
                fed = np.array(fed, dtype=tensor.dtype.np_dtype, copy=True)
                if not tensor.shape.is_compatible_with(fed.shape):
                    raise FetchError(
                        f"Feed for {tensor.name!r} has shape {fed.shape}, "
                        f"incompatible with declared {tensor.shape}"
                    )
            values[slot] = (fed,)

        for slot, kernel, locators, single, op_name in plan.steps:
            try:
                out = kernel(*[values[j][k] for j, k in locators])
            except ExecutionError:
                raise
            except Exception as e:
                raise ExecutionError(
                    f"Error executing op {op_name!r}: {e}", op_name=op_name
                ) from e
            values[slot] = (out,) if single else tuple(out)

        flat_results = [
            values[j][k] if j >= 0 else None for j, k in plan.fetch_locators
        ]
        return nest.pack_sequence_as(fetches, flat_results)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    # -- plan compilation -------------------------------------------------------

    def _compile(self, flat_fetches, feed_dict):
        fed_tensors = {id(t): t for t in feed_dict}
        for t in feed_dict:
            if not isinstance(t, Tensor) or t.graph is not self.graph:
                raise FetchError(f"Feed key {t!r} is not a tensor of this graph")

        fetch_tensors = []
        for f in flat_fetches:
            if isinstance(f, Tensor):
                if f.graph is not self.graph:
                    raise FetchError(f"Fetch {f.name!r} is not in this session's graph")
                fetch_tensors.append(f)
            elif isinstance(f, Operation):
                if f.graph is not self.graph:
                    raise FetchError(f"Fetch {f.name!r} is not in this session's graph")
                fetch_tensors.append(f.outputs[0] if f.outputs else None)
            elif f is None:
                fetch_tensors.append(None)
            else:
                # Variables fetch their read value.
                from .variables import Variable

                if isinstance(f, Variable):
                    fetch_tensors.append(f.value())
                else:
                    raise FetchError(
                        f"Cannot fetch object of type {type(f).__name__}: {f!r}"
                    )

        # Reverse reachability from fetches, stopping at fed tensors.
        needed = []
        seen = set()
        stack = [t.op for t in fetch_tensors if t is not None and id(t) not in fed_tensors]
        while stack:
            op = stack.pop()
            if id(op) in seen:
                continue
            seen.add(id(op))
            needed.append(op)
            for t in op.inputs:
                if id(t) in fed_tensors:
                    continue
                if id(t.op) not in seen:
                    stack.append(t.op)
            for c in op.control_inputs:
                if id(c) not in seen:
                    stack.append(c)

        # Topological order by creation index (graphs append in topo order;
        # control inputs always reference earlier ops).
        order = {id(op): i for i, op in enumerate(self.graph.ops)}
        needed.sort(key=lambda op: order[id(op)])

        slot_of = {id(op): i for i, op in enumerate(needed)}
        n_slots = len(needed)
        feed_slots = []
        # Feeds get dedicated slots appended after op slots.
        feed_slot_of = {}
        for t in feed_dict:
            feed_slot_of[id(t)] = n_slots
            feed_slots.append((t, n_slots))
            n_slots += 1

        def locator(tensor):
            if id(tensor) in feed_slot_of:
                return (feed_slot_of[id(tensor)], 0)
            return (slot_of[id(tensor.op)], tensor.value_index)

        steps = []
        for op in needed:
            if op.type == "Placeholder":
                if id(op.outputs[0]) not in feed_slot_of:
                    raise FetchError(
                        f"Placeholder {op.name!r} is required by the fetches but "
                        "was not fed"
                    )
                continue
            locators = tuple(locator(t) for t in op.inputs)
            runtime_attrs = {
                k: v for k, v in op.attrs.items() if not k.startswith("_")
            }
            kernel = op.op_def.kernel
            if runtime_attrs:
                import functools

                kernel = functools.partial(kernel, **runtime_attrs)
            steps.append(
                (
                    slot_of[id(op)],
                    kernel,
                    locators,
                    op.op_def.num_outputs == 1,
                    op.name,
                )
            )

        fetch_locators = []
        for t in fetch_tensors:
            if t is None:
                fetch_locators.append((-1, 0))
            else:
                fetch_locators.append(locator(t))

        return _CompiledPlan(steps, tuple(fetch_locators), tuple(feed_slots), n_slots, None)
