"""Variables: mutable state shared across session runs and eager code.

A ``Variable`` owns a :class:`VariableState` cell.  Reads and writes are
stateful ops whose kernels close over the cell, so the same variable works
in eager mode (immediate reads/writes) and in graph mode (read/assign
nodes executed by the session).  Graph-mode reads are cached per graph so
that ``gradients()`` can treat a variable as a single leaf tensor.
"""

from __future__ import annotations

import numpy as np

from .. import context, dtypes
from ..errors import UninitializedVariableError
from ..registry import OpDef, _REGISTRY
from ..shapes import TensorShape
from ..tensor_mixin import TensorOpsMixin

__all__ = ["Variable", "global_variables_initializer", "VariableState"]

_VAR_COUNTER = [0]


class VariableState:
    """The mutable storage cell behind a Variable."""

    __slots__ = ("value", "name")

    def __init__(self, name):
        self.value = None
        self.name = name

    def read(self):
        if self.value is None:
            raise UninitializedVariableError(
                f"Variable {self.name!r} was read before being initialized"
            )
        return self.value

    def write(self, value):
        self.value = np.asarray(value)
        return self.value

    def add(self, delta):
        # np.asarray: 0-d arithmetic yields numpy *scalars*, whose
        # identity is unstable under re-wrapping — the eager value cache
        # (and with it tape gradients w.r.t. scalar variables) needs the
        # stored value to be the one ndarray object it hands out.
        self.value = np.asarray(self.read() + np.asarray(delta))
        return self.value

    def sub(self, delta):
        self.value = np.asarray(self.read() - np.asarray(delta))
        return self.value


def _make_stateful_op(name, kernel, dtype):
    """Register a per-variable op def (kernels close over the state cell)."""
    op_name = name
    i = 0
    while op_name in _REGISTRY:
        i += 1
        op_name = f"{name}_{i}"
    _REGISTRY[op_name] = OpDef(
        op_name, kernel, stateful=True,
        dtype_fn=lambda dts, attrs, _d=dtype: [_d],
    )
    return op_name


class Variable(TensorOpsMixin):
    """A mutable tensor-valued parameter."""

    def __init__(self, initial_value, name=None, dtype=None, trainable=True):
        _VAR_COUNTER[0] += 1
        self._name = name or f"Variable_{_VAR_COUNTER[0]}"
        from ..eager.tensor import EagerTensor

        if isinstance(initial_value, EagerTensor):
            initial_value = initial_value.numpy()
        init = np.asarray(initial_value)
        if dtype is not None:
            init = init.astype(dtypes.as_dtype(dtype).np_dtype)
        elif init.dtype == np.float64:
            init = init.astype(np.float32)
        self._dtype = dtypes.from_numpy(init.dtype)
        self._shape = TensorShape(init.shape)
        self._state = VariableState(self._name)
        self._initial_value = init
        self.trainable = trainable

        self._read_op_name = _make_stateful_op(
            f"ReadVariable_{self._name}", lambda: self._state.read(), self._dtype
        )
        self._assign_op_name = _make_stateful_op(
            f"AssignVariable_{self._name}", lambda v: self._state.write(v), self._dtype
        )
        self._assign_add_op_name = _make_stateful_op(
            f"AssignAddVariable_{self._name}", lambda v: self._state.add(v), self._dtype
        )
        self._assign_sub_op_name = _make_stateful_op(
            f"AssignSubVariable_{self._name}", lambda v: self._state.sub(v), self._dtype
        )

        # Per-graph caches.
        self._graph_reads = {}
        self._graph_initializers = {}
        self._eager_value_cache = None
        # Per-graph record of the first staged assign op, plus which
        # graphs we already warned about reading after it (see value()).
        self._graph_assigns = {}
        self._warned_read_after_assign = set()

        if context.executing_eagerly():
            self._state.write(init)
        else:
            g = context.get_default_graph()
            g.add_to_collection("variables", self)

    # -- metadata -------------------------------------------------------------

    @property
    def name(self):
        return self._name

    @property
    def dtype(self):
        return self._dtype

    @property
    def shape(self):
        return self._shape

    def numpy(self):
        return self._state.read()

    def read_hook(self):
        """The runtime's read-before-run hook: a zero-arg callable
        returning this variable's current value.

        Bound execution plans (``repro.runtime``) capture variables as
        runtime inputs and call this hook immediately before every run,
        so assignments between calls are visible with no retrace — while
        the per-call path skips the Python ``Variable`` wrapper (cache
        checks, EagerTensor re-wrapping) entirely.
        """
        return self._state.read

    # -- reads ------------------------------------------------------------------

    def value(self):
        """Current value: an EagerTensor (eager) or a cached read op (graph)."""
        from ..eager.tensor import EagerTensor

        if context.executing_eagerly():
            if (
                self._eager_value_cache is None
                or self._eager_value_cache.numpy() is not self._state.value
            ):
                self._eager_value_cache = EagerTensor(self._state.read())
            return self._eager_value_cache
        g = context.get_default_graph()
        cached = self._graph_reads.get(id(g))
        if cached is None:
            # A frozen trace (freeze_captures=True) can only bake
            # variables that already hold a value; variables *created
            # during* that trace are uninitialized until tracing ends,
            # so they keep a live read op instead.
            frozen_uninitialized = (
                getattr(g, "freeze_captures", False)
                and self._state.value is None
            )
            if getattr(g, "capture_external", False) and not frozen_uninitialized:
                # Top-level trace graph: the read is an external capture —
                # a runtime input re-resolved (re-read by the runtime's
                # read-before-run hook) on every call — so assignments
                # between calls are visible with no retrace, and export
                # can either freeze or checkpoint it.  Frozen traces bake
                # the current value as a Const instead.
                cached = g.capture_variable(self)
            else:
                op = g.create_op(
                    self._read_op_name, [], {}, name=f"{self._name}/read")
                cached = op.outputs[0]
                cached.set_shape(self._shape)
            self._graph_reads[id(g)] = cached
            # Let graph consumers (e.g. the repro.function tracing JIT)
            # discover which variables a trace reads, and where.
            g.add_to_collection("variable_reads", (self, cached))
        self._warn_read_after_assign(g, cached)
        return cached

    read_value = value

    def _warn_read_after_assign(self, g, read_tensor):
        """Loud trace-time diagnostic for the capture-read wart.

        In a top-level trace graph a variable read is an *external
        capture* — a runtime input resolved before the call runs.  A
        read staged *after* an in-trace assign therefore yields the
        variable's pre-call snapshot, not the assigned value; warn once
        per (variable, graph), naming both ops.
        """
        assign_name = self._graph_assigns.get(id(g))
        if (assign_name is None
                or id(g) in self._warned_read_after_assign
                or not getattr(g, "capture_external", False)
                or read_tensor.op.type != "Placeholder"):
            return
        self._warned_read_after_assign.add(id(g))
        import warnings

        warnings.warn(
            f"Variable {self._name!r} is read after the in-trace "
            f"assignment {assign_name!r}, but the read is the external "
            f"capture {read_tensor.op.name!r} — a runtime input resolved "
            "*before* the call runs — so it yields the variable's "
            "pre-call snapshot, not the value written by "
            f"{assign_name!r}. Read the variable before assigning, or "
            "use the assign op's returned tensor instead.",
            UserWarning,
            stacklevel=3,
        )

    # Allow variables to appear directly as op inputs: the dispatch layer
    # calls this to obtain a tensor.
    def _as_tensor(self):
        return self.value()

    def __array__(self, dtype=None):
        v = self._state.read()
        return v if dtype is None else v.astype(dtype)

    # -- writes ------------------------------------------------------------------

    def _apply(self, op_name, delta):
        from ..ops import dispatch

        result = dispatch.run_op(op_name, [delta], {})
        if context.has_default_graph():
            g = context.get_default_graph()
            staged = getattr(getattr(result, "op", None), "name", op_name)
            self._graph_assigns.setdefault(id(g), staged)
        self._eager_value_cache = None
        return result

    def assign(self, value):
        """Set the variable; returns the new value tensor."""
        return self._apply(self._assign_op_name, value)

    def assign_add(self, delta):
        return self._apply(self._assign_add_op_name, delta)

    def assign_sub(self, delta):
        return self._apply(self._assign_sub_op_name, delta)

    # -- graph initialization ------------------------------------------------------

    def initializer(self, graph):
        """Assign-op output initializing this variable in ``graph``."""
        cached = self._graph_initializers.get(id(graph))
        if cached is None:
            with graph.as_default():
                init_t = graph.constant(self._initial_value)
                op = graph.create_op(
                    self._assign_op_name, [init_t], {}, name=f"{self._name}/init"
                )
            cached = op.outputs[0]
            self._graph_initializers[id(graph)] = cached
        return cached

    def initialize(self):
        """Eagerly (re)initialize from the stored initial value."""
        self._state.write(self._initial_value)
        self._eager_value_cache = None

    def __repr__(self):
        return f"<Variable {self._name!r} shape={self._shape} dtype={self._dtype.name}>"


def global_variables_initializer(graph=None):
    """A fetchable op initializing every variable registered in ``graph``."""
    graph = graph or context.get_default_graph()
    inits = [v.initializer(graph) for v in graph.get_collection("variables")]
    with graph.as_default():
        op = graph.create_op("Group", inits, {}, name="init")
    return op.outputs[0]
