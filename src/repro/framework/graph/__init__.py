"""Graph execution mode: IR, tracing, session, control flow, autodiff."""

from .control_flow import cond, while_loop
from .func_graph import FuncGraph, execute_func_graph, trace_into_func_graph
from .gradients import gradients
from .graph import Graph, Operation, Tensor
from .optimize import count_ops, optimize_graph
from .serialize import GraphSerializationError, graph_from_def, graph_to_def
from .session import Session
from .tensor_array import TensorArray, TensorArrayValue
from .variables import Variable, global_variables_initializer

__all__ = [
    "Graph",
    "Operation",
    "Tensor",
    "FuncGraph",
    "trace_into_func_graph",
    "execute_func_graph",
    "Session",
    "cond",
    "while_loop",
    "TensorArray",
    "TensorArrayValue",
    "Variable",
    "global_variables_initializer",
    "gradients",
    "count_ops",
    "optimize_graph",
    "GraphSerializationError",
    "graph_to_def",
    "graph_from_def",
]
