"""TensorArray: a staged, dynamically-sized list of tensors.

Mirrors ``tf.TensorArray`` with flow-through (value) semantics: ``write``
returns a *new* TensorArray.  In graph mode the state travels through the
graph as a variant-typed "flow" tensor, which lets TensorArrays be loop
variables of ``while_loop``; in eager mode the state is held directly.

This is the data structure behind the paper's list overloads
(``ag.list_append`` / ``ag.stack`` with ``ag.set_element_type``) and the
hand-written dynamic RNN in Appendix A.
"""

from __future__ import annotations

import numpy as np

from .. import context, dtypes
from ..errors import InvalidArgumentError
from ..registry import register_op

__all__ = ["TensorArray", "TensorArrayValue"]


class TensorArrayValue:
    """Immutable runtime state: a tuple of element arrays."""

    __slots__ = ("items",)

    def __init__(self, items=()):
        self.items = tuple(items)

    def write(self, index, value):
        index = int(index)
        items = list(self.items)
        if index == len(items):
            items.append(value)
        elif 0 <= index < len(items):
            items[index] = value
        else:
            # Sparse writes grow with zero-size placeholders like TF grows
            # with unwritten elements; reading them is an error.
            while len(items) < index:
                items.append(None)
            items.append(value)
        return TensorArrayValue(items)

    def read(self, index):
        index = int(index)
        if not (0 <= index < len(self.items)) or self.items[index] is None:
            raise InvalidArgumentError(
                f"TensorArray: reading unwritten element {index}"
            )
        return self.items[index]

    def stack(self):
        if not self.items:
            return np.zeros((0,), dtype=np.float32)
        if any(item is None for item in self.items):
            raise InvalidArgumentError("TensorArray: stacking with unwritten elements")
        return np.stack([np.asarray(i) for i in self.items], axis=0)

    def size(self):
        return np.asarray(len(self.items), dtype=np.int32)

    def __len__(self):
        return len(self.items)

    def __repr__(self):
        return f"TensorArrayValue(size={len(self.items)})"


# -- kernels -----------------------------------------------------------------

register_op("TensorArrayNew", lambda size=0: TensorArrayValue([None] * int(size)),
            dtype_fn=lambda dts, attrs: [dtypes.variant])
register_op("TensorArrayWrite", lambda ta, i, v: ta.write(np.asarray(i), v),
            dtype_fn=lambda dts, attrs: [dtypes.variant])
register_op("TensorArrayRead", lambda ta, i: ta.read(np.asarray(i)))
register_op("TensorArrayStack", lambda ta: ta.stack())
register_op("TensorArraySize", lambda ta: ta.size(),
            dtype_fn=lambda dts, attrs: [dtypes.int32])
register_op("TensorArrayFromTensor",
            lambda t: TensorArrayValue([np.asarray(t)[i] for i in range(np.asarray(t).shape[0])]),
            dtype_fn=lambda dts, attrs: [dtypes.variant])


def _run(op_type, inputs, attrs=None):
    """Dispatch a TensorArray op in the current mode."""
    from ..ops import dispatch

    return dispatch.run_op(op_type, inputs, attrs or {})


class TensorArray:
    """User-facing TensorArray with value semantics."""

    __slots__ = ("element_dtype", "flow")

    def __init__(self, dtype=dtypes.float32, size=0, dynamic_size=True, flow=None,
                 clear_after_read=False, element_shape=None):
        self.element_dtype = dtypes.as_dtype(dtype)
        if flow is not None:
            self.flow = flow
        else:
            if isinstance(size, int):
                self.flow = _run("TensorArrayNew", [], {"size": size})
            else:
                # Tensor-valued size: stage through an op input instead.
                self.flow = _run("TensorArrayNewDynamic", [size])

    @classmethod
    def _from_flow(cls, dtype, flow):
        ta = object.__new__(cls)
        ta.element_dtype = dtypes.as_dtype(dtype)
        ta.flow = flow
        return ta

    def write(self, index, value):
        """Write ``value`` at ``index``; returns a new TensorArray."""
        new_flow = _run("TensorArrayWrite", [self.flow, index, value])
        return TensorArray._from_flow(self.element_dtype, new_flow)

    def read(self, index):
        return _run("TensorArrayRead", [self.flow, index])

    def stack(self):
        """Stack all elements along a new leading axis."""
        return _run("TensorArrayStack", [self.flow])

    def size(self):
        return _run("TensorArraySize", [self.flow])

    @classmethod
    def unstack(cls, tensor, dtype=dtypes.float32):
        """Build a TensorArray from the rows of ``tensor``."""
        flow = _run("TensorArrayFromTensor", [tensor])
        return cls._from_flow(dtype, flow)

    def __repr__(self):
        return f"<TensorArray dtype={self.element_dtype.name}>"


def _ta_new_dynamic_kernel(size):
    return TensorArrayValue([None] * int(np.asarray(size)))


register_op("TensorArrayNewDynamic", _ta_new_dynamic_kernel,
            dtype_fn=lambda dts, attrs: [dtypes.variant])
