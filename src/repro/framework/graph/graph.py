"""The dataflow graph IR: ``Graph``, ``Operation`` and symbolic ``Tensor``.

This is the reproduction's stand-in for the TensorFlow GraphDef/Session
substrate the paper stages into.  A graph is a DAG of ``Operation`` nodes;
each operation references an :class:`~repro.framework.registry.OpDef`
kernel that the session binds into a compiled execution plan.

Key semantic properties preserved from TensorFlow (these matter to
AutoGraph's dynamic dispatch):

- Symbolic tensors raise on ``__bool__``: data-dependent Python ``if``
  statements on graph tensors fail loudly, which is exactly the usability
  problem AutoGraph solves (paper Section 3).
- ``==`` on tensors is identity, not a staged op (paper Section 7.2,
  "Tensor does not support all operators for compatibility reasons").
"""

from __future__ import annotations

import contextlib

import numpy as np

from .. import context, dtypes
from ..errors import GraphError
from ..registry import get_op_def
from ..shapes import TensorShape, unknown
from ..tensor_mixin import TensorOpsMixin

__all__ = ["Graph", "Operation", "Tensor"]


class Tensor(TensorOpsMixin):
    """A symbolic handle to one output of an :class:`Operation`."""

    __slots__ = ("op", "value_index", "_dtype", "_shape")

    def __init__(self, op, value_index, dtype, shape):
        self.op = op
        self.value_index = value_index
        self._dtype = dtypes.as_dtype(dtype)
        self._shape = TensorShape(shape) if not isinstance(shape, TensorShape) else shape

    @property
    def graph(self):
        return self.op.graph

    @property
    def dtype(self):
        return self._dtype

    @property
    def shape(self):
        return self._shape

    @property
    def name(self):
        return f"{self.op.name}:{self.value_index}"

    def set_shape(self, shape):
        """Refine the static shape (merging with what is already known)."""
        self._shape = self._shape.merge_with(shape)

    def __bool__(self):
        raise TypeError(
            "Using a symbolic Tensor as a Python bool is not allowed. "
            "A graph tensor has no value until the graph runs; use "
            "AutoGraph (ag.convert) to stage data-dependent control flow, "
            "or Session.run to obtain a concrete value."
        )

    def __iter__(self):
        raise TypeError(
            "Iterating over a symbolic Tensor is not allowed; use AutoGraph "
            "to stage the loop into the graph."
        )

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other

    def __ne__(self, other):
        return self is not other

    def __repr__(self):
        return f"<Tensor {self.name!r} shape={self._shape} dtype={self._dtype.name}>"


class Operation:
    """A node in the graph: an op type, inputs, attrs and output tensors."""

    __slots__ = ("graph", "name", "op_def", "inputs", "attrs", "outputs", "control_inputs")

    def __init__(self, graph, op_def, inputs, attrs, name, control_inputs=()):
        self.graph = graph
        self.op_def = op_def
        self.name = name
        self.inputs = tuple(inputs)
        self.attrs = dict(attrs)
        self.control_inputs = list(control_inputs)

        out_dtypes, out_shapes = self._infer_metadata()
        self.outputs = tuple(
            Tensor(self, i, out_dtypes[i], out_shapes[i])
            for i in range(op_def.num_outputs)
        )

    @property
    def type(self):
        return self.op_def.name

    def get_attr(self, name, default=None):
        return self.attrs.get(name, default)

    def add_control_input(self, op):
        if op.graph is not self.graph:
            raise GraphError("Control input from a different graph")
        if op is not self and op not in self.control_inputs:
            self.control_inputs.append(op)
            self.graph._bump_version()

    def _infer_metadata(self):
        n = self.op_def.num_outputs
        input_dtypes = [t.dtype for t in self.inputs]
        input_shapes = [t.shape for t in self.inputs]
        if self.op_def.dtype_fn is not None:
            try:
                out_dtypes = self.op_def.dtype_fn(input_dtypes, self.attrs)
            except Exception:
                out_dtypes = [dtypes.variant] * n
        elif input_dtypes:
            out_dtypes = [input_dtypes[0]] * n
        else:
            out_dtypes = [dtypes.variant] * n
        if self.op_def.shape_fn is not None:
            try:
                out_shapes = self.op_def.shape_fn(input_shapes, self.attrs)
            except Exception:
                out_shapes = [unknown] * n
        else:
            out_shapes = [unknown] * n
        # Explicit overrides used by placeholder/const/functional ops.
        if "_dtype_override" in self.attrs:
            out_dtypes = list(self.attrs["_dtype_override"])
        if "_shape_override" in self.attrs:
            out_shapes = [
                s if isinstance(s, TensorShape) else TensorShape(s)
                for s in self.attrs["_shape_override"]
            ]
        return out_dtypes, out_shapes

    def __repr__(self):
        return f"<Operation {self.name!r} type={self.type}>"


class Graph:
    """A mutable dataflow graph under construction."""

    def __init__(self, name="graph"):
        self.name = name
        self.ops = []
        self._names = {}
        self._scope_stack = []
        self._version = 0
        self.collections = {}
        # Constant-dedup cache: scalar/py constants are extremely common in
        # generated code; reusing Const nodes keeps plans small.
        self._const_cache = {}

    # -- context -----------------------------------------------------------

    @contextlib.contextmanager
    def as_default(self):
        context.push_graph(self)
        try:
            yield self
        finally:
            context.pop_graph(self)

    @contextlib.contextmanager
    def name_scope(self, name):
        """Hierarchical op naming, for graph readability (paper §7.2)."""
        self._scope_stack.append(str(name))
        try:
            yield "/".join(self._scope_stack)
        finally:
            self._scope_stack.pop()

    # -- versioning (invalidates compiled session plans) ---------------------

    @property
    def version(self):
        return self._version

    def _bump_version(self):
        self._version += 1

    # -- construction --------------------------------------------------------

    def unique_name(self, base):
        if self._scope_stack:
            base = "/".join(self._scope_stack) + "/" + base
        count = self._names.get(base)
        if count is None:
            self._names[base] = 1
            return base
        self._names[base] = count + 1
        return f"{base}_{count}"

    def create_op(self, op_type, inputs, attrs=None, name=None, control_inputs=()):
        """Add an operation to this graph.

        All tensor inputs must already belong to this graph (the dispatch
        layer handles conversion and capture before calling this).
        """
        op_def = get_op_def(op_type)
        for t in inputs:
            if not isinstance(t, Tensor):
                raise GraphError(
                    f"create_op inputs must be symbolic Tensors, got {type(t).__name__}"
                )
            if t.graph is not self:
                raise GraphError(
                    f"Input {t.name!r} belongs to a different graph; it must be "
                    "captured first"
                )
        op = Operation(
            self,
            op_def,
            inputs,
            attrs or {},
            self.unique_name(name or op_type),
            control_inputs=control_inputs,
        )
        self.ops.append(op)
        self._bump_version()
        return op

    def constant(self, value, dtype=None, name="Const"):
        """Create (or reuse) a Const op for ``value``."""
        if dtype is not None:
            np_value = np.asarray(value, dtype=dtypes.as_dtype(dtype).np_dtype)
        else:
            np_value = np.asarray(value)
            # Python literals default to the framework's narrow types
            # (float32/int32), like TF.
            if np_value.dtype == np.float64 and isinstance(value, (float, list, tuple)):
                np_value = np_value.astype(np.float32)
            elif np_value.dtype == np.int64 and isinstance(value, (int, bool, list, tuple)):
                np_value = np_value.astype(np.int32)
        key = None
        if np_value.ndim == 0 and not self._scope_stack:
            key = (np_value.dtype.str, np_value.item())
            cached = self._const_cache.get(key)
            if cached is not None:
                return cached
        op = self.create_op("Const", [], {"value": np_value}, name=name)
        out = op.outputs[0]
        if key is not None:
            self._const_cache[key] = out
        return out

    def placeholder(self, dtype, shape=None, name="Placeholder"):
        op = self.create_op(
            "Placeholder",
            [],
            {
                "_dtype_override": [dtypes.as_dtype(dtype)],
                "_shape_override": [TensorShape(shape)],
            },
            name=name,
        )
        return op.outputs[0]

    # -- collections ----------------------------------------------------------

    def add_to_collection(self, key, value):
        self.collections.setdefault(key, []).append(value)

    def get_collection(self, key):
        return list(self.collections.get(key, ()))

    # -- introspection ----------------------------------------------------------

    def get_operation_by_name(self, name):
        for op in self.ops:
            if op.name == name:
                return op
        raise KeyError(f"No op named {name!r} in graph")

    def __repr__(self):
        return f"<Graph {self.name!r} with {len(self.ops)} ops>"
