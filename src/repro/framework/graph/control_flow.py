"""Functional control flow ops: ``cond`` and ``while_loop``.

These are the graph constructs the paper's Section 3 calls "cumbersome":
branches and loop bodies must be expressed as Python callables which are
traced once into subgraphs (:class:`FuncGraph`).  AutoGraph's entire
purpose is to generate calls to these from idiomatic ``if``/``while``/
``for`` statements.

Consistency requirements (paper Appendix E: "all code paths must produce
consistent value") are enforced here with :class:`StagingError`.
"""

from __future__ import annotations

import numpy as np

from .. import nest
from ..errors import StagingError
from ..registry import register_op
from .func_graph import FuncGraph, execute_func_graph, trace_into_func_graph
from .graph import Tensor

__all__ = ["cond", "while_loop"]


# ---------------------------------------------------------------------------
# Composite expansion: TensorArray objects flow through control-flow ops as
# their variant-typed flow tensor and are re-wrapped on the way out.
# ---------------------------------------------------------------------------


def _expand_composites(flat_values):
    """Map composite values to flow tensors; return (flat, rebuilders)."""
    from .tensor_array import TensorArray

    expanded = []
    rebuilders = []
    for v in flat_values:
        if isinstance(v, TensorArray):
            expanded.append(v.flow)
            dtype = v.element_dtype
            rebuilders.append(lambda flow, _dt=dtype: TensorArray._from_flow(_dt, flow))
        else:
            expanded.append(v)
            rebuilders.append(None)
    return expanded, rebuilders


def _rebuild_composites(flat_values, rebuilders):
    return [
        rb(v) if rb is not None else v for v, rb in zip(flat_values, rebuilders)
    ]


def _convert_flat(values, graph):
    """Convert flat python/np leaves to tensors of ``graph`` (with capture)."""
    from ..ops import dispatch as ops_dispatch

    out = []
    for v in values:
        out.append(ops_dispatch.as_graph_tensor(v, graph))
    return out


# ---------------------------------------------------------------------------
# cond
# ---------------------------------------------------------------------------


def _cond_kernel(pred, *capture_values, true_graph=None, false_graph=None, n_true=0):
    if bool(np.asarray(pred)):
        return _run_branch(true_graph, capture_values[:n_true])
    return _run_branch(false_graph, capture_values[n_true:])


def _run_branch(fg, capture_values):
    out = execute_func_graph(fg, (), capture_values)
    return out if len(out) != 1 else out[0]


register_op("Cond", _cond_kernel, num_outputs=1, stateful=True)
# Cond is registered with a single output by default; multi-output variants
# are instantiated below via the `_dtype_override` mechanism plus a
# specialized OpDef per arity.

_COND_DEFS = {1: None}


def _get_cond_def(n_outputs):
    """Cond op with ``n_outputs`` outputs (registered lazily per arity)."""
    from ..registry import _REGISTRY, OpDef, get_op_def

    if n_outputs == 1:
        return "Cond"
    name = f"Cond_{n_outputs}"
    if name not in _REGISTRY:
        _REGISTRY[name] = OpDef(
            name, _cond_kernel, num_outputs=n_outputs, stateful=True
        )
    return name


def cond(pred, true_fn, false_fn, name="cond"):
    """Stage a data-dependent conditional into the default graph.

    Both branches are traced; their outputs must match in structure and
    dtype.  Returns the branch output structure with symbolic tensors.
    """
    from .. import context

    graph = context.get_default_graph()
    if not isinstance(pred, Tensor):
        pred = _convert_flat([pred], graph)[0]

    tg = trace_into_func_graph(true_fn, [], f"{name}_true", graph)
    fg = trace_into_func_graph(false_fn, [], f"{name}_false", graph)

    t_out = tg.structured_outputs
    f_out = fg.structured_outputs
    try:
        nest.assert_same_structure(t_out, f_out, "cond branches")
    except ValueError as e:
        raise StagingError(
            f"cond: true_fn and false_fn must return the same structure: {e}"
        ) from e

    t_flat, t_rebuild = _expand_composites(nest.flatten(t_out))
    f_flat, f_rebuild = _expand_composites(nest.flatten(f_out))
    with tg.as_default():
        t_flat = _convert_flat(t_flat, tg)
    with fg.as_default():
        f_flat = _convert_flat(f_flat, fg)

    for i, (tt, ft) in enumerate(zip(t_flat, f_flat)):
        # Variant is the opaque escape hatch (TensorArrays, undefined-return
        # markers); it pairs with anything.
        if "variant" in (tt.dtype.name, ft.dtype.name):
            continue
        if tt.dtype != ft.dtype:
            raise StagingError(
                f"cond: branch output {i} has dtype {tt.dtype.name} in true_fn "
                f"but {ft.dtype.name} in false_fn; staged conditionals require "
                "consistent values on all code paths"
            )

    tg.flat_outputs = t_flat
    fg.flat_outputs = f_flat

    n_out = len(t_flat)
    if n_out == 0:
        raise StagingError(
            "cond: staged conditional branches must produce at least one value"
        )

    inputs = [pred] + tg.captures + fg.captures
    shapes = [
        tt.shape.merge_with(ft.shape) if tt.shape.is_compatible_with(ft.shape)
        else type(tt.shape)(None)
        for tt, ft in zip(t_flat, f_flat)
    ]
    op = graph.create_op(
        _get_cond_def(n_out),
        inputs,
        {
            "true_graph": tg,
            "false_graph": fg,
            "n_true": len(tg.captures),
            "_dtype_override": [t.dtype for t in t_flat],
            "_shape_override": shapes,
        },
        name=name,
    )
    flat_results = _rebuild_composites(list(op.outputs), t_rebuild)
    return nest.pack_sequence_as(t_out, flat_results)


# ---------------------------------------------------------------------------
# while_loop
# ---------------------------------------------------------------------------


def _while_kernel(*args, cond_graph=None, body_graph=None, n_vars=0,
                  n_cond_caps=0, maximum_iterations=None):
    loop_vars = list(args[:n_vars])
    cond_caps = args[n_vars:n_vars + n_cond_caps]
    body_caps = args[n_vars + n_cond_caps:]
    iterations = 0
    while True:
        keep_going = execute_func_graph(cond_graph, loop_vars, cond_caps)[0]
        if not bool(np.asarray(keep_going)):
            break
        if maximum_iterations is not None and iterations >= maximum_iterations:
            break
        loop_vars = list(execute_func_graph(body_graph, loop_vars, body_caps))
        iterations += 1
    return tuple(loop_vars) if n_vars != 1 else loop_vars[0]


def _get_while_def(n_outputs):
    from ..registry import _REGISTRY, OpDef

    name = "While" if n_outputs == 1 else f"While_{n_outputs}"
    if name not in _REGISTRY:
        _REGISTRY[name] = OpDef(
            name, _while_kernel, num_outputs=n_outputs, stateful=True
        )
    return name


def while_loop(cond_fn, body_fn, loop_vars, maximum_iterations=None,
               parallel_iterations=None, name="while"):
    """Stage a while loop into the default graph.

    Args:
      cond_fn: callable(*loop_vars) -> boolean tensor.
      body_fn: callable(*loop_vars) -> updated loop_vars structure.
      loop_vars: tuple/list of initial loop variables (tensors, python
        numbers, or composites like TensorArray).
      maximum_iterations: optional python int bound.
      parallel_iterations: accepted for API parity; ignored.

    Returns:
      The final loop variables, matching the input structure.
    """
    from .. import context

    graph = context.get_default_graph()
    loop_vars = tuple(loop_vars)
    if not loop_vars:
        raise StagingError("while_loop requires at least one loop variable")

    flat_init = nest.flatten(list(loop_vars))
    expanded_init, rebuilders = _expand_composites(flat_init)
    expanded_init = _convert_flat(expanded_init, graph)
    n_vars = len(expanded_init)

    arg_specs = [(t.dtype, t.shape) for t in expanded_init]

    def make_callable(user_fn, wrap_result=False):
        def traced(*flat_args):
            rebuilt = _rebuild_composites(list(flat_args), rebuilders)
            structured = nest.pack_sequence_as(list(loop_vars), rebuilt)
            return user_fn(*structured)

        return traced

    cg = trace_into_func_graph(make_callable(cond_fn), arg_specs,
                               f"{name}_cond", graph)
    bg = trace_into_func_graph(make_callable(body_fn), arg_specs,
                               f"{name}_body", graph)

    # Condition output: a single boolean.
    cond_out = cg.structured_outputs
    with cg.as_default():
        cond_flat = _convert_flat([cond_out], cg)
    cg.flat_outputs = cond_flat

    # Body output: must match loop var structure.
    body_out = bg.structured_outputs
    if isinstance(body_out, tuple) and len(loop_vars) == 1 and len(body_out) != 1:
        # Allow body to return the single var unwrapped.
        pass
    if len(loop_vars) == 1 and not (isinstance(body_out, (list, tuple)) and len(body_out) == 1):
        body_out = (body_out,)
    try:
        nest.assert_same_structure(list(loop_vars), list(body_out), "while body")
    except ValueError as e:
        raise StagingError(
            f"while_loop: body must return the same structure as loop_vars: {e}"
        ) from e

    body_flat, _ = _expand_composites(nest.flatten(list(body_out)))
    with bg.as_default():
        body_flat = _convert_flat(body_flat, bg)
    for i, (init_t, out_t) in enumerate(zip(expanded_init, body_flat)):
        if "variant" in (init_t.dtype.name, out_t.dtype.name):
            continue
        if init_t.dtype != out_t.dtype:
            raise StagingError(
                f"while_loop: loop variable {i} enters with dtype "
                f"{init_t.dtype.name} but the body produces {out_t.dtype.name}; "
                "staged loops require consistent variable types"
            )
    bg.flat_outputs = body_flat

    inputs = list(expanded_init) + cg.captures + bg.captures
    op = graph.create_op(
        _get_while_def(n_vars),
        inputs,
        {
            "cond_graph": cg,
            "body_graph": bg,
            "n_vars": n_vars,
            "n_cond_caps": len(cg.captures),
            "maximum_iterations": maximum_iterations,
            "_dtype_override": [t.dtype for t in expanded_init],
            "_shape_override": [
                init_t.shape if init_t.shape == out_t.shape else type(init_t.shape)(None)
                for init_t, out_t in zip(expanded_init, body_flat)
            ],
        },
        name=name,
    )
    flat_results = _rebuild_composites(list(op.outputs), rebuilders)
    result = nest.pack_sequence_as(list(loop_vars), flat_results)
    return tuple(result)
