"""Graph-mode reverse automatic differentiation.

``gradients(ys, xs)`` walks the graph backwards from ``ys`` and emits new
gradient ops into the same graph.  Combined with ``while_loop`` this is
what makes the paper's *in-graph training loop* (Table 2) possible: the
gradient ops are built once at staging time, inside the loop body's
FuncGraph, and then executed repeatedly without touching Python.
"""

from __future__ import annotations

from .. import context
from ..errors import StagingError
from .graph import Tensor

__all__ = ["gradients"]


def gradients(ys, xs, grad_ys=None, name="gradients"):
    """Symbolic derivatives of ``sum(ys)`` with respect to ``xs``.

    Args:
      ys: tensor or list of tensors to differentiate.
      xs: tensor / Variable or list thereof to differentiate against.
      grad_ys: optional seed gradients, parallel to ``ys``.

    Returns:
      A list of gradient tensors parallel to ``xs`` (or a single tensor if
      ``xs`` was a single tensor); entries are None where there is no path.
    """
    from ..graph.variables import Variable
    from ..ops import array_ops, math_ops

    single_y = isinstance(ys, Tensor)
    ys = [ys] if single_y else list(ys)
    single_x = not isinstance(xs, (list, tuple))
    xs = [xs] if single_x else list(xs)

    graph = ys[0].graph
    for y in ys:
        if y.graph is not graph:
            raise StagingError("gradients: all ys must be in the same graph")

    x_tensors = []
    for x in xs:
        if isinstance(x, Variable):
            with graph.as_default():
                x = x.value()
        if not isinstance(x, Tensor):
            raise StagingError(f"gradients: invalid differentiation target {x!r}")
        x_tensors.append(x)

    # Forward reachability from xs.
    reaches_x = set(id(t) for t in x_tensors)
    for op in graph.ops:
        if any(id(t) in reaches_x for t in op.inputs):
            for out in op.outputs:
                reaches_x.add(id(out))

    # Backward reachability from ys, restricted to the x-reaching region.
    needed_ops = []
    seen = set()
    stack = [y.op for y in ys]
    while stack:
        op = stack.pop()
        if id(op) in seen:
            continue
        seen.add(id(op))
        if not any(id(out) in reaches_x for out in op.outputs):
            continue
        needed_ops.append(op)
        for t in op.inputs:
            if id(t.op) not in seen:
                stack.append(t.op)

    order = {id(op): i for i, op in enumerate(graph.ops)}
    needed_ops.sort(key=lambda op: order[id(op)])

    grads = {}
    with graph.as_default(), graph.name_scope(name):
        if grad_ys is None:
            for y in ys:
                grads[id(y)] = array_ops.ones_like(y)
        else:
            grad_ys_list = [grad_ys] if isinstance(grad_ys, Tensor) else list(grad_ys)
            for y, gy in zip(ys, grad_ys_list):
                grads[id(y)] = gy

        for op in reversed(needed_ops):
            out_grads = [grads.get(id(out)) for out in op.outputs]
            if all(g is None for g in out_grads):
                continue
            if op.op_def.grad_fn is None:
                if any(id(t) in reaches_x for t in op.inputs):
                    raise StagingError(
                        f"gradients: op {op.name!r} of type {op.type!r} on the "
                        "differentiation path has no registered gradient"
                    )
                continue
            filled = [
                g if g is not None else array_ops.zeros_like(out)
                for g, out in zip(out_grads, op.outputs)
            ]
            input_grads = op.op_def.grad_fn(op, *filled)
            if not isinstance(input_grads, (list, tuple)):
                input_grads = [input_grads]
            for inp, g in zip(op.inputs, input_grads):
                if g is None:
                    continue
                if id(inp) not in reaches_x:
                    continue
                existing = grads.get(id(inp))
                grads[id(inp)] = g if existing is None else math_ops.add(existing, g)

    results = [grads.get(id(x)) for x in x_tensors]
    return results[0] if single_x else results
