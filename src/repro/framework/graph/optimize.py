"""Whole-graph optimizations: the payoff of staging.

The paper's premise is that a lowered IR "can be readily optimized".
This module implements three classic rewrites over our graph IR:

- **dead-node elimination** relative to a set of fetches,
- **constant folding** of stateless ops with all-constant inputs,
- **common-subexpression elimination** of identical stateless ops.

They operate by building a *new* graph and returning a tensor mapping, so
callers re-point their fetch handles.  ``Session`` does not run these
automatically (plans are already pruned); they exist as a user-facing
optimization pass and for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph, Tensor

__all__ = ["optimize_graph", "count_ops", "has_opaque_attrs"]

# Attrs that reference subgraphs or runtime state; ops carrying these are
# never folded or deduplicated.
_OPAQUE_ATTRS = ("true_graph", "false_graph", "cond_graph", "body_graph")


def count_ops(graph, op_type=None):
    """Number of ops (optionally of one type) in ``graph``."""
    if op_type is None:
        return len(graph.ops)
    return sum(1 for op in graph.ops if op.type == op_type)


def _attr_key(attrs):
    try:
        return tuple(sorted((k, _freeze(v)) for k, v in attrs.items()))
    except TypeError:
        return None


def _freeze(value):
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    hash(value)
    return value


def optimize_graph(graph, fetches, fold_constants=True, cse=True):
    """Optimize ``graph`` for ``fetches``.

    Args:
      graph: the source graph (not modified).
      fetches: list of tensors that must remain computable.
      fold_constants: evaluate stateless all-constant ops at optimization
        time and replace them with Const nodes.
      cse: merge structurally identical stateless ops.

    Returns:
      ``(new_graph, tensor_map)`` where ``tensor_map`` maps old fetch
      tensors to their replacements in ``new_graph``.
    """
    fetches = list(fetches)
    for f in fetches:
        if not isinstance(f, Tensor) or f.graph is not graph:
            raise ValueError(f"Fetch {f!r} is not a tensor of the given graph")

    # 1. Dead-node elimination: reverse reachability.
    needed = set()
    stack = [f.op for f in fetches]
    while stack:
        op = stack.pop()
        if id(op) in needed:
            continue
        needed.add(id(op))
        for t in op.inputs:
            stack.append(t.op)
        for c in op.control_inputs:
            stack.append(c)

    new_graph = Graph(name=f"{graph.name}_opt")
    tensor_map = {}
    op_map = {}
    # CSE table: (type, input ids, attr key) -> new op.
    cse_table = {}
    # Constant values available at fold time: new tensor id -> ndarray.
    const_values = {}

    for op in graph.ops:
        if id(op) not in needed:
            continue
        new_inputs = [tensor_map[id(t)] for t in op.inputs]
        new_controls = [op_map[id(c)] for c in op.control_inputs if id(c) in op_map]
        attr_key = None if _has_opaque_attrs(op) else _attr_key(op.attrs)
        # Placeholders are never pure: two inputs with identical dtype and
        # shape are still distinct inputs and must not be CSE-merged.
        is_pure = (
            not op.op_def.stateful
            and attr_key is not None
            and op.type != "Placeholder"
        )

        # Constant folding.
        if (
            fold_constants
            and is_pure
            and new_inputs
            and all(id(t) in const_values for t in new_inputs)
        ):
            try:
                values = [const_values[id(t)] for t in new_inputs]
                result = op.op_def.kernel(*values, **op.attrs)
            except Exception:
                result = None
            if result is not None and op.op_def.num_outputs == 1 and isinstance(
                result, (np.ndarray, np.generic, int, float, bool)
            ):
                folded = new_graph.constant(np.asarray(result), name=f"{op.name}_folded")
                const_values[id(folded)] = np.asarray(result)
                tensor_map[id(op.outputs[0])] = folded
                op_map[id(op)] = folded.op
                continue

        # CSE.
        if cse and is_pure:
            key = (op.type, tuple(id(t) for t in new_inputs), attr_key)
            hit = cse_table.get(key)
            if hit is not None:
                op_map[id(op)] = hit
                for old_out, new_out in zip(op.outputs, hit.outputs):
                    tensor_map[id(old_out)] = new_out
                continue

        new_op = new_graph.create_op(
            op.type, new_inputs, dict(op.attrs), name=op.name.rsplit("/", 1)[-1],
            control_inputs=new_controls,
        )
        op_map[id(op)] = new_op
        for old_out, new_out in zip(op.outputs, new_op.outputs):
            tensor_map[id(old_out)] = new_out
        if op.type == "Const":
            const_values[id(new_op.outputs[0])] = op.attrs["value"]
        if cse and is_pure:
            cse_table[(op.type, tuple(id(t) for t in new_inputs), attr_key)] = new_op

    return new_graph, {f: tensor_map[id(f)] for f in fetches}


def has_opaque_attrs(op):
    """True if ``op`` carries subgraph/runtime-state attrs.

    Such ops (Cond, While, functional bodies) are opaque to value-level
    rewrites: neither :func:`optimize_graph` nor the runtime planner's
    constant pre-evaluation may fold or deduplicate them.
    """
    return any(k in op.attrs for k in _OPAQUE_ATTRS)


_has_opaque_attrs = has_opaque_attrs
