"""Tracing Python callables into subgraphs with outer-tensor capture.

``FuncGraph`` is how functional control-flow ops (``cond``, ``while_loop``)
obtain their branch/body subgraphs: the Python callable runs once with
symbolic placeholders, and any outer-graph tensor it touches is
transparently *captured* (replaced by a placeholder recorded in
``captures``), becoming an extra runtime input of the enclosing op.

Top-level trace graphs (``capture_external=True``, set by the
``repro.function`` tracer) additionally capture *concrete* outside state
— eager tensors and ``Variable`` reads — as **external captures**:
internal placeholders recorded in an ordered list, deduplicated by
source identity, whose runtime values are resolved fresh on every call.
This is what makes a weight-carrying closure mutable without retracing:
the weights are runtime inputs of the compiled plan, not baked ``Const``
nodes.
"""

from __future__ import annotations

import numpy as np

from .. import context, dtypes
from ..errors import GraphError
from ..shapes import unknown
from .graph import Graph, Tensor

__all__ = ["ExternalCapture", "FuncGraph", "trace_into_func_graph",
           "execute_func_graph"]


class ExternalCapture:
    """One concrete value captured from outside a trace.

    Attributes:
      placeholder: the internal placeholder standing for the value.
      kind: ``"variable"`` (re-read on every resolve) or ``"tensor"``
        (an eager tensor snapshot).
      source: the captured ``Variable`` or ``EagerTensor``.
      name: a stable, capture-list-unique label (the variable's name, or
        ``capture_<i>`` for anonymous tensors) used by non-frozen export
        and weight hot-swapping.
    """

    __slots__ = ("placeholder", "kind", "source", "name")

    def __init__(self, placeholder, kind, source, name):
        self.placeholder = placeholder
        self.kind = kind
        self.source = source
        self.name = name

    def resolve(self):
        """The capture's *current* runtime value (ndarray)."""
        if self.kind == "variable":
            return self.source._state.read()
        return self.source.numpy()

    def reader(self):
        """A zero-arg callable the runtime invokes *before each run* to
        re-resolve this capture — the read-before-run hook, pre-bound so
        the per-call path skips kind dispatch and wrapper attribute
        lookups."""
        if self.kind == "variable":
            return self.source.read_hook()
        return self.source.numpy

    def __repr__(self):
        return (f"<ExternalCapture {self.name!r} kind={self.kind} "
                f"dtype={self.placeholder.dtype.name} "
                f"shape={self.placeholder.shape}>")


class FuncGraph(Graph):
    """A graph produced by tracing a Python function."""

    def __init__(self, name, outer_graph, capture_external=False,
                 freeze_captures=False):
        super().__init__(name=name)
        self.outer_graph = outer_graph
        # Parallel lists: captures[i] is the outer tensor whose runtime
        # value feeds capture_placeholders[i].
        self.captures = []
        self.capture_placeholders = []
        # Whether concrete outside values (eager tensors, Variable reads)
        # become ExternalCaptures instead of baked Const nodes.  True only
        # for top-level trace graphs.
        self.capture_external = capture_external
        # With freeze_captures, concrete outside values are resolved *at
        # trace time* and baked as Const nodes — no runtime inputs, no
        # hot-swapping, but constant folding sees right through the
        # weights.  For closures that really are constant.
        self.freeze_captures = freeze_captures
        # Ordered ExternalCapture entries, deduplicated by source identity.
        self.external_captures = []
        self._external_capture_index = {}
        self._frozen_capture_index = {}
        # Declared inputs (loop variables / branch parameters).
        self.inputs = []
        # Flat output tensors, set when tracing finishes.
        self.flat_outputs = []
        # Structured outputs (the traced function's return value, with
        # placeholders substituted), kept for structure checks.
        self.structured_outputs = None
        # Compiled plan cache (set by execute_func_graph).
        self._plan = None
        self._plan_version = -1

    def add_input(self, dtype, shape=None, name="arg"):
        ph = self.placeholder(dtype, shape=shape, name=name)
        self.inputs.append(ph)
        return ph

    def capture(self, tensor):
        """Make ``tensor`` (from an outer graph) available inside this graph."""
        if isinstance(tensor, Tensor):
            if tensor.graph is self:
                return tensor
            for existing, ph in zip(self.captures, self.capture_placeholders):
                if existing is tensor:
                    return ph
            outer = tensor
            if tensor.graph is not self.outer_graph:
                # Capture transitively through intermediate func graphs.
                if isinstance(self.outer_graph, FuncGraph):
                    outer = self.outer_graph.capture(tensor)
                elif tensor.graph is not self.outer_graph:
                    # Tensor from an unrelated graph: structural error.
                    raise GraphError(
                        f"Cannot capture {tensor.name!r}: its graph is not an "
                        f"ancestor of {self.name!r}"
                    )
            ph = self.placeholder(tensor.dtype, shape=tensor.shape, name="capture")
            self.captures.append(outer)
            self.capture_placeholders.append(ph)
            return ph
        raise GraphError(f"Cannot capture non-Tensor {tensor!r}")

    # -- external (concrete-value) captures ---------------------------------

    def _capture_concrete(self, source, kind, dtype, shape, name):
        if self.freeze_captures:
            cached = self._frozen_capture_index.get(id(source))
            if cached is not None:
                return cached[1]
            value = (source._state.read() if kind == "variable"
                     else source.numpy())
            const = self.constant(
                np.asarray(value), name=name or "frozen_capture")
            # The entry pins `source`: the index is keyed by id(), and a
            # source garbage-collected mid-trace could otherwise recycle
            # its id into a *different* object, handing that object this
            # stale baked constant.
            self._frozen_capture_index[id(source)] = (source, const)
            return const
        entry = self._external_capture_index.get(id(source))
        if entry is not None:
            return entry.placeholder
        taken = {e.name for e in self.external_captures}
        if name is None or name in taken:
            base = name or "capture"
            i = len(self.external_captures)
            name = f"{base}_{i}"
            while name in taken:
                i += 1
                name = f"{base}_{i}"
        ph = self.placeholder(dtype, shape=shape, name=name)
        entry = ExternalCapture(ph, kind, source, name)
        self.external_captures.append(entry)
        self._external_capture_index[id(source)] = entry
        return ph

    def capture_eager(self, tensor):
        """Capture an eager tensor as a runtime input (placeholder).

        The placeholder is fed ``tensor``'s value on every call, so
        in-place updates of the underlying array stay visible without a
        retrace.  Deduplicated by tensor identity.
        """
        return self._capture_concrete(
            tensor, "tensor", tensor.dtype, tensor.shape, name=None)

    def capture_variable(self, var):
        """Capture a ``Variable`` read as a runtime input (placeholder).

        The variable is *re-read* on every call, so assignments between
        calls (optimizer steps, weight hot-swaps) are visible to the
        compiled plan with no retrace.  Deduplicated by variable identity.
        """
        return self._capture_concrete(
            var, "variable", var.dtype, var.shape, name=var.name)


def trace_into_func_graph(fn, arg_specs, name, outer_graph):
    """Run ``fn`` symbolically, returning the populated FuncGraph.

    Args:
      fn: a Python callable taking ``len(arg_specs)`` tensors.
      arg_specs: list of ``(dtype, shape)`` for the declared inputs.
      name: graph name.
      outer_graph: the graph the resulting functional op will live in.

    Returns:
      The FuncGraph; ``structured_outputs`` holds ``fn``'s return value.
    """
    fg = FuncGraph(name, outer_graph)
    with fg.as_default():
        args = [fg.add_input(dt, shape=sh, name=f"arg{i}")
                for i, (dt, sh) in enumerate(arg_specs)]
        result = fn(*args)
    fg.structured_outputs = result
    return fg


def _compile_plan(fg):
    """Compile ``fg`` into a flat executable plan.

    The plan is pruned to the ops the declared outputs need, plus all
    *stateful* ops — so dead code built during tracing (e.g. unused
    gradient branches) costs nothing, while side effects inside loop
    bodies — staged ``print``, asserts, variable assigns — still run
    every iteration without explicit control dependencies.
    """
    import functools

    index = {op: i for i, op in enumerate(fg.ops)}

    # Reverse reachability from outputs and stateful roots.
    needed = set()
    stack = [t.op for t in fg.flat_outputs]
    stack.extend(op for op in fg.ops if op.op_def.stateful)
    while stack:
        op = stack.pop()
        if id(op) in needed:
            continue
        needed.add(id(op))
        for t in op.inputs:
            if id(t.op) not in needed:
                stack.append(t.op)
        for c in op.control_inputs:
            if id(c) not in needed:
                stack.append(c)

    steps = []
    for op in fg.ops:  # fg.ops is already in creation (topological) order
        if op.type == "Placeholder":
            steps.append(None)
            continue
        if id(op) not in needed:
            steps.append(False)  # pruned: skipped by the executor
            continue
        locators = tuple((index[t.op], t.value_index) for t in op.inputs)
        runtime_attrs = {k: v for k, v in op.attrs.items() if not k.startswith("_")}
        kernel = op.op_def.kernel
        if runtime_attrs:
            # Pre-bind attrs so the execution loop is a plain call.
            kernel = functools.partial(kernel, **runtime_attrs)
        steps.append((kernel, locators, op.op_def.num_outputs == 1))
    return steps


def execute_func_graph(fg, input_values, capture_values):
    """Execute a traced subgraph with concrete values.

    Args:
      fg: the FuncGraph.
      input_values: values for ``fg.inputs`` in order.
      capture_values: values for ``fg.capture_placeholders`` in order.

    Returns:
      Tuple of concrete values for ``fg.flat_outputs``.
    """
    if fg._plan is None or fg._plan_version != fg.version:
        fg._plan = _compile_plan(fg)
        fg._plan_version = fg.version
        index = {op: i for i, op in enumerate(fg.ops)}
        fg._output_locators = tuple(
            (index[t.op], t.value_index) for t in fg.flat_outputs
        )
        fg._input_indices = tuple(index[ph.op] for ph in fg.inputs)
        fg._capture_indices = tuple(index[ph.op] for ph in fg.capture_placeholders)

    values = [None] * len(fg.ops)
    # Bind placeholders: declared inputs then captures.
    for idx, val in zip(fg._input_indices, input_values):
        values[idx] = (val,)
    for idx, val in zip(fg._capture_indices, capture_values):
        values[idx] = (val,)

    plan = fg._plan
    for i, step in enumerate(plan):
        if step is None:
            if values[i] is None:
                raise GraphError(
                    f"Unbound placeholder {fg.ops[i].name!r} in subgraph {fg.name!r}"
                )
            continue
        if step is False:  # pruned dead op
            continue
        kernel, locators, single = step
        out = kernel(*[values[j][k] for j, k in locators])
        values[i] = (out,) if single else tuple(out)

    return tuple(values[j][k] for j, k in fg._output_locators)
