"""NumPy kernels for every primitive op, plus their registrations.

The kernels operate on plain NumPy arrays (or opaque runtime objects for
variant-typed values such as TensorArray state).  They are shared verbatim
by the eager executor and the graph session's compiled plans, so the two
modes are numerically identical by construction — the *only* difference
between modes is where the per-op Python dispatch overhead is paid.
"""

from __future__ import annotations

import sys

import numpy as np

from . import dtypes, shapes
from .errors import ExecutionError, InvalidArgumentError
from .registry import register_op

# ---------------------------------------------------------------------------
# Shape/dtype inference helpers (best-effort; unknown is always legal).
# ---------------------------------------------------------------------------


def _broadcast_shape_fn(input_shapes, attrs):
    try:
        return [shapes.broadcast_shapes(input_shapes[0], input_shapes[1])]
    except ValueError:
        return [shapes.unknown]


def _same_shape_fn(input_shapes, attrs):
    return [input_shapes[0]]


def _first_dtype_fn(input_dtypes, attrs):
    return [input_dtypes[0]]


def _promote_dtype_fn(input_dtypes, attrs):
    try:
        return [dtypes.result_dtype(input_dtypes[0], input_dtypes[1])]
    except TypeError:
        return [input_dtypes[0]]


def _bool_dtype_fn(input_dtypes, attrs):
    return [dtypes.bool_]


def _binary(name, fn, *, grad_capable_dtype=_promote_dtype_fn,
            inplace_kernel=None, fusable=None):
    # NumPy ufunc binaries always allocate their result (fresh_output),
    # so their outputs are safe buffer-donation targets.
    register_op(
        name,
        fn,
        shape_fn=_broadcast_shape_fn,
        dtype_fn=grad_capable_dtype,
        inplace_kernel=inplace_kernel,
        fresh_output=True,
        fusable=fusable,
    )


def _unary(name, fn, *, dtype_fn=_first_dtype_fn, inplace_kernel=None,
           fusable=None):
    register_op(name, fn, shape_fn=_same_shape_fn, dtype_fn=dtype_fn,
                inplace_kernel=inplace_kernel, fresh_output=True,
                fusable=fusable)


def _ufunc_out(ufunc):
    """An ``out=``-accepting in-place variant for a NumPy ufunc kernel.

    Safe only for elementwise ufuncs: NumPy guarantees correct results
    when ``out`` aliases an input for these (same-shape, same-dtype use —
    the runtime planner enforces both before donating a buffer).
    """
    def inplace_kernel(*args, out):
        return ufunc(*args, out=out)

    return inplace_kernel


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------

_binary("Add", lambda a, b: np.add(a, b), inplace_kernel=_ufunc_out(np.add),
        fusable=np.add)
_binary("Sub", lambda a, b: np.subtract(a, b),
        inplace_kernel=_ufunc_out(np.subtract), fusable=np.subtract)
_binary("Mul", lambda a, b: np.multiply(a, b),
        inplace_kernel=_ufunc_out(np.multiply), fusable=np.multiply)
_binary("Pow", lambda a, b: np.power(a, b))
_binary("Maximum", lambda a, b: np.maximum(a, b),
        inplace_kernel=_ufunc_out(np.maximum), fusable=np.maximum)
_binary("Minimum", lambda a, b: np.minimum(a, b),
        inplace_kernel=_ufunc_out(np.minimum), fusable=np.minimum)


def _div_kernel(a, b):
    a = np.asarray(a)
    out = np.true_divide(a, b)
    return out


register_op("Div", _div_kernel, shape_fn=_broadcast_shape_fn,
            dtype_fn=lambda dts, attrs: [dts[0] if dts[0].is_floating else dtypes.float64],
            fresh_output=True)


def _floordiv_kernel(a, b):
    return np.floor_divide(a, b)


register_op("FloorDiv", _floordiv_kernel, shape_fn=_broadcast_shape_fn,
            dtype_fn=_promote_dtype_fn, fresh_output=True)
_binary("Mod", lambda a, b: np.mod(a, b))

_unary("Neg", lambda a: np.negative(a),
       inplace_kernel=_ufunc_out(np.negative), fusable=np.negative)
_unary("Abs", lambda a: np.abs(a), inplace_kernel=_ufunc_out(np.abs),
       fusable=np.absolute)
_unary("Exp", lambda a: np.exp(a), inplace_kernel=_ufunc_out(np.exp),
       fusable=np.exp)


def _log_kernel(a):
    return np.log(a)


_unary("Log", _log_kernel)
_unary("Tanh", lambda a: np.tanh(a), inplace_kernel=_ufunc_out(np.tanh),
       fusable=np.tanh)


def _sigmoid_kernel(a):
    # Numerically stable logistic.
    out = np.empty_like(a, dtype=np.result_type(a, np.float32))
    pos = a >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
    ea = np.exp(a[~pos])
    out[~pos] = ea / (1.0 + ea)
    return out.astype(np.asarray(a).dtype, copy=False)


def _sigmoid(a):
    a = np.asarray(a)
    if a.dtype.kind != "f":
        a = a.astype(np.float32)
    return _sigmoid_kernel(a)


_unary("Sigmoid", _sigmoid)
_unary("Relu", lambda a: np.maximum(a, np.zeros((), dtype=np.asarray(a).dtype)))
_unary("Sqrt", lambda a: np.sqrt(a), fusable=np.sqrt)
_unary("Square", lambda a: np.square(a), fusable=np.square)
_unary("Sign", lambda a: np.sign(a))
_unary("Floor", lambda a: np.floor(a))

# ---------------------------------------------------------------------------
# Comparison / logical
# ---------------------------------------------------------------------------

register_op("Greater", lambda a, b: np.greater(a, b), shape_fn=_broadcast_shape_fn, dtype_fn=_bool_dtype_fn, fusable=np.greater)
register_op("GreaterEqual", lambda a, b: np.greater_equal(a, b), shape_fn=_broadcast_shape_fn, dtype_fn=_bool_dtype_fn, fusable=np.greater_equal)
register_op("Less", lambda a, b: np.less(a, b), shape_fn=_broadcast_shape_fn, dtype_fn=_bool_dtype_fn, fusable=np.less)
register_op("LessEqual", lambda a, b: np.less_equal(a, b), shape_fn=_broadcast_shape_fn, dtype_fn=_bool_dtype_fn, fusable=np.less_equal)
register_op("Equal", lambda a, b: np.equal(a, b), shape_fn=_broadcast_shape_fn, dtype_fn=_bool_dtype_fn, fusable=np.equal)
register_op("NotEqual", lambda a, b: np.not_equal(a, b), shape_fn=_broadcast_shape_fn, dtype_fn=_bool_dtype_fn, fusable=np.not_equal)
register_op("LogicalAnd", lambda a, b: np.logical_and(a, b), shape_fn=_broadcast_shape_fn, dtype_fn=_bool_dtype_fn)
register_op("LogicalOr", lambda a, b: np.logical_or(a, b), shape_fn=_broadcast_shape_fn, dtype_fn=_bool_dtype_fn)
register_op("LogicalNot", lambda a: np.logical_not(a), shape_fn=_same_shape_fn, dtype_fn=_bool_dtype_fn)

# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------


def _matmul_kernel(a, b, transpose_a=False, transpose_b=False):
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim < 2 or b.ndim < 2:
        raise InvalidArgumentError(
            f"MatMul requires rank >= 2 operands, got {a.ndim} and {b.ndim}"
        )
    if transpose_a:
        a = np.swapaxes(a, -1, -2)
    if transpose_b:
        b = np.swapaxes(b, -1, -2)
    return np.matmul(a, b)


def _matmul_out(a, b, out, transpose_a=False, transpose_b=False):
    # BLAS writes directly into ``out``; unlike the elementwise ufunc
    # variants this is only correct when ``out`` does not alias either
    # operand — hence inplace_no_alias below: the planner donates only
    # buffers that are fully dead before this step runs.
    a = np.asarray(a)
    b = np.asarray(b)
    if transpose_a:
        a = np.swapaxes(a, -1, -2)
    if transpose_b:
        b = np.swapaxes(b, -1, -2)
    return np.matmul(a, b, out=out)


def _matmul_shape_fn(input_shapes, attrs):
    sa, sb = input_shapes
    if sa.dims is None or sb.dims is None or sa.rank != 2 or sb.rank != 2:
        return [shapes.unknown]
    m = sa[1] if attrs.get("transpose_a") else sa[0]
    n = sb[0] if attrs.get("transpose_b") else sb[1]
    return [shapes.TensorShape([m, n])]


register_op("MatMul", _matmul_kernel, shape_fn=_matmul_shape_fn, dtype_fn=_promote_dtype_fn,
            inplace_kernel=_matmul_out, inplace_no_alias=True,
            fresh_output=True)


def _tensordot_kernel(a, b, axes=1):
    return np.tensordot(a, b, axes=axes)


register_op("Tensordot", _tensordot_kernel)

# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _norm_axis(axis):
    if axis is None:
        return None
    if isinstance(axis, (list, tuple)):
        return tuple(int(a) for a in axis)
    return int(axis)


def _reduce_shape_fn(input_shapes, attrs):
    s = input_shapes[0]
    axis = _norm_axis(attrs.get("axis"))
    keepdims = bool(attrs.get("keepdims", False))
    if s.dims is None:
        return [shapes.unknown]
    rank = s.rank
    if axis is None:
        axes = tuple(range(rank))
    elif isinstance(axis, int):
        axes = (axis % rank,)
    else:
        axes = tuple(a % rank for a in axis)
    dims = []
    for i, d in enumerate(s.dims):
        if i in axes:
            if keepdims:
                dims.append(1)
        else:
            dims.append(d)
    return [shapes.TensorShape(dims)]


def _make_reduce(name, np_fn, dtype_fn=_first_dtype_fn):
    def kernel(a, axis=None, keepdims=False):
        return np_fn(np.asarray(a), axis=_norm_axis(axis), keepdims=keepdims)

    register_op(name, kernel, shape_fn=_reduce_shape_fn, dtype_fn=dtype_fn)


_make_reduce("Sum", np.sum)
_make_reduce("Prod", np.prod)
_make_reduce("Max", np.max)
_make_reduce("Min", np.min)
_make_reduce("All", np.all, dtype_fn=_bool_dtype_fn)
_make_reduce("Any", np.any, dtype_fn=_bool_dtype_fn)


def _mean_kernel(a, axis=None, keepdims=False):
    a = np.asarray(a)
    out = np.mean(a, axis=_norm_axis(axis), keepdims=keepdims)
    if a.dtype.kind == "f":
        out = out.astype(a.dtype, copy=False)
    return out


register_op("Mean", _mean_kernel, shape_fn=_reduce_shape_fn, dtype_fn=_first_dtype_fn)


def _argmax_kernel(a, axis=0):
    return np.argmax(a, axis=int(axis)).astype(np.int64)


register_op("ArgMax", _argmax_kernel, dtype_fn=lambda dts, attrs: [dtypes.int64])


def _argmin_kernel(a, axis=0):
    return np.argmin(a, axis=int(axis)).astype(np.int64)


register_op("ArgMin", _argmin_kernel, dtype_fn=lambda dts, attrs: [dtypes.int64])


def _topk_kernel(a, k):
    a = np.asarray(a)
    k = int(k)
    if k > a.shape[-1]:
        raise InvalidArgumentError(f"k={k} larger than last dim {a.shape[-1]}")
    idx = np.argpartition(-a, k - 1, axis=-1)[..., :k]
    part = np.take_along_axis(a, idx, axis=-1)
    order = np.argsort(-part, axis=-1)
    idx = np.take_along_axis(idx, order, axis=-1)
    values = np.take_along_axis(a, idx, axis=-1)
    return values, idx.astype(np.int64)


register_op(
    "TopK",
    _topk_kernel,
    num_outputs=2,
    dtype_fn=lambda dts, attrs: [dts[0], dtypes.int64],
)

# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------


def _shape_kernel(a):
    return np.asarray(np.shape(a), dtype=np.int32)


register_op(
    "Shape",
    _shape_kernel,
    shape_fn=lambda ss, attrs: [
        shapes.TensorShape([ss[0].rank]) if ss[0].dims is not None else shapes.unknown
    ],
    dtype_fn=lambda dts, attrs: [dtypes.int32],
)
register_op("Size", lambda a: np.asarray(np.size(a), dtype=np.int32),
            dtype_fn=lambda dts, attrs: [dtypes.int32],
            shape_fn=lambda ss, attrs: [shapes.TensorShape([])])
register_op("Rank", lambda a: np.asarray(np.ndim(a), dtype=np.int32),
            dtype_fn=lambda dts, attrs: [dtypes.int32],
            shape_fn=lambda ss, attrs: [shapes.TensorShape([])])


def _reshape_kernel(a, new_shape):
    return np.reshape(np.asarray(a), tuple(int(d) for d in np.asarray(new_shape).ravel()))


register_op("Reshape", _reshape_kernel, dtype_fn=_first_dtype_fn)


def _expand_dims_kernel(a, axis=0):
    return np.expand_dims(np.asarray(a), int(axis))


register_op("ExpandDims", _expand_dims_kernel, dtype_fn=_first_dtype_fn)


def _squeeze_kernel(a, axis=None):
    return np.squeeze(np.asarray(a), axis=None if axis is None else int(axis))


register_op("Squeeze", _squeeze_kernel, dtype_fn=_first_dtype_fn)


def _transpose_kernel(a, perm=None):
    return np.transpose(np.asarray(a), None if perm is None else tuple(int(p) for p in perm))


def _transpose_shape_fn(input_shapes, attrs):
    s = input_shapes[0]
    perm = attrs.get("perm")
    if s.dims is None:
        return [shapes.unknown]
    if perm is None:
        return [shapes.TensorShape(tuple(reversed(s.dims)))]
    return [shapes.TensorShape(tuple(s.dims[int(p)] for p in perm))]


register_op("Transpose", _transpose_kernel, shape_fn=_transpose_shape_fn, dtype_fn=_first_dtype_fn)


def _concat_kernel(*args, axis=0):
    return np.concatenate([np.asarray(a) for a in args], axis=int(axis))


register_op("Concat", _concat_kernel, dtype_fn=_first_dtype_fn)


def _pack_kernel(*args, axis=0):
    return np.stack([np.asarray(a) for a in args], axis=int(axis))


register_op("Pack", _pack_kernel, dtype_fn=_first_dtype_fn)


def _unpack_kernel(a, num, axis=0):
    a = np.asarray(a)
    if a.shape[axis] != num:
        raise InvalidArgumentError(f"Unpack expected {num} along axis {axis}, got {a.shape[axis]}")
    parts = np.split(a, num, axis=axis)
    return tuple(np.squeeze(p, axis=axis) for p in parts)


def _register_unpack():
    # Unpack has a dynamic number of outputs; the graph builder specializes
    # ``num`` at build time, so we register kernels per arity lazily instead.
    pass


def _tile_kernel(a, multiples):
    return np.tile(np.asarray(a), tuple(int(m) for m in np.asarray(multiples).ravel()))


register_op("Tile", _tile_kernel, dtype_fn=_first_dtype_fn)


def _gather_kernel(params, indices, axis=0):
    return np.take(np.asarray(params), np.asarray(indices), axis=int(axis))


register_op("Gather", _gather_kernel, dtype_fn=_first_dtype_fn)


def _boolean_mask_kernel(a, mask):
    return np.asarray(a)[np.asarray(mask, dtype=bool)]


register_op("BooleanMask", _boolean_mask_kernel, dtype_fn=_first_dtype_fn)

# -- General item access: x[spec], with tensor-valued indices spliced in. ----
#
# ``spec`` is a tuple of entries; each entry is one of
#   ("idx", python_int) | ("slice", start, stop, step) | ("tensor",) |
#   ("ellipsis",) | ("newaxis",)
# Tensor-valued indices are passed as additional inputs, consumed in order.


def _materialize_spec(spec, extra):
    extra = list(extra)
    out = []
    for entry in spec:
        kind = entry[0]
        if kind == "idx":
            out.append(entry[1])
        elif kind == "slice":
            out.append(slice(entry[1], entry[2], entry[3]))
        elif kind == "tensor":
            value = np.asarray(extra.pop(0))
            if value.ndim == 0:
                value = int(value)
            out.append(value)
        elif kind == "dslice":
            parts = []
            for part in entry[1:]:
                if part == "T":
                    p = np.asarray(extra.pop(0))
                    parts.append(int(p))
                else:
                    parts.append(part)
            out.append(slice(parts[0], parts[1], parts[2]))
        elif kind == "ellipsis":
            out.append(Ellipsis)
        elif kind == "newaxis":
            out.append(None)
        else:  # pragma: no cover - defensive
            raise InvalidArgumentError(f"Bad index spec entry: {entry!r}")
    if len(out) == 1:
        return out[0]
    return tuple(out)


def _getitem_kernel(a, *index_inputs, spec=()):
    return np.asarray(a)[_materialize_spec(spec, index_inputs)]


register_op("GetItem", _getitem_kernel, dtype_fn=_first_dtype_fn)


def _setitem_kernel(a, value, *index_inputs, spec=()):
    out = np.array(a, copy=True)
    out[_materialize_spec(spec, index_inputs)] = value
    return out


register_op("SetItem", _setitem_kernel, dtype_fn=_first_dtype_fn, shape_fn=_same_shape_fn)

# ---------------------------------------------------------------------------
# Creation / casting
# ---------------------------------------------------------------------------


def _const_kernel(value=None):
    return value


register_op(
    "Const",
    _const_kernel,
    shape_fn=lambda ss, attrs: [shapes.TensorShape(np.shape(attrs.get("value")))],
    dtype_fn=lambda dts, attrs: [dtypes.from_numpy(np.asarray(attrs.get("value")).dtype)],
)


def _placeholder_kernel(**attrs):  # pragma: no cover - never executed
    raise ExecutionError("Placeholder value was not fed")


register_op("Placeholder", _placeholder_kernel)


def _fill_kernel(dims, value):
    return np.full(tuple(int(d) for d in np.asarray(dims).ravel()), value)


register_op("Fill", _fill_kernel)


def _zeros_like_kernel(a):
    return np.zeros_like(np.asarray(a))


register_op("ZerosLike", _zeros_like_kernel, shape_fn=_same_shape_fn, dtype_fn=_first_dtype_fn)
register_op("OnesLike", lambda a: np.ones_like(np.asarray(a)), shape_fn=_same_shape_fn, dtype_fn=_first_dtype_fn)


def _range_kernel(start, limit, delta):
    out = np.arange(np.asarray(start).item(), np.asarray(limit).item(), np.asarray(delta).item())
    if out.dtype.kind == "i":
        out = out.astype(np.int32)
    return out


register_op("Range", _range_kernel,
            dtype_fn=lambda dts, attrs: [dts[0] if dts and dts[0].is_floating else dtypes.int32])


def _one_hot_kernel(indices, depth, on_value=1.0, off_value=0.0, dtype="float32"):
    indices = np.asarray(indices)
    depth = int(np.asarray(depth))
    np_dt = dtypes.as_dtype(dtype).np_dtype
    out = np.full(indices.shape + (depth,), off_value, dtype=np_dt)
    valid = (indices >= 0) & (indices < depth)
    flat = out.reshape(-1, depth)
    flat_idx = indices.reshape(-1)
    rows = np.nonzero(valid.reshape(-1))[0]
    flat[rows, flat_idx[rows]] = on_value
    return out


register_op("OneHot", _one_hot_kernel,
            dtype_fn=lambda dts, attrs: [dtypes.as_dtype(attrs.get("dtype", "float32"))])


def _cast_kernel(a, dtype="float32"):
    return np.asarray(a).astype(dtypes.as_dtype(dtype).np_dtype)


register_op("Cast", _cast_kernel, shape_fn=_same_shape_fn,
            dtype_fn=lambda dts, attrs: [dtypes.as_dtype(attrs.get("dtype", "float32"))])

register_op("Identity", lambda a: a, shape_fn=_same_shape_fn, dtype_fn=_first_dtype_fn)


def _select_kernel(cond, x, y):
    cond = np.asarray(cond)
    x = np.asarray(x)
    y = np.asarray(y)
    # Legacy tf.where semantics: a rank-1 condition over rank-N operands
    # selects along the leading (batch) dimension.
    if cond.ndim > 0 and cond.ndim < x.ndim:
        cond = cond.reshape(cond.shape + (1,) * (x.ndim - cond.ndim))
    return np.where(cond, x, y)


register_op("Select", _select_kernel, dtype_fn=lambda dts, attrs: [dts[1]],
            shape_fn=lambda ss, attrs: [ss[1]])

# ---------------------------------------------------------------------------
# Neural network ops
# ---------------------------------------------------------------------------


def _softmax_kernel(a, axis=-1):
    a = np.asarray(a)
    shifted = a - np.max(a, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


register_op("Softmax", _softmax_kernel, shape_fn=_same_shape_fn, dtype_fn=_first_dtype_fn)


def _log_softmax_kernel(a, axis=-1):
    a = np.asarray(a)
    shifted = a - np.max(a, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


register_op("LogSoftmax", _log_softmax_kernel, shape_fn=_same_shape_fn, dtype_fn=_first_dtype_fn)


def _softmax_xent_kernel(labels, logits):
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    log_probs = _log_softmax_kernel(logits, axis=-1)
    return -np.sum(labels * log_probs, axis=-1)


register_op(
    "SoftmaxCrossEntropyWithLogits",
    _softmax_xent_kernel,
    dtype_fn=lambda dts, attrs: [dts[1]],
    shape_fn=lambda ss, attrs: [
        shapes.TensorShape(ss[1].dims[:-1]) if ss[1].dims is not None else shapes.unknown
    ],
)


def _sparse_softmax_xent_kernel(labels, logits):
    logits = np.asarray(logits)
    labels = np.asarray(labels).astype(np.int64)
    log_probs = _log_softmax_kernel(logits, axis=-1)
    rows = np.arange(labels.shape[0])
    return -log_probs[rows, labels]


register_op("SparseSoftmaxCrossEntropyWithLogits", _sparse_softmax_xent_kernel,
            dtype_fn=lambda dts, attrs: [dts[1]])

# ---------------------------------------------------------------------------
# Random ops (stateful; deterministic under repro.framework.random.set_seed)
# ---------------------------------------------------------------------------

_GLOBAL_RNG = np.random.default_rng(0)


def set_global_seed(seed):
    """Reset the stateful-kernel RNG (used by random ops in both modes)."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)


def get_global_rng():
    return _GLOBAL_RNG


def _random_normal_kernel(shape, mean=0.0, stddev=1.0, dtype="float32"):
    dims = tuple(int(d) for d in np.asarray(shape).ravel())
    out = _GLOBAL_RNG.normal(mean, stddev, size=dims)
    return out.astype(dtypes.as_dtype(dtype).np_dtype)


register_op("RandomNormal", _random_normal_kernel, stateful=True,
            dtype_fn=lambda dts, attrs: [dtypes.as_dtype(attrs.get("dtype", "float32"))])


def _random_uniform_kernel(shape, minval=0.0, maxval=1.0, dtype="float32"):
    dims = tuple(int(d) for d in np.asarray(shape).ravel())
    dt = dtypes.as_dtype(dtype)
    if dt.is_integer:
        out = _GLOBAL_RNG.integers(int(minval), int(maxval), size=dims)
    else:
        out = _GLOBAL_RNG.uniform(minval, maxval, size=dims)
    return out.astype(dt.np_dtype)


register_op("RandomUniform", _random_uniform_kernel, stateful=True,
            dtype_fn=lambda dts, attrs: [dtypes.as_dtype(attrs.get("dtype", "float32"))])

# ---------------------------------------------------------------------------
# Side effects
# ---------------------------------------------------------------------------


def _format_print_value(v):
    if isinstance(v, np.ndarray):
        return np.array2string(v, threshold=16, edgeitems=3)
    return str(v)


def _print_kernel(*args, sep=" ", end="\n", stream=None):
    text = sep.join(_format_print_value(a) for a in args) + end
    (stream or sys.stdout).write(text)
    return np.asarray(0, dtype=np.int32)


register_op("PrintV2", _print_kernel, stateful=True,
            dtype_fn=lambda dts, attrs: [dtypes.int32],
            shape_fn=lambda ss, attrs: [shapes.TensorShape([])])


def _assert_kernel(cond, *data, message="Assertion failed"):
    if not bool(np.all(cond)):
        detail = ", ".join(_format_print_value(np.asarray(d)) for d in data)
        raise ExecutionError(f"{message}" + (f" [{detail}]" if detail else ""))
    return np.asarray(True)


register_op("Assert", _assert_kernel, stateful=True, dtype_fn=_bool_dtype_fn)


def _no_op_kernel(*args):
    return np.asarray(0, dtype=np.int32)


register_op("Group", _no_op_kernel, stateful=True,
            dtype_fn=lambda dts, attrs: [dtypes.int32])
