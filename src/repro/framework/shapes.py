"""Tensor shapes with partial (unknown) dimension support.

``TensorShape`` mirrors TensorFlow's shape objects: a rank may be unknown
(``TensorShape(None)``) and any dimension may be unknown (``None``).
Shape inference in the graph builder is best-effort; unknown shapes are
always legal and resolved at run time by the executors.
"""

from __future__ import annotations

__all__ = ["TensorShape", "broadcast_shapes", "unknown"]


class TensorShape:
    """A possibly-partial tensor shape."""

    __slots__ = ("_dims",)

    def __init__(self, dims=None):
        if dims is None:
            self._dims = None
        elif isinstance(dims, TensorShape):
            self._dims = dims._dims
        elif isinstance(dims, int):
            self._dims = (int(dims),)
        else:
            out = []
            for d in dims:
                if d is None:
                    out.append(None)
                else:
                    d = int(d)
                    if d < 0:
                        raise ValueError(f"Negative dimension {d} in shape {dims!r}")
                    out.append(d)
            self._dims = tuple(out)

    # -- basic introspection -------------------------------------------------

    @property
    def rank(self):
        return None if self._dims is None else len(self._dims)

    @property
    def dims(self):
        return self._dims

    @property
    def is_fully_defined(self):
        return self._dims is not None and all(d is not None for d in self._dims)

    def num_elements(self):
        if not self.is_fully_defined:
            return None
        n = 1
        for d in self._dims:
            n *= d
        return n

    def as_list(self):
        if self._dims is None:
            raise ValueError("Cannot convert an unknown-rank shape to a list")
        return list(self._dims)

    def as_tuple(self):
        if self._dims is None:
            raise ValueError("Cannot convert an unknown-rank shape to a tuple")
        return self._dims

    # -- structure -----------------------------------------------------------

    def __getitem__(self, idx):
        if self._dims is None:
            raise ValueError("Shape has unknown rank")
        got = self._dims[idx]
        return TensorShape(got) if isinstance(idx, slice) else got

    def __len__(self):
        if self._dims is None:
            raise ValueError("Shape has unknown rank")
        return len(self._dims)

    def __iter__(self):
        if self._dims is None:
            raise ValueError("Shape has unknown rank")
        return iter(self._dims)

    def concatenate(self, other):
        other = TensorShape(other)
        if self._dims is None or other._dims is None:
            return TensorShape(None)
        return TensorShape(self._dims + other._dims)

    def merge_with(self, other):
        """Combine two partial shapes, erroring on contradictions."""
        other = TensorShape(other)
        if self._dims is None:
            return other
        if other._dims is None:
            return self
        if len(self._dims) != len(other._dims):
            raise ValueError(f"Incompatible ranks: {self} vs {other}")
        merged = []
        for a, b in zip(self._dims, other._dims):
            if a is None:
                merged.append(b)
            elif b is None or a == b:
                merged.append(a)
            else:
                raise ValueError(f"Incompatible shapes: {self} vs {other}")
        return TensorShape(merged)

    def is_compatible_with(self, other):
        try:
            self.merge_with(other)
            return True
        except ValueError:
            return False

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other):
        if isinstance(other, (tuple, list)):
            other = TensorShape(other)
        if not isinstance(other, TensorShape):
            return NotImplemented
        return self._dims == other._dims

    def __hash__(self):
        return hash(self._dims)

    def __repr__(self):
        if self._dims is None:
            return "TensorShape(None)"
        return f"TensorShape({list(self._dims)!r})"

    def __str__(self):
        if self._dims is None:
            return "<unknown>"
        return "(" + ", ".join("?" if d is None else str(d) for d in self._dims) + ")"


unknown = TensorShape(None)


def broadcast_shapes(a, b):
    """NumPy-style broadcast of two partial shapes.

    Unknown dims broadcast to unknown unless the peer dim is known to be
    non-broadcasting-compatible only at runtime; we stay permissive.
    """
    a = TensorShape(a)
    b = TensorShape(b)
    if a.dims is None or b.dims is None:
        return unknown
    ra, rb = list(a.dims), list(b.dims)
    if len(ra) < len(rb):
        ra = [1] * (len(rb) - len(ra)) + ra
    elif len(rb) < len(ra):
        rb = [1] * (len(ra) - len(rb)) + rb
    out = []
    for da, db in zip(ra, rb):
        if da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        elif da is None:
            out.append(db)
        elif db is None:
            out.append(da)
        elif da == db:
            out.append(da)
        else:
            raise ValueError(f"Shapes {a} and {b} are not broadcastable")
    return TensorShape(out)
