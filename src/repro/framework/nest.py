"""Structure (nest) utilities.

Equivalent of ``tf.nest``: flatten/pack/map over arbitrarily nested
tuples, lists, namedtuples and dicts.  Used by control-flow ops to carry
structured loop state and by AutoGraph operators to validate that staged
branches produce consistent structures.
"""

from __future__ import annotations

__all__ = [
    "is_sequence",
    "flatten",
    "pack_sequence_as",
    "map_structure",
    "assert_same_structure",
]


def _is_namedtuple(value):
    return isinstance(value, tuple) and hasattr(value, "_fields")


def is_sequence(value):
    """True if ``value`` is a structure this module recurses into."""
    return isinstance(value, (tuple, list, dict)) and not isinstance(value, str)


def flatten(structure):
    """Flatten a nested structure into a list of leaves (dicts by sorted key)."""
    out = []
    _flatten_into(structure, out)
    return out


def _flatten_into(structure, out):
    if isinstance(structure, dict):
        for key in sorted(structure):
            _flatten_into(structure[key], out)
    elif is_sequence(structure):
        for item in structure:
            _flatten_into(item, out)
    else:
        out.append(structure)


def pack_sequence_as(structure, flat):
    """Inverse of :func:`flatten`: rebuild ``structure`` from leaves ``flat``."""
    flat = list(flat)
    packed, consumed = _pack(structure, flat, 0)
    if consumed != len(flat):
        raise ValueError(
            f"Structure had {consumed} leaves but {len(flat)} values were provided"
        )
    return packed


def _pack(structure, flat, index):
    if isinstance(structure, dict):
        result = {}
        for key in sorted(structure):
            result[key], index = _pack(structure[key], flat, index)
        return type(structure)(result) if type(structure) is not dict else result, index
    if is_sequence(structure):
        items = []
        for item in structure:
            packed, index = _pack(item, flat, index)
            items.append(packed)
        if _is_namedtuple(structure):
            return type(structure)(*items), index
        return type(structure)(items), index
    if index >= len(flat):
        raise ValueError("Not enough leaves to pack structure")
    return flat[index], index + 1


def assert_same_structure(a, b, context=""):
    """Raise ValueError unless ``a`` and ``b`` have identical nesting."""
    prefix = f"{context}: " if context else ""
    if isinstance(a, dict) != isinstance(b, dict):
        raise ValueError(f"{prefix}structure mismatch: {a!r} vs {b!r}")
    if isinstance(a, dict):
        if sorted(a) != sorted(b):
            raise ValueError(f"{prefix}dict keys differ: {sorted(a)} vs {sorted(b)}")
        for key in a:
            assert_same_structure(a[key], b[key], context)
        return
    if is_sequence(a) != is_sequence(b):
        raise ValueError(f"{prefix}structure mismatch: {a!r} vs {b!r}")
    if is_sequence(a):
        if len(a) != len(b):
            raise ValueError(
                f"{prefix}sequence lengths differ: {len(a)} vs {len(b)}"
            )
        if _is_namedtuple(a) != _is_namedtuple(b):
            raise ValueError(f"{prefix}namedtuple mismatch: {a!r} vs {b!r}")
        for item_a, item_b in zip(a, b):
            assert_same_structure(item_a, item_b, context)


def map_structure(fn, *structures):
    """Apply ``fn`` leaf-wise across parallel structures."""
    if not structures:
        raise ValueError("map_structure requires at least one structure")
    first = structures[0]
    for other in structures[1:]:
        assert_same_structure(first, other, "map_structure")
    flats = [flatten(s) for s in structures]
    mapped = [fn(*leaves) for leaves in zip(*flats)]
    return pack_sequence_as(first, mapped)
