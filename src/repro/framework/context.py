"""Execution context: eager by default, graph-building inside ``Graph.as_default()``.

This mirrors the TF1/TF2 duality the paper works in: ops dispatched while a
graph is "default" are recorded as nodes; otherwise they execute eagerly.
"""

from __future__ import annotations

import threading

__all__ = [
    "executing_eagerly",
    "get_default_graph",
    "has_default_graph",
    "push_graph",
    "pop_graph",
    "graph_stack",
]

_STATE = threading.local()


def _stack():
    stack = getattr(_STATE, "graph_stack", None)
    if stack is None:
        stack = []
        _STATE.graph_stack = stack
    return stack


def executing_eagerly():
    """True when no graph is currently being built on this thread."""
    return not _stack()


def has_default_graph():
    return bool(_stack())


def get_default_graph():
    stack = _stack()
    if not stack:
        raise RuntimeError(
            "No default graph. Use `with graph.as_default():` to build graph ops."
        )
    return stack[-1]


def push_graph(graph):
    _stack().append(graph)


def pop_graph(graph):
    stack = _stack()
    if not stack or stack[-1] is not graph:
        raise RuntimeError("Graph context stack corrupted (mismatched pop)")
    stack.pop()


def graph_stack():
    return tuple(_stack())
