"""Public random ops (stateful; seeded via :func:`set_seed`)."""

from __future__ import annotations

import numpy as np

from .. import dtypes as dtypes_mod
from ..kernels import set_global_seed
from . import dispatch

__all__ = ["set_seed", "random_normal", "random_uniform"]


def set_seed(seed):
    """Seed the framework RNG (affects eager and graph random ops alike)."""
    set_global_seed(seed)


def _shape_input(shape):
    if isinstance(shape, (list, tuple)):
        return np.asarray(shape, dtype=np.int32)
    return shape


def random_normal(shape, mean=0.0, stddev=1.0, dtype=dtypes_mod.float32, name=None):
    """Gaussian samples of the given shape."""
    return dispatch.run_op(
        "RandomNormal", [_shape_input(shape)],
        {"mean": mean, "stddev": stddev, "dtype": dtypes_mod.as_dtype(dtype).name},
        name=name,
    )


def random_uniform(shape, minval=0.0, maxval=1.0, dtype=dtypes_mod.float32, name=None):
    """Uniform samples of the given shape."""
    return dispatch.run_op(
        "RandomUniform", [_shape_input(shape)],
        {"minval": minval, "maxval": maxval, "dtype": dtypes_mod.as_dtype(dtype).name},
        name=name,
    )
