"""Public math ops (mode-agnostic)."""

from __future__ import annotations

from . import dispatch

__all__ = [
    "add", "subtract", "multiply", "divide", "floordiv", "mod", "pow",
    "maximum", "minimum", "negative", "abs", "exp", "log", "tanh",
    "sigmoid", "sqrt", "square", "sign", "floor",
    "greater", "greater_equal", "less", "less_equal", "equal", "not_equal",
    "logical_and", "logical_or", "logical_not",
    "matmul", "tensordot",
    "reduce_sum", "reduce_mean", "reduce_max", "reduce_min", "reduce_prod",
    "reduce_all", "reduce_any", "argmax", "argmin", "top_k",
    "cast",
]


def _binary(op_type):
    def fn(x, y, name=None):
        return dispatch.run_op(op_type, [x, y], {}, name=name)

    fn.__name__ = op_type.lower()
    fn.__doc__ = f"Elementwise broadcasting {op_type}."
    return fn


add = _binary("Add")
subtract = _binary("Sub")
multiply = _binary("Mul")
divide = _binary("Div")
floordiv = _binary("FloorDiv")
mod = _binary("Mod")
pow = _binary("Pow")
maximum = _binary("Maximum")
minimum = _binary("Minimum")
greater = _binary("Greater")
greater_equal = _binary("GreaterEqual")
less = _binary("Less")
less_equal = _binary("LessEqual")
equal = _binary("Equal")
not_equal = _binary("NotEqual")
logical_and = _binary("LogicalAnd")
logical_or = _binary("LogicalOr")


def _unary(op_type):
    def fn(x, name=None):
        return dispatch.run_op(op_type, [x], {}, name=name)

    fn.__name__ = op_type.lower()
    fn.__doc__ = f"Elementwise {op_type}."
    return fn


negative = _unary("Neg")
abs = _unary("Abs")
exp = _unary("Exp")
log = _unary("Log")
tanh = _unary("Tanh")
sigmoid = _unary("Sigmoid")
sqrt = _unary("Sqrt")
square = _unary("Square")
sign = _unary("Sign")
floor = _unary("Floor")
logical_not = _unary("LogicalNot")


def matmul(a, b, transpose_a=False, transpose_b=False, name=None):
    """Matrix product of two rank-2 (or batched) tensors."""
    return dispatch.run_op(
        "MatMul", [a, b],
        {"transpose_a": transpose_a, "transpose_b": transpose_b},
        name=name,
    )


def tensordot(a, b, axes=1, name=None):
    """Generalized tensor contraction along ``axes``."""
    return dispatch.run_op("Tensordot", [a, b], {"axes": axes}, name=name)


def _reduction(op_type, public_name):
    def fn(x, axis=None, keepdims=False, name=None):
        return dispatch.run_op(op_type, [x], {"axis": axis, "keepdims": keepdims},
                               name=name)

    fn.__name__ = public_name
    fn.__doc__ = f"Reduce ``x`` with {op_type} over ``axis`` (all axes if None)."
    return fn


reduce_sum = _reduction("Sum", "reduce_sum")
reduce_mean = _reduction("Mean", "reduce_mean")
reduce_max = _reduction("Max", "reduce_max")
reduce_min = _reduction("Min", "reduce_min")
reduce_prod = _reduction("Prod", "reduce_prod")
reduce_all = _reduction("All", "reduce_all")
reduce_any = _reduction("Any", "reduce_any")


def argmax(x, axis=0, name=None):
    """Index of the maximum along ``axis`` (int64)."""
    return dispatch.run_op("ArgMax", [x], {"axis": axis}, name=name)


def argmin(x, axis=0, name=None):
    """Index of the minimum along ``axis`` (int64)."""
    return dispatch.run_op("ArgMin", [x], {"axis": axis}, name=name)


def top_k(x, k, name=None):
    """Top ``k`` values and indices along the last axis (descending)."""
    return dispatch.run_op("TopK", [x, k], {}, name=name)


def cast(x, dtype, name=None):
    """Cast ``x`` to ``dtype``."""
    from .. import dtypes

    return dispatch.run_op("Cast", [x], {"dtype": dtypes.as_dtype(dtype).name},
                           name=name)
