"""Gradient definitions for the primitive ops.

Each gradient function is written against the *public dispatching ops*,
so the exact same definitions serve:

- graph-mode ``gradients()`` (building new graph nodes), and
- the eager ``GradientTape`` (replaying eagerly).

A handful of dedicated grad-helper primitives (``SumGrad`` etc.) keep the
generated graphs small; their kernels live here next to their use.
"""

from __future__ import annotations

import numpy as np

from .. import dtypes
from ..registry import register_gradient, register_op
from . import array_ops, dispatch, math_ops, nn_ops

# ---------------------------------------------------------------------------
# Grad-helper primitives
# ---------------------------------------------------------------------------


def _unbroadcast_kernel(grad, target):
    g = np.asarray(grad)
    t = np.asarray(target)
    while g.ndim > t.ndim:
        g = g.sum(axis=0)
    for i, (gd, td) in enumerate(zip(g.shape, t.shape)):
        if td == 1 and gd != 1:
            g = g.sum(axis=i, keepdims=True)
    return g.astype(t.dtype, copy=False) if t.dtype.kind == "f" else g


register_op("UnbroadcastTo", _unbroadcast_kernel,
            dtype_fn=lambda dts, attrs: [dts[1]],
            shape_fn=lambda ss, attrs: [ss[1]])


def _unbroadcast(grad, like):
    return dispatch.run_op("UnbroadcastTo", [grad, like], {})


def _reduce_grad_kernel(grad, x, axis=None, keepdims=False, mean=False):
    g = np.asarray(grad)
    x = np.asarray(x)
    if axis is None:
        expanded = np.broadcast_to(g, x.shape)
        count = x.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(a % x.ndim for a in axes)
        if not keepdims:
            for a in sorted(axes):
                g = np.expand_dims(g, a)
        expanded = np.broadcast_to(g, x.shape)
        count = 1
        for a in axes:
            count *= x.shape[a]
    if mean:
        expanded = expanded / count
    return expanded.astype(x.dtype, copy=False) if x.dtype.kind == "f" else expanded


register_op("SumGrad", _reduce_grad_kernel,
            dtype_fn=lambda dts, attrs: [dts[1]],
            shape_fn=lambda ss, attrs: [ss[1]])


def _max_grad_kernel(grad, x, out, axis=None, keepdims=False):
    x = np.asarray(x)
    g = np.asarray(grad)
    o = np.asarray(out)
    if axis is None:
        mask = (x == o)
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(a % x.ndim for a in axes)
        ge = g
        oe = o
        if not keepdims:
            for a in sorted(axes):
                ge = np.expand_dims(ge, a)
                oe = np.expand_dims(oe, a)
        mask = (x == oe)
        g = ge
    nmask = mask.sum(axis=axis if axis is not None else None,
                     keepdims=True if axis is not None else False)
    out_grad = np.where(mask, np.broadcast_to(g, x.shape), 0.0)
    return out_grad.astype(x.dtype, copy=False)


register_op("MaxGrad", _max_grad_kernel,
            dtype_fn=lambda dts, attrs: [dts[1]],
            shape_fn=lambda ss, attrs: [ss[1]])


def _select_grad_kernel(cond, grad):
    c = np.asarray(cond)
    g = np.asarray(grad)
    if c.ndim > 0 and c.ndim < g.ndim:
        c = c.reshape(c.shape + (1,) * (g.ndim - c.ndim))
    zeros = np.zeros_like(g)
    return np.where(c, g, zeros), np.where(c, zeros, g)


register_op("SelectGrad", _select_grad_kernel, num_outputs=2,
            dtype_fn=lambda dts, attrs: [dts[1], dts[1]])


def _reshape_like_kernel(grad, like):
    return np.reshape(np.asarray(grad), np.asarray(like).shape)


register_op("ReshapeLike", _reshape_like_kernel,
            dtype_fn=lambda dts, attrs: [dts[0]],
            shape_fn=lambda ss, attrs: [ss[1]])


def _gather_grad_kernel(grad, indices, params, axis=0):
    params = np.asarray(params)
    out = np.zeros_like(params, dtype=np.asarray(grad).dtype)
    idx = np.asarray(indices)
    if axis != 0:
        raise NotImplementedError("Gather gradient only supports axis=0")
    np.add.at(out, idx, np.asarray(grad))
    return out.astype(params.dtype, copy=False)


register_op("GatherGrad", _gather_grad_kernel,
            dtype_fn=lambda dts, attrs: [dts[2]],
            shape_fn=lambda ss, attrs: [ss[2]])


def _getitem_grad_kernel(grad, x, *index_inputs, spec=()):
    from ..kernels import _materialize_spec

    x = np.asarray(x)
    out = np.zeros_like(x)
    np.add.at(out, _materialize_spec(spec, index_inputs), np.asarray(grad))
    return out


register_op("GetItemGrad", _getitem_grad_kernel,
            dtype_fn=lambda dts, attrs: [dts[1]],
            shape_fn=lambda ss, attrs: [ss[1]])


def _xent_grad_kernel(grad, labels, logits):
    from ..kernels import _softmax_kernel

    g = np.asarray(grad)[..., None]
    return (_softmax_kernel(np.asarray(logits), axis=-1) - np.asarray(labels)) * g


register_op("SoftmaxXentGrad", _xent_grad_kernel,
            dtype_fn=lambda dts, attrs: [dts[2]],
            shape_fn=lambda ss, attrs: [ss[2]])


def _sparse_xent_grad_kernel(grad, labels, logits):
    from ..kernels import _softmax_kernel

    logits = np.asarray(logits)
    labels = np.asarray(labels).astype(np.int64)
    g = np.asarray(grad)[..., None]
    soft = _softmax_kernel(logits, axis=-1)
    onehot = np.zeros_like(logits)
    onehot[np.arange(labels.shape[0]), labels] = 1.0
    return (soft - onehot) * g


register_op("SparseSoftmaxXentGrad", _sparse_xent_grad_kernel,
            dtype_fn=lambda dts, attrs: [dts[2]],
            shape_fn=lambda ss, attrs: [ss[2]])


def _concat_grad_kernel(grad, *inputs, axis=0):
    sizes = [np.asarray(x).shape[axis] for x in inputs]
    return tuple(np.split(np.asarray(grad), np.cumsum(sizes)[:-1], axis=axis))


def _get_concat_grad(n):
    from ..registry import _REGISTRY, OpDef

    name = f"ConcatGrad_{n}"
    if name not in _REGISTRY:
        _REGISTRY[name] = OpDef(name, _concat_grad_kernel, num_outputs=n)
    return name


def _pack_grad_kernel(grad, axis=0, num=1):
    parts = np.split(np.asarray(grad), num, axis=axis)
    out = tuple(np.squeeze(p, axis=axis) for p in parts)
    return out if num != 1 else out[0]


def _get_pack_grad(n):
    from ..registry import _REGISTRY, OpDef

    name = f"PackGrad_{n}"
    if name not in _REGISTRY:
        _REGISTRY[name] = OpDef(name, _pack_grad_kernel, num_outputs=n)
    return name


# ---------------------------------------------------------------------------
# Gradient functions
# ---------------------------------------------------------------------------


@register_gradient("Add")
def _add_grad(op, g):
    x, y = op.inputs
    return [_unbroadcast(g, x), _unbroadcast(g, y)]


@register_gradient("Sub")
def _sub_grad(op, g):
    x, y = op.inputs
    return [_unbroadcast(g, x), _unbroadcast(math_ops.negative(g), y)]


@register_gradient("Mul")
def _mul_grad(op, g):
    x, y = op.inputs
    return [
        _unbroadcast(math_ops.multiply(g, y), x),
        _unbroadcast(math_ops.multiply(g, x), y),
    ]


@register_gradient("Div")
def _div_grad(op, g):
    x, y = op.inputs
    gx = math_ops.divide(g, y)
    gy = math_ops.negative(math_ops.divide(math_ops.multiply(g, x),
                                           math_ops.multiply(y, y)))
    return [_unbroadcast(gx, x), _unbroadcast(gy, y)]


@register_gradient("Pow")
def _pow_grad(op, g):
    x, y = op.inputs
    gx = math_ops.multiply(
        g, math_ops.multiply(y, math_ops.pow(x, math_ops.subtract(y, 1.0)))
    )
    return [_unbroadcast(gx, x), None]


@register_gradient("Maximum")
def _maximum_grad(op, g):
    x, y = op.inputs
    mask = math_ops.cast(math_ops.greater_equal(x, y), dtype="float32")
    inv = math_ops.subtract(1.0, mask)
    return [
        _unbroadcast(math_ops.multiply(g, mask), x),
        _unbroadcast(math_ops.multiply(g, inv), y),
    ]


@register_gradient("Minimum")
def _minimum_grad(op, g):
    x, y = op.inputs
    mask = math_ops.cast(math_ops.less_equal(x, y), dtype="float32")
    inv = math_ops.subtract(1.0, mask)
    return [
        _unbroadcast(math_ops.multiply(g, mask), x),
        _unbroadcast(math_ops.multiply(g, inv), y),
    ]


@register_gradient("Neg")
def _neg_grad(op, g):
    return [math_ops.negative(g)]


@register_gradient("Abs")
def _abs_grad(op, g):
    return [math_ops.multiply(g, math_ops.sign(op.inputs[0]))]


@register_gradient("Exp")
def _exp_grad(op, g):
    return [math_ops.multiply(g, op.outputs[0])]


@register_gradient("Log")
def _log_grad(op, g):
    return [math_ops.divide(g, op.inputs[0])]


@register_gradient("Tanh")
def _tanh_grad(op, g):
    out = op.outputs[0]
    return [math_ops.multiply(g, math_ops.subtract(1.0, math_ops.multiply(out, out)))]


@register_gradient("Sigmoid")
def _sigmoid_grad(op, g):
    out = op.outputs[0]
    return [math_ops.multiply(g, math_ops.multiply(out, math_ops.subtract(1.0, out)))]


@register_gradient("Relu")
def _relu_grad(op, g):
    mask = math_ops.cast(math_ops.greater(op.inputs[0], 0.0), dtype="float32")
    return [math_ops.multiply(g, mask)]


@register_gradient("Sqrt")
def _sqrt_grad(op, g):
    return [math_ops.divide(math_ops.multiply(g, 0.5), op.outputs[0])]


@register_gradient("Square")
def _square_grad(op, g):
    return [math_ops.multiply(g, math_ops.multiply(op.inputs[0], 2.0))]


@register_gradient("MatMul")
def _matmul_grad(op, g):
    x, y = op.inputs
    ta = op.get_attr("transpose_a", False)
    tb = op.get_attr("transpose_b", False)
    if not ta and not tb:
        gx = math_ops.matmul(g, y, transpose_b=True)
        gy = math_ops.matmul(x, g, transpose_a=True)
    elif ta and not tb:
        gx = math_ops.matmul(y, g, transpose_b=True)
        gy = math_ops.matmul(x, g)
    elif not ta and tb:
        gx = math_ops.matmul(g, y)
        gy = math_ops.matmul(g, x, transpose_a=True)
    else:
        gx = math_ops.matmul(y, g, transpose_a=True, transpose_b=True)
        gy = math_ops.matmul(g, x, transpose_a=True, transpose_b=True)
    return [gx, gy]


@register_gradient("Sum")
def _sum_grad(op, g):
    x = op.inputs[0]
    return [dispatch.run_op("SumGrad", [g, x],
                            {"axis": op.get_attr("axis"),
                             "keepdims": op.get_attr("keepdims", False),
                             "mean": False})]


@register_gradient("Mean")
def _mean_grad(op, g):
    x = op.inputs[0]
    return [dispatch.run_op("SumGrad", [g, x],
                            {"axis": op.get_attr("axis"),
                             "keepdims": op.get_attr("keepdims", False),
                             "mean": True})]


@register_gradient("Max")
def _max_grad(op, g):
    x = op.inputs[0]
    return [dispatch.run_op("MaxGrad", [g, x, op.outputs[0]],
                            {"axis": op.get_attr("axis"),
                             "keepdims": op.get_attr("keepdims", False)})]


@register_gradient("Select")
def _select_grad(op, g):
    cond = op.inputs[0]
    gx, gy = dispatch.run_op("SelectGrad", [cond, g], {})
    return [None, gx, gy]


@register_gradient("Identity")
def _identity_grad(op, g):
    return [g]


@register_gradient("Cast")
def _cast_grad(op, g):
    src = op.inputs[0].dtype
    if not (src.is_floating and g.dtype.is_floating):
        return [None]
    return [math_ops.cast(g, dtype=src.name)]


@register_gradient("Reshape")
def _reshape_grad(op, g):
    return [dispatch.run_op("ReshapeLike", [g, op.inputs[0]], {}), None]


@register_gradient("ExpandDims")
def _expand_dims_grad(op, g):
    return [dispatch.run_op("ReshapeLike", [g, op.inputs[0]], {})]


@register_gradient("Squeeze")
def _squeeze_grad(op, g):
    return [dispatch.run_op("ReshapeLike", [g, op.inputs[0]], {})]


@register_gradient("Transpose")
def _transpose_grad(op, g):
    perm = op.get_attr("perm")
    if perm is None:
        return [array_ops.transpose(g)]
    inverse = [0] * len(perm)
    for i, p in enumerate(perm):
        inverse[p] = i
    return [array_ops.transpose(g, perm=inverse)]


@register_gradient("Gather")
def _gather_grad(op, g):
    params, indices = op.inputs
    return [
        dispatch.run_op("GatherGrad", [g, indices, params],
                        {"axis": op.get_attr("axis", 0)}),
        None,
    ]


@register_gradient("GetItem")
def _getitem_grad(op, g):
    x = op.inputs[0]
    index_inputs = list(op.inputs[1:])
    grad = dispatch.run_op("GetItemGrad", [g, x] + index_inputs,
                           {"spec": op.get_attr("spec")})
    return [grad] + [None] * len(index_inputs)


@register_gradient("Concat")
def _concat_grad(op, g):
    n = len(op.inputs)
    axis = op.get_attr("axis", 0)
    grads = dispatch.run_op(_get_concat_grad(n), list((g,) + tuple(op.inputs)),
                            {"axis": axis})
    if n == 1:
        return [grads]
    return list(grads)


@register_gradient("Pack")
def _pack_grad(op, g):
    n = len(op.inputs)
    grads = dispatch.run_op(_get_pack_grad(n), [g],
                            {"axis": op.get_attr("axis", 0), "num": n})
    if n == 1:
        return [grads]
    return list(grads)


@register_gradient("SoftmaxCrossEntropyWithLogits")
def _softmax_xent_grad(op, g):
    labels, logits = op.inputs
    return [None, dispatch.run_op("SoftmaxXentGrad", [g, labels, logits], {})]


@register_gradient("SparseSoftmaxCrossEntropyWithLogits")
def _sparse_xent_grad(op, g):
    labels, logits = op.inputs
    return [None, dispatch.run_op("SparseSoftmaxXentGrad", [g, labels, logits], {})]


@register_gradient("Softmax")
def _softmax_grad(op, g):
    out = op.outputs[0]
    axis = op.get_attr("axis", -1)
    gs = math_ops.multiply(g, out)
    summed = math_ops.reduce_sum(gs, axis=axis, keepdims=True)
    return [math_ops.multiply(out, math_ops.subtract(g, summed))]
