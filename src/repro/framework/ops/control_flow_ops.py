"""Public control-flow ops: mode-aware ``cond``, ``while_loop``, ``group``.

In graph mode these stage functional control flow (the paper's Section 3
constructs); in eager mode they simply run the Python callables — the same
duality AutoGraph's operators dispatch over.
"""

from __future__ import annotations

import numpy as np

from .. import context
from ..eager.tensor import EagerTensor
from . import dispatch

__all__ = ["cond", "while_loop", "group", "print_v2", "assert_op"]


def cond(pred, true_fn, false_fn, name="cond"):
    """Data-dependent conditional.

    Graph mode: stages both branches (see
    :func:`repro.framework.graph.control_flow.cond`).  Eager mode: evaluates
    ``pred`` and runs one branch.
    """
    if context.has_default_graph():
        from ..graph.control_flow import cond as graph_cond

        return graph_cond(pred, true_fn, false_fn, name=name)
    if isinstance(pred, EagerTensor):
        pred = bool(pred)
    return true_fn() if pred else false_fn()


def while_loop(cond_fn, body_fn, loop_vars, maximum_iterations=None,
               parallel_iterations=None, name="while"):
    """Data-dependent loop over ``loop_vars``.

    Graph mode: stages the loop.  Eager mode: runs it directly.
    """
    if context.has_default_graph():
        from ..graph.control_flow import while_loop as graph_while

        return graph_while(cond_fn, body_fn, loop_vars,
                           maximum_iterations=maximum_iterations, name=name)
    loop_vars = tuple(loop_vars)
    iterations = 0
    while bool(np.asarray(cond_fn(*loop_vars))):
        if maximum_iterations is not None and iterations >= maximum_iterations:
            break
        result = body_fn(*loop_vars)
        if not isinstance(result, tuple):
            result = (result,)
        loop_vars = result
        iterations += 1
    return loop_vars


def group(*inputs, name="group"):
    """A fetchable op that forces execution of all ``inputs``."""
    return dispatch.run_op("Group", list(inputs), {}, name=name)


def print_v2(*args, sep=" ", end="\n", name=None):
    """Framework print: runs at graph-execution time when staged.

    This is the overload AutoGraph substitutes for Python ``print``
    (paper Section 6): staging a plain ``print`` would log at trace time,
    so converted code logs via this op instead.
    """
    tensor_args = []
    attrs = {"sep": sep, "end": end}
    return dispatch.run_op("PrintV2", list(args), attrs, name=name)


def assert_op(condition, data=(), message="Assertion failed", name=None):
    """Runtime assertion; raises ExecutionError when ``condition`` is false."""
    return dispatch.run_op("Assert", [condition] + list(data),
                           {"message": message}, name=name)
