"""Public neural-network ops (mode-agnostic)."""

from __future__ import annotations

from . import dispatch

__all__ = [
    "relu", "softmax", "log_softmax",
    "softmax_cross_entropy_with_logits",
    "sparse_softmax_cross_entropy_with_logits",
    "embedding_lookup",
]


def relu(x, name=None):
    """Rectified linear unit: ``max(x, 0)``."""
    return dispatch.run_op("Relu", [x], {}, name=name)


def softmax(x, axis=-1, name=None):
    """Softmax along ``axis`` (numerically stabilized)."""
    return dispatch.run_op("Softmax", [x], {"axis": axis}, name=name)


def log_softmax(x, axis=-1, name=None):
    """Log-softmax along ``axis``."""
    return dispatch.run_op("LogSoftmax", [x], {"axis": axis}, name=name)


def softmax_cross_entropy_with_logits(labels, logits, name=None):
    """Per-example cross entropy between one-hot ``labels`` and ``logits``."""
    return dispatch.run_op("SoftmaxCrossEntropyWithLogits", [labels, logits], {},
                           name=name)


def sparse_softmax_cross_entropy_with_logits(labels, logits, name=None):
    """Per-example cross entropy with integer class ``labels``."""
    return dispatch.run_op(
        "SparseSoftmaxCrossEntropyWithLogits", [labels, logits], {}, name=name
    )


def embedding_lookup(params, ids, name=None):
    """Gather embedding rows for integer ``ids``."""
    return dispatch.run_op("Gather", [params, ids], {"axis": 0}, name=name)
