"""Mode dispatch for the public ops API.

Every public op (``ops.add``, ``ops.matmul``, …) funnels through
:func:`run_op`, which decides *where* the computation happens:

- if a graph is currently being built (``Graph.as_default()``), the op is
  recorded as a node in that graph, capturing outer tensors as needed;
- otherwise the op executes eagerly, immediately, on NumPy values.

This is the same build-vs-run duality AutoGraph's dynamic dispatch rides
on: the *user's converted code* calls one API and the types/context decide
whether computation is staged.
"""

from __future__ import annotations

import numpy as np

from .. import context, dtypes
from ..eager.execute import execute_op
from ..eager.tensor import EagerTensor
from ..errors import GraphError
from ..graph.func_graph import FuncGraph
from ..graph.graph import Graph, Tensor

__all__ = ["run_op", "is_symbolic", "is_tensor", "as_graph_tensor",
           "convert_to_tensor", "register_staging_hook",
           "unregister_staging_hook", "NOT_HANDLED"]

# ---------------------------------------------------------------------------
# Alternate-backend staging hooks (paper §8).
#
# A hook is ``hook(op_type, inputs, attrs) -> result | NOT_HANDLED``.  An
# active alternate backend (the Lantern Stager) registers one so that
# *framework* ops called on its staged values emit backend IR instead of
# graph nodes / eager kernels — the op API stays backend-agnostic.
# ---------------------------------------------------------------------------

NOT_HANDLED = object()
_STAGING_HOOKS = []


def register_staging_hook(hook):
    """Register an op-level staging hook (consulted before any mode)."""
    if hook not in _STAGING_HOOKS:
        _STAGING_HOOKS.append(hook)


def unregister_staging_hook(hook):
    if hook in _STAGING_HOOKS:
        _STAGING_HOOKS.remove(hook)


def is_symbolic(value):
    """True for graph tensors."""
    return isinstance(value, Tensor)


def is_tensor(value):
    """True for any framework tensor (symbolic or eager) or Variable.

    This is the predicate the paper's Listing 2 dispatches on.
    """
    from ..graph.variables import Variable

    return isinstance(value, (Tensor, EagerTensor, Variable))


def as_graph_tensor(value, graph):
    """Coerce ``value`` to a tensor belonging to ``graph``.

    Symbolic tensors of ancestor graphs are captured (when ``graph`` is a
    FuncGraph); eager tensors become *external captures* (runtime inputs)
    in capture-enabled trace graphs and Const nodes everywhere else;
    other concrete values become Const nodes.
    """
    from ..graph.variables import Variable

    if isinstance(value, Tensor):
        if value.graph is graph:
            return value
        if isinstance(graph, FuncGraph):
            return graph.capture(value)
        raise GraphError(
            f"Tensor {value.name!r} belongs to a different graph and cannot be "
            "used here"
        )
    if isinstance(value, Variable):
        with graph.as_default():
            return value.value()
    if isinstance(value, EagerTensor):
        if getattr(graph, "capture_external", False):
            return graph.capture_eager(value)
        return graph.constant(value.numpy())
    return graph.constant(value)


def convert_to_tensor(value, dtype=None):
    """Mode-aware tensor conversion (Const node or EagerTensor)."""
    from ..graph.variables import Variable

    if context.has_default_graph():
        g = context.get_default_graph()
        if isinstance(value, Tensor):
            return as_graph_tensor(value, g)
        if isinstance(value, Variable):
            return value.value()
        if dtype is not None and not isinstance(value, Tensor):
            if isinstance(value, EagerTensor):
                value = value.numpy()
            return g.constant(np.asarray(value, dtype=dtypes.as_dtype(dtype).np_dtype))
        return as_graph_tensor(value, g)
    if isinstance(value, Variable):
        return value.value()
    if isinstance(value, Tensor):
        raise GraphError(
            f"Symbolic tensor {value.name!r} used outside any graph context"
        )
    from ..eager.tensor import convert_to_eager_tensor

    return convert_to_eager_tensor(value, dtype=dtype)


def _is_convertible(value):
    return isinstance(value, (int, float, bool, np.ndarray, np.generic, list, tuple))


def run_op(op_type, inputs, attrs=None, name=None):
    """Build or execute ``op_type`` depending on the current mode."""
    attrs = attrs or {}
    from ..graph.variables import Variable

    if _STAGING_HOOKS:
        for hook in _STAGING_HOOKS:
            result = hook(op_type, inputs, attrs)
            if result is not NOT_HANDLED:
                return result

    if context.has_default_graph():
        graph = context.get_default_graph()
        converted = []
        for v in inputs:
            if isinstance(v, Tensor) and v.graph is graph:
                converted.append(v)
            else:
                converted.append(as_graph_tensor(_deref(v), graph))
        op = graph.create_op(op_type, converted, attrs, name=name)
        if op.op_def.num_outputs == 1:
            return op.outputs[0]
        return op.outputs

    # Eager path.  Symbolic tensors leaking into eager execution is a
    # programming error (value not available).
    for v in inputs:
        if isinstance(v, Tensor):
            raise GraphError(
                f"Symbolic tensor {v.name!r} passed to eager execution of "
                f"{op_type!r}; wrap the call in `with graph.as_default():` or "
                "use Session.run"
            )
    inputs = [_deref(v) for v in inputs]
    return execute_op(op_type, inputs, attrs, name=name)


def _deref(value):
    from ..graph.variables import Variable

    if isinstance(value, Variable):
        return value.value()
    return value
