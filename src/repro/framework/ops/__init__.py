"""Public, mode-agnostic operations API.

This package is the reproduction's equivalent of the ``tf.*`` op surface:
one set of functions that *build graph nodes* when a graph is default and
*execute eagerly* otherwise.
"""

from . import dispatch
from .array_ops import (
    boolean_mask,
    concat,
    constant,
    expand_dims,
    eye,
    fill,
    gather,
    get_item,
    identity,
    one_hot,
    ones,
    ones_like,
    placeholder,
    range,
    rank,
    reshape,
    set_item,
    shape,
    size,
    squeeze,
    stack,
    tile,
    transpose,
    unstack,
    where,
    zeros,
    zeros_like,
)
from .control_flow_ops import assert_op, cond, group, print_v2, while_loop
from .dispatch import convert_to_tensor, is_symbolic, is_tensor
from .math_ops import (
    abs,
    add,
    argmax,
    argmin,
    cast,
    divide,
    equal,
    exp,
    floor,
    floordiv,
    greater,
    greater_equal,
    less,
    less_equal,
    log,
    logical_and,
    logical_not,
    logical_or,
    matmul,
    maximum,
    minimum,
    mod,
    multiply,
    negative,
    not_equal,
    pow,
    reduce_all,
    reduce_any,
    reduce_max,
    reduce_mean,
    reduce_min,
    reduce_prod,
    reduce_sum,
    sigmoid,
    sign,
    sqrt,
    square,
    subtract,
    tanh,
    tensordot,
    top_k,
)
from .nn_ops import (
    embedding_lookup,
    log_softmax,
    relu,
    softmax,
    softmax_cross_entropy_with_logits,
    sparse_softmax_cross_entropy_with_logits,
)
from .random_ops import random_normal, random_uniform, set_seed

# Gradient registrations are side-effecting imports: they attach grad_fns
# to the op registry (shared by graph gradients() and the eager tape).
from . import gradients_impl  # noqa: E402,F401  (registration side effects)
