"""Public array manipulation ops (mode-agnostic)."""

from __future__ import annotations

import numpy as np

from .. import dtypes as dtypes_mod
from ..eager.tensor import EagerTensor
from ..graph.graph import Tensor
from . import dispatch

__all__ = [
    "constant", "placeholder", "shape", "size", "rank", "reshape",
    "expand_dims", "squeeze", "transpose", "concat", "stack", "unstack",
    "tile", "gather", "boolean_mask", "fill", "zeros", "ones",
    "zeros_like", "ones_like", "range", "one_hot", "identity", "where",
    "get_item", "set_item", "eye",
]


def constant(value, dtype=None, name="Const"):
    """A constant tensor (graph Const node or EagerTensor)."""
    from .. import context

    if context.has_default_graph():
        g = context.get_default_graph()
        if isinstance(value, EagerTensor):
            value = value.numpy()
        if dtype is not None:
            value = np.asarray(value, dtype=dtypes_mod.as_dtype(dtype).np_dtype)
        return g.constant(value, name=name)
    return dispatch.convert_to_tensor(value, dtype=dtype)


def placeholder(dtype, shape=None, name="Placeholder"):
    """A graph input to be fed at ``Session.run`` time."""
    from .. import context

    return context.get_default_graph().placeholder(dtype, shape=shape, name=name)


def shape(x, name=None):
    """Dynamic shape of ``x`` as an int32 vector tensor."""
    return dispatch.run_op("Shape", [x], {}, name=name)


def size(x, name=None):
    """Total element count of ``x`` (int32 scalar)."""
    return dispatch.run_op("Size", [x], {}, name=name)


def rank(x, name=None):
    """Rank of ``x`` (int32 scalar)."""
    return dispatch.run_op("Rank", [x], {}, name=name)


def reshape(x, new_shape, name=None):
    """Reshape ``x``; ``new_shape`` may be a python sequence or a tensor."""
    if isinstance(new_shape, (list, tuple)):
        new_shape = np.asarray(new_shape, dtype=np.int32)
    return dispatch.run_op("Reshape", [x, new_shape], {}, name=name)


def expand_dims(x, axis, name=None):
    """Insert a length-1 dimension at ``axis``."""
    return dispatch.run_op("ExpandDims", [x], {"axis": axis}, name=name)


def squeeze(x, axis=None, name=None):
    """Remove length-1 dimensions (all, or the one at ``axis``)."""
    return dispatch.run_op("Squeeze", [x], {"axis": axis}, name=name)


def transpose(x, perm=None, name=None):
    """Permute dimensions (reverse if ``perm`` is None)."""
    return dispatch.run_op("Transpose", [x], {"perm": tuple(perm) if perm is not None else None},
                           name=name)


def concat(values, axis=0, name=None):
    """Concatenate a list of tensors along ``axis``."""
    return dispatch.run_op("Concat", list(values), {"axis": axis}, name=name)


def stack(values, axis=0, name=None):
    """Stack a list of tensors along a new ``axis``."""
    return dispatch.run_op("Pack", list(values), {"axis": axis}, name=name)


def unstack(x, num=None, axis=0, name=None):
    """Split ``x`` into a python list of tensors along ``axis``.

    ``num`` must be statically known (from the shape when omitted).
    """
    if num is None:
        s = x.shape if hasattr(x, "shape") else None
        if s is None or s.dims is None or s.dims[axis] is None:
            raise ValueError("unstack requires a statically-known dimension")
        num = s.dims[axis]
    return [get_item(x, _axis_index(axis, i)) for i in range(num)]


def _axis_index(axis, i):
    if axis == 0:
        return i
    return tuple([slice(None)] * axis + [i])


def tile(x, multiples, name=None):
    """Tile ``x`` by ``multiples`` per dimension."""
    if isinstance(multiples, (list, tuple)):
        multiples = np.asarray(multiples, dtype=np.int32)
    return dispatch.run_op("Tile", [x, multiples], {}, name=name)


def gather(params, indices, axis=0, name=None):
    """Gather rows (slices along ``axis``) of ``params`` by ``indices``."""
    return dispatch.run_op("Gather", [params, indices], {"axis": axis}, name=name)


def boolean_mask(x, mask, name=None):
    """Select the rows of ``x`` where ``mask`` is True."""
    return dispatch.run_op("BooleanMask", [x, mask], {}, name=name)


def fill(dims, value, name=None):
    """A tensor of shape ``dims`` filled with ``value``."""
    if isinstance(dims, (list, tuple)):
        dims = np.asarray(dims, dtype=np.int32)
    return dispatch.run_op("Fill", [dims, value], {}, name=name)


def zeros(shape_, dtype=dtypes_mod.float32, name=None):
    """A tensor of zeros."""
    return constant(np.zeros(tuple(shape_), dtype=dtypes_mod.as_dtype(dtype).np_dtype),
                    name=name or "zeros")


def ones(shape_, dtype=dtypes_mod.float32, name=None):
    """A tensor of ones."""
    return constant(np.ones(tuple(shape_), dtype=dtypes_mod.as_dtype(dtype).np_dtype),
                    name=name or "ones")


def eye(n, dtype=dtypes_mod.float32, name=None):
    """The n-by-n identity matrix."""
    return constant(np.eye(n, dtype=dtypes_mod.as_dtype(dtype).np_dtype),
                    name=name or "eye")


def zeros_like(x, name=None):
    """Zeros with the shape/dtype of ``x``."""
    return dispatch.run_op("ZerosLike", [x], {}, name=name)


def ones_like(x, name=None):
    """Ones with the shape/dtype of ``x``."""
    return dispatch.run_op("OnesLike", [x], {}, name=name)


def range(start, limit=None, delta=1, name=None):
    """A 1-D tensor of evenly spaced values (like ``tf.range``)."""
    if limit is None:
        start, limit = 0, start
    return dispatch.run_op("Range", [start, limit, delta], {}, name=name)


def one_hot(indices, depth, on_value=1.0, off_value=0.0, dtype=dtypes_mod.float32,
            name=None):
    """One-hot encode integer ``indices`` into ``depth`` classes."""
    return dispatch.run_op(
        "OneHot", [indices, depth],
        {"on_value": on_value, "off_value": off_value,
         "dtype": dtypes_mod.as_dtype(dtype).name},
        name=name,
    )


def identity(x, name=None):
    """Pass-through op (useful for naming / control dependencies)."""
    return dispatch.run_op("Identity", [x], {}, name=name)


def where(cond, x=None, y=None, name=None):
    """Elementwise (or row-wise for vector cond) select of x/y by cond."""
    if x is None or y is None:
        raise NotImplementedError("where requires both branches in this build")
    return dispatch.run_op("Select", [cond, x, y], {}, name=name)


# ---------------------------------------------------------------------------
# General indexing: x[key] and functional x[key] = v
# ---------------------------------------------------------------------------


def _is_tensor_index(k):
    return isinstance(k, (Tensor, EagerTensor))


def _build_index_spec(key):
    """Split an indexing key into a static spec + dynamic tensor inputs."""
    entries = []
    tensor_inputs = []
    key_tuple = key if isinstance(key, tuple) else (key,)
    for k in key_tuple:
        if _is_tensor_index(k):
            entries.append(("tensor",))
            tensor_inputs.append(k)
        elif isinstance(k, slice):
            parts = []
            for part in (k.start, k.stop, k.step):
                if part is None:
                    parts.append(None)
                elif _is_tensor_index(part):
                    parts.append("T")
                    tensor_inputs.append(part)
                else:
                    parts.append(int(part))
            entries.append(("dslice", parts[0], parts[1], parts[2]))
        elif k is Ellipsis:
            entries.append(("ellipsis",))
        elif k is None:
            entries.append(("newaxis",))
        elif isinstance(k, (int, np.integer)):
            entries.append(("idx", int(k)))
        elif isinstance(k, (list, np.ndarray)):
            entries.append(("tensor",))
            tensor_inputs.append(np.asarray(k))
        else:
            raise TypeError(f"Unsupported index component: {k!r}")
    return tuple(entries), tensor_inputs


def get_item(x, key, name=None):
    """``x[key]`` with tensor-valued indices supported."""
    spec, tensor_inputs = _build_index_spec(key)
    return dispatch.run_op("GetItem", [x] + tensor_inputs, {"spec": spec}, name=name)


def set_item(x, key, value, name=None):
    """Value-semantics slice write: returns a copy of ``x`` with
    ``x[key] = value`` applied (paper §7.2, Slices)."""
    spec, tensor_inputs = _build_index_spec(key)
    return dispatch.run_op("SetItem", [x, value] + tensor_inputs, {"spec": spec},
                           name=name)
