"""Data types for the framework.

Mirrors the role of ``tf.DType``: a small registry of element types with
NumPy interop, promotion rules and classification predicates.  Both the
eager and the graph execution modes share these objects, so tensors carry
identical type metadata regardless of how they are executed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DType",
    "float32",
    "float64",
    "int32",
    "int64",
    "bool_",
    "string",
    "variant",
    "as_dtype",
    "from_numpy",
    "result_dtype",
]


class DType:
    """An element type.

    Attributes:
      name: canonical string name, e.g. ``"float32"``.
      np_dtype: the corresponding NumPy dtype, or None for ``variant``.
      is_floating / is_integer / is_bool / is_string: classification flags.
    """

    __slots__ = ("name", "np_dtype", "is_floating", "is_integer", "is_bool", "is_string")

    def __init__(self, name, np_dtype, *, floating=False, integer=False, boolean=False, string=False):
        self.name = name
        self.np_dtype = np.dtype(np_dtype) if np_dtype is not None else None
        self.is_floating = floating
        self.is_integer = integer
        self.is_bool = boolean
        self.is_string = string

    @property
    def is_numeric(self):
        return self.is_floating or self.is_integer

    def __repr__(self):
        return f"<dtype: {self.name!r}>"

    def __str__(self):
        return self.name

    def __eq__(self, other):
        if isinstance(other, DType):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other
        return NotImplemented

    def __hash__(self):
        return hash(self.name)


float32 = DType("float32", np.float32, floating=True)
float64 = DType("float64", np.float64, floating=True)
int32 = DType("int32", np.int32, integer=True)
int64 = DType("int64", np.int64, integer=True)
bool_ = DType("bool", np.bool_, boolean=True)
string = DType("string", None, string=True)
# `variant` carries opaque runtime values (TensorArray state, staged lists).
variant = DType("variant", None)

_BY_NAME = {
    d.name: d for d in (float32, float64, int32, int64, bool_, string, variant)
}
_BY_NP = {
    np.dtype(np.float32): float32,
    np.dtype(np.float64): float64,
    np.dtype(np.int32): int32,
    np.dtype(np.int64): int64,
    np.dtype(np.bool_): bool_,
    # Common widths normalized onto the supported set.
    np.dtype(np.int16): int32,
    np.dtype(np.int8): int32,
    np.dtype(np.uint8): int32,
    np.dtype(np.float16): float32,
}


def as_dtype(value):
    """Coerce ``value`` (DType, str, np.dtype, python type) to a DType."""
    if isinstance(value, DType):
        return value
    if isinstance(value, str):
        try:
            return _BY_NAME[value]
        except KeyError:
            raise TypeError(f"Unknown dtype name: {value!r}") from None
    if value is float:
        return float32
    if value is int:
        return int32
    if value is bool:
        return bool_
    if value is str:
        return string
    try:
        np_dt = np.dtype(value)
    except TypeError:
        raise TypeError(f"Cannot convert {value!r} to a DType") from None
    return from_numpy(np_dt)


def from_numpy(np_dtype):
    """Map a NumPy dtype onto a framework DType."""
    np_dtype = np.dtype(np_dtype)
    try:
        return _BY_NP[np_dtype]
    except KeyError:
        if np_dtype.kind in ("U", "S", "O"):
            return string
        raise TypeError(f"Unsupported NumPy dtype: {np_dtype}") from None


# Promotion lattice: bool < int32 < int64 < float32 < float64.
_PROMOTION_ORDER = {"bool": 0, "int32": 1, "int64": 2, "float32": 3, "float64": 4}


def result_dtype(a, b):
    """Binary-op result type, following a simple promotion lattice."""
    a = as_dtype(a)
    b = as_dtype(b)
    if a == b:
        return a
    if a.name not in _PROMOTION_ORDER or b.name not in _PROMOTION_ORDER:
        raise TypeError(f"No promotion rule for {a} and {b}")
    return a if _PROMOTION_ORDER[a.name] >= _PROMOTION_ORDER[b.name] else b
