"""The TensorFlow-like substrate: a dataflow-graph ML framework.

Two execution modes over one op registry:

- **eager** (define-by-run): ops execute immediately on NumPy values, with
  ``GradientTape`` for autodiff — the paper's TF Eager / PyTorch analogue.
- **graph** (define-and-run): ops are staged into a :class:`Graph` and
  executed by a :class:`Session` with compiled plans — the paper's
  TensorFlow graph analogue, the IR that AutoGraph lowers Python into.
"""

from . import context, dtypes, nest, shapes
from .context import executing_eagerly
from .dtypes import as_dtype, bool_, float32, float64, int32, int64, string, variant
from .eager import EagerTensor, GradientTape
from .errors import (
    ExecutionError,
    FetchError,
    FrameworkError,
    GraphError,
    InvalidArgumentError,
    OpError,
    StagingError,
    UninitializedVariableError,
)
from .graph import (
    Graph,
    Operation,
    Session,
    Tensor,
    TensorArray,
    Variable,
    cond,
    global_variables_initializer,
    gradients,
    while_loop,
)
from .shapes import TensorShape
from . import ops

__all__ = [
    "ops",
    "context",
    "dtypes",
    "nest",
    "shapes",
    "executing_eagerly",
    "as_dtype",
    "float32",
    "float64",
    "int32",
    "int64",
    "bool_",
    "string",
    "variant",
    "EagerTensor",
    "GradientTape",
    "Graph",
    "Operation",
    "Session",
    "Tensor",
    "TensorArray",
    "Variable",
    "cond",
    "while_loop",
    "gradients",
    "global_variables_initializer",
    "TensorShape",
    "FrameworkError",
    "OpError",
    "InvalidArgumentError",
    "GraphError",
    "StagingError",
    "ExecutionError",
    "UninitializedVariableError",
    "FetchError",
]
