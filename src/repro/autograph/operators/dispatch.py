"""Backend dispatch predicates (paper §6 and §8).

AutoGraph's operators decide at *runtime* whether a value warrants staging.
The default backend is the framework's graph IR; additional backends (the
Lantern S-expression IR, Section 8) register themselves here, making the
SCT front-end backend-agnostic.
"""

from __future__ import annotations

__all__ = ["is_staged", "staging_backend_for", "register_backend",
           "unregister_backend", "framework_is_tensor",
           "register_call_interceptor", "unregister_call_interceptor",
           "intercept_call", "NOT_INTERCEPTED"]

# Backends are consulted in registration order, before the framework
# default.  A backend is any object with:
#   matches(value) -> bool
#   if_stmt(cond, body, orelse, symbol_names) -> tuple
#   while_stmt(test, body, init_state, symbol_names, opts) -> tuple
#   for_stmt(iter_, extra_test, body, init_state, symbol_names, opts) -> tuple
_BACKENDS = []


def register_backend(backend):
    """Register an alternate staging backend (e.g. Lantern)."""
    if backend not in _BACKENDS:
        _BACKENDS.append(backend)


def unregister_backend(backend):
    if backend in _BACKENDS:
        _BACKENDS.remove(backend)


def framework_is_tensor(value):
    """The paper's ``is_tensor``: True for framework tensors/variables."""
    from repro.framework.ops import dispatch as fw_dispatch

    return fw_dispatch.is_tensor(value)


def staging_backend_for(value):
    """The registered backend claiming ``value``, or None."""
    for backend in _BACKENDS:
        if backend.matches(value):
            return backend
    return None


def is_staged(value):
    """True when ``value`` belongs to any staging backend."""
    if framework_is_tensor(value):
        return True
    return staging_backend_for(value) is not None


# ---------------------------------------------------------------------------
# converted_call interception (paper §8: __call_staged).
#
# Backends that stage *function calls* themselves (Lantern's recursive
# models) register an interceptor; converted_call offers each call to the
# interceptors before converting/calling.
# ---------------------------------------------------------------------------

NOT_INTERCEPTED = object()
_CALL_INTERCEPTORS = []


def register_call_interceptor(hook):
    if hook not in _CALL_INTERCEPTORS:
        _CALL_INTERCEPTORS.append(hook)


def unregister_call_interceptor(hook):
    if hook in _CALL_INTERCEPTORS:
        _CALL_INTERCEPTORS.remove(hook)


def intercept_call(f, args, kwargs):
    """Offer a call to registered interceptors; NOT_INTERCEPTED if unclaimed."""
    for hook in _CALL_INTERCEPTORS:
        result = hook(f, args, kwargs)
        if result is not NOT_INTERCEPTED:
            return result
    return NOT_INTERCEPTED
