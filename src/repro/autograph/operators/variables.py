"""Reified undefined values (paper §7.2, Control Flow).

Python allows symbols to be defined in only some branches of a
conditional.  The functional form of staged control flow must return
*every* symbol either branch modifies, so symbols a branch does not define
are represented by :class:`Undefined`.  Using an Undefined value raises a
clear error — the "verify and explicitly delete undefined symbols before
use" behavior the paper lists as planned work.
"""

from __future__ import annotations

__all__ = ["Undefined", "UndefinedReturnValue", "ld", "ldu"]


class Undefined:
    """Marker for a symbol with no value on this code path."""

    __slots__ = ("symbol_name",)

    def __init__(self, symbol_name):
        self.symbol_name = symbol_name

    def read_error(self):
        return UnboundLocalError(
            f"local variable {self.symbol_name!r} is referenced before "
            "assignment (it was only defined on some code paths)"
        )

    # Any meaningful interaction with an undefined value is an error.
    def __bool__(self):
        raise self.read_error()

    def __getattr__(self, name):
        if name in ("symbol_name", "read_error"):
            return object.__getattribute__(self, name)
        raise self.read_error()

    def __getitem__(self, key):
        raise self.read_error()

    def __call__(self, *args, **kwargs):
        raise self.read_error()

    def __iter__(self):
        raise self.read_error()

    def __add__(self, other):
        raise self.read_error()

    __radd__ = __sub__ = __rsub__ = __mul__ = __rmul__ = __add__
    __truediv__ = __rtruediv__ = __lt__ = __gt__ = __le__ = __ge__ = __add__

    def __repr__(self):
        return f"<undefined symbol {self.symbol_name!r}>"


class UndefinedReturnValue(Undefined):
    """Marker for "the function did not return" (paper §7.2, Return)."""

    def __init__(self):
        super().__init__("<return value>")


def ld(value):
    """Load a symbol, raising if it is undefined."""
    if isinstance(value, Undefined):
        raise value.read_error()
    return value


def ldu(value_fn, name):
    """Load-or-undefined: used where a symbol may legitimately be unset."""
    try:
        return value_fn()
    except (NameError, UnboundLocalError):
        return Undefined(name)
