"""List operator overloads (paper §7.2, Lists).

Plain Python lists keep plain semantics.  When the user declares a staged
element type via the ``ag.set_element_type`` directive, the list becomes a
:class:`TensorArray` so that appends inside staged loops thread through
the IR; ``ag.stack`` materializes it (the extra idiom the paper adds for
array programming).
"""

from __future__ import annotations

import numpy as np

from repro.framework import dtypes, ops
from repro.framework.errors import StagingError
from repro.framework.graph.graph import Tensor as SymbolicTensor
from repro.framework.graph.tensor_array import TensorArray, TensorArrayValue
from repro.framework.registry import _REGISTRY, OpDef

__all__ = [
    "new_list",
    "new_list_of_type",
    "list_append",
    "list_pop",
    "list_stack",
    "ListPopOpts",
]


class ListPopOpts:
    """Options carrier for list pops (element dtype/shape hints)."""

    def __init__(self, element_dtype=None, element_shape=None):
        self.element_dtype = element_dtype
        self.element_shape = element_shape


def new_list(iterable=None):
    """Overload of list literals / ``list()``."""
    if iterable is None:
        return []
    return list(iterable)


def new_list_of_type(existing, element_dtype):
    """Applies an ``ag.set_element_type`` directive: convert ``existing``
    (which must be an empty or tensor-holding list) to a TensorArray."""
    element_dtype = dtypes.as_dtype(element_dtype)
    if isinstance(existing, TensorArray):
        return existing
    if not isinstance(existing, list):
        raise StagingError(
            f"set_element_type expects a Python list, got {type(existing).__name__}"
        )
    ta = TensorArray(element_dtype, size=0, dynamic_size=True)
    for i, value in enumerate(existing):
        ta = ta.write(i, value)
    return ta


def list_append(list_, x):
    """Overload of ``l.append(x)``: returns the updated list."""
    if isinstance(list_, TensorArray):
        return list_.write(list_.size(), x)
    if isinstance(list_, list):
        list_.append(x)
        return list_
    if hasattr(list_, "append"):
        # Arbitrary user objects with an append method keep native
        # semantics; the reassignment the converter generated is a no-op.
        list_.append(x)
        return list_
    raise StagingError(
        f"append called on unsupported staged value {type(list_).__name__}"
    )


# A TensorArray pop primitive (returns shortened array + last element).
def _ta_pop_kernel(ta):
    if not len(ta.items):
        raise IndexError("pop from empty TensorArray")
    return TensorArrayValue(ta.items[:-1]), ta.items[-1]


if "TensorArrayPop" not in _REGISTRY:
    _REGISTRY["TensorArrayPop"] = OpDef(
        "TensorArrayPop", _ta_pop_kernel, num_outputs=2,
        dtype_fn=lambda dts, attrs: [dtypes.variant, dtypes.variant],
    )


def list_pop(list_, i=None, opts=None):
    """Overload of ``x = l.pop()``: returns ``(new_list, popped_value)``."""
    if isinstance(list_, TensorArray):
        if i is not None:
            raise StagingError("staged list pop only supports popping the tail")
        from repro.framework.ops import dispatch as fw_dispatch

        flow, value = fw_dispatch.run_op("TensorArrayPop", [list_.flow], {})
        return TensorArray._from_flow(list_.element_dtype, flow), value
    if isinstance(list_, list):
        value = list_.pop() if i is None else list_.pop(i)
        return list_, value
    if hasattr(list_, "pop"):
        value = list_.pop() if i is None else list_.pop(i)
        return list_, value
    raise StagingError(
        f"pop called on unsupported staged value {type(list_).__name__}"
    )


def list_stack(list_, strict=False):
    """Overload of ``ag.stack``: a tensor stacking the list elements."""
    if isinstance(list_, TensorArray):
        return list_.stack()
    if isinstance(list_, list):
        if list_ and all(
            isinstance(x, SymbolicTensor) or hasattr(x, "numpy") for x in list_
        ):
            return ops.stack(list_)
        if strict:
            raise StagingError("stack requires a list of tensors")
        return ops.constant(np.stack([np.asarray(x) for x in list_]))
    if isinstance(list_, (SymbolicTensor,)) or hasattr(list_, "numpy"):
        # Already a tensor.
        return list_
    raise StagingError(
        f"stack called on unsupported value {type(list_).__name__}"
    )
