"""Operator library: the runtime that converted code dispatches into.

Generated code references this package under the alias ``ag__``.  Every
function here implements the paper's *dynamic dispatch* (Section 6):
inspect the runtime types, stage into the backend IR when they are
tensor-like, and fall back to plain Python semantics otherwise.
"""

from .control_flow import for_stmt, if_exp, if_stmt, while_stmt
from .data_structures import (
    ListPopOpts,
    list_append,
    list_pop,
    list_stack,
    new_list,
    new_list_of_type,
)
from .dispatch import is_staged, register_backend, unregister_backend
from .exceptions import assert_stmt
from .function_wrappers import FunctionScope, with_function_scope
from .logical import and_, eq, gt_, gt_e, lt_, lt_e, not_, not_eq, or_
from .py_builtins import (
    abs_,
    float_,
    int_,
    len_,
    overload_of,
    print_,
    range_,
)
from .slices import get_item, set_item
from .variables import Undefined, UndefinedReturnValue, ld, ldu

# ``converted_call`` lives in impl.api but is referenced from generated
# code as ``ag__.converted_call``; forward lazily to avoid the circular
# import (api -> operators -> api).
_api = None


def converted_call(f, args=(), kwargs=None, options=None):
    """Forward to :func:`repro.autograph.impl.api.converted_call`."""
    global _api
    if _api is None:
        from ..impl import api as _api_module

        _api = _api_module
    return _api.converted_call(f, args, kwargs, options)

__all__ = [
    "converted_call",
    "if_stmt",
    "while_stmt",
    "for_stmt",
    "if_exp",
    "and_",
    "or_",
    "not_",
    "eq",
    "not_eq",
    "gt_",
    "gt_e",
    "lt_",
    "lt_e",
    "new_list",
    "new_list_of_type",
    "list_append",
    "list_pop",
    "list_stack",
    "ListPopOpts",
    "get_item",
    "set_item",
    "print_",
    "len_",
    "range_",
    "int_",
    "float_",
    "abs_",
    "overload_of",
    "assert_stmt",
    "FunctionScope",
    "with_function_scope",
    "Undefined",
    "UndefinedReturnValue",
    "ld",
    "ldu",
    "is_staged",
    "register_backend",
    "unregister_backend",
]
