"""Dynamically-dispatched control flow operators (paper §6, Listing 2).

``if_stmt``/``while_stmt``/``for_stmt`` are the overloads the conversion
passes substitute for Python's ``if``/``while``/``for``.  Each inspects
its runtime operands:

- a *symbolic* (graph) tensor stages the construct into the graph IR;
- a value claimed by a registered alternate backend (Lantern) stages into
  that backend's IR;
- anything else — including *eager* tensors — executes with plain Python
  semantics.  This is the "macro-programming mode": conditionals on
  hyperparameters run imperatively, unstaged.
"""

from __future__ import annotations

from repro.framework import ops
from repro.framework.errors import StagingError
from repro.framework.graph.graph import Tensor as SymbolicTensor
from repro.framework.graph.tensor_array import TensorArray

from repro.framework.registry import _REGISTRY, OpDef
from repro.framework import dtypes as fw_dtypes

from . import dispatch
from .variables import Undefined, UndefinedReturnValue

__all__ = ["if_stmt", "while_stmt", "for_stmt", "if_exp"]


# A variant-typed constant carrying an UndefinedReturnValue marker.  Used
# to thread "the function has not returned yet" through staged control
# flow: the marker is never read on any well-formed path (the do_return
# flag guards it), so its variant dtype is exempt from branch-consistency
# checks.
def _undefined_const_kernel(marker=None):
    return marker


if "UndefinedConst" not in _REGISTRY:
    _REGISTRY["UndefinedConst"] = OpDef(
        "UndefinedConst", _undefined_const_kernel,
        dtype_fn=lambda dts, attrs: [fw_dtypes.variant],
    )


def _stage_return_placeholder(value):
    """Replace an UndefinedReturnValue with a stageable variant tensor."""
    from repro.framework.ops import dispatch as fw_dispatch

    return fw_dispatch.run_op("UndefinedConst", [], {"marker": value})


def _stages(value):
    """True when ``value`` forces staging of control flow."""
    if isinstance(value, SymbolicTensor):
        return True
    return dispatch.staging_backend_for(value) is not None


def _check_defined(values, symbol_names, construct):
    for value, name in zip(values, symbol_names):
        if isinstance(value, UndefinedReturnValue):
            continue  # handled by _stage_return_placeholder
        if isinstance(value, Undefined):
            raise StagingError(
                f"{construct}: the symbol {name!r} must be defined on all "
                "code paths when the statement is staged (it is missing a "
                "value on at least one path)"
            )


def _substitute_return_placeholders(values):
    return tuple(
        _stage_return_placeholder(v) if isinstance(v, UndefinedReturnValue) else v
        for v in values
    )


# ---------------------------------------------------------------------------
# if
# ---------------------------------------------------------------------------


def if_stmt(cond, body, orelse, symbol_names=()):
    """Functional overload of ``if`` (paper Listing 2).

    Args:
      cond: the condition value.
      body/orelse: niladic callables returning a tuple of final values for
        ``symbol_names``.
      symbol_names: names of the symbols modified by either branch that are
        live after the statement.

    Returns:
      Tuple of values for ``symbol_names``.
    """
    backend = dispatch.staging_backend_for(cond)
    if backend is not None:
        return backend.if_stmt(cond, body, orelse, symbol_names)
    if isinstance(cond, SymbolicTensor):
        return _staged_if(cond, body, orelse, symbol_names)
    # Plain Python semantics (includes eager tensors via __bool__).
    if cond:
        return body()
    return orelse()


def _staged_if(cond, body, orelse, symbol_names):
    n = len(symbol_names)

    if n == 0:
        # Side-effect-only staged conditional: thread a dummy value.
        def body_wrapped():
            body()
            return ops.constant(0)

        def orelse_wrapped():
            orelse()
            return ops.constant(0)

        ops.cond(cond, body_wrapped, orelse_wrapped)
        return ()

    def check(branch_name):
        def checker(values):
            values = values if isinstance(values, tuple) else (values,)
            for value, name in zip(values, symbol_names):
                if isinstance(value, UndefinedReturnValue):
                    continue
                if isinstance(value, Undefined):
                    raise StagingError(
                        f"if: the symbol {name!r} is only defined in the "
                        f"{branch_name} branch; staged conditionals require "
                        "all code paths to produce a consistent value"
                    )
            return _substitute_return_placeholders(values)

        return checker

    check_body = check("main")
    check_orelse = check("else")
    result = ops.cond(
        cond,
        lambda: check_body(body()),
        lambda: check_orelse(orelse()),
    )
    if n == 1 and not isinstance(result, tuple):
        return (result,)
    return tuple(result)


# ---------------------------------------------------------------------------
# while
# ---------------------------------------------------------------------------


def while_stmt(test, body, init_state, symbol_names=(), opts=None):
    """Functional overload of ``while``.

    Args:
      test: callable(*state) -> condition.
      body: callable(*state) -> new state tuple.
      init_state: tuple of initial values of the loop's state symbols.
      symbol_names: names of the state symbols (diagnostics).
      opts: loop options from ``ag.set_loop_options`` directives.

    Returns:
      Tuple of final state values.
    """
    opts = opts or {}
    init_state = tuple(init_state)

    for value in init_state:
        backend = dispatch.staging_backend_for(value)
        if backend is not None:
            return backend.while_stmt(test, body, init_state, symbol_names, opts)

    if any(_stages(v) for v in init_state):
        _check_defined(init_state, symbol_names, "while")
        return _staged_while(test, body, init_state, symbol_names, opts)

    # The loop state is plain Python; but the *condition* may still close
    # over a symbolic tensor (paper Appendix E: "condition closure is
    # collection of any Tensor-like").  Evaluate it once to find out; the
    # computed value is reused so Python side effects are not duplicated.
    first = test(*init_state)
    backend = dispatch.staging_backend_for(first)
    if backend is not None:
        return backend.while_stmt(test, body, init_state, symbol_names, opts)
    if isinstance(first, SymbolicTensor):
        return _staged_while(test, body, init_state, symbol_names, opts)

    state = init_state
    keep_going = first
    while keep_going:
        new_state = body(*state)
        if not isinstance(new_state, tuple):
            new_state = (new_state,)
        if any(_stages(v) for v in new_state):
            # The loop state became tensor-dependent mid-flight (e.g. a
            # data-dependent `break` flag).  Restart the whole loop as a
            # staged loop from the *initial* state; the partially built
            # first-iteration ops are dead nodes the executor prunes.
            _check_defined(init_state, symbol_names, "while")
            return _staged_while(test, body, init_state, symbol_names, opts)
        state = new_state
        keep_going = test(*state)
        if _stages(keep_going):
            _check_defined(init_state, symbol_names, "while")
            return _staged_while(test, body, init_state, symbol_names, opts)
    return state


def _staged_while(test, body, init_state, symbol_names, opts):
    if not init_state:
        raise StagingError(
            "while: a staged loop requires at least one loop variable; the "
            "loop body does not modify any symbol that is live afterwards"
        )
    init_state = _substitute_return_placeholders(init_state)

    def body_fn(*state):
        new_state = body(*state)
        if not isinstance(new_state, tuple):
            new_state = (new_state,)
        _check_defined(new_state, symbol_names, "while")
        return _substitute_return_placeholders(new_state)

    max_iter = opts.get("maximum_iterations")
    result = ops.while_loop(test, body_fn, init_state,
                            maximum_iterations=max_iter)
    return tuple(result)


# ---------------------------------------------------------------------------
# for
# ---------------------------------------------------------------------------


def for_stmt(iter_, extra_test, body, init_state, symbol_names=(), opts=None):
    """Functional overload of ``for``.

    Args:
      iter_: the iterated object (python iterable, tensor, TensorArray or
        backend-staged value).
      extra_test: callable(*state) -> bool, or None; injected by the
        break/return lowering passes.
      body: callable(iterate, *state) -> new state tuple.
      init_state: initial state values.
      symbol_names: state symbol names.
      opts: loop options.

    Returns:
      Tuple of final state values.
    """
    opts = opts or {}
    init_state = tuple(init_state)

    backend = dispatch.staging_backend_for(iter_)
    if backend is not None:
        return backend.for_stmt(iter_, extra_test, body, init_state,
                                symbol_names, opts)

    if isinstance(iter_, SymbolicTensor):
        _check_defined(init_state, symbol_names, "for")
        return _staged_for(iter_, extra_test, body, init_state, symbol_names,
                           opts)

    # Python iteration (lists, ranges, numpy arrays, eager tensors, ...).
    state = init_state
    for value in iter_:
        if extra_test is not None:
            verdict = extra_test(*state)
            if isinstance(verdict, SymbolicTensor):
                # The continuation condition became a tensor: restage the
                # loop over the (python) iterable as a staged loop when
                # possible — here the iterable itself is python, so fall
                # back to iterating with staged conditional guards.
                raise StagingError(
                    "for: the loop's break/return condition depends on a "
                    "tensor but the iterated object is a plain Python "
                    "iterable; iterate over a tensor (e.g. tf.range) to "
                    "stage this loop"
                )
            if not verdict:
                break
        state = body(value, *state)
        if not isinstance(state, tuple):
            state = (state,)
    return state


def _staged_for(iter_, extra_test, body, init_state, symbol_names, opts):
    init_state = _substitute_return_placeholders(init_state)
    n = ops.shape(iter_)
    n0 = ops.get_item(n, 0)
    i0 = ops.constant(0, dtype="int32")

    def cond_fn(i, *state):
        in_range = ops.less(i, n0)
        if extra_test is None:
            return in_range
        return ops.cond(
            in_range,
            lambda: _ensure_bool_tensor(extra_test(*state)),
            lambda: ops.constant(False),
        )

    def body_fn(i, *state):
        x = ops.get_item(iter_, i)
        new_state = body(x, *state)
        if not isinstance(new_state, tuple):
            new_state = (new_state,)
        _check_defined(new_state, symbol_names, "for")
        new_state = _substitute_return_placeholders(new_state)
        return (ops.add(i, ops.constant(1, dtype="int32")),) + tuple(new_state)

    if not init_state:
        # Loop executed for side effects only: thread the index.
        result = ops.while_loop(cond_fn, body_fn, (i0,),
                                maximum_iterations=opts.get("maximum_iterations"))
        return ()

    result = ops.while_loop(cond_fn, body_fn, (i0,) + init_state,
                            maximum_iterations=opts.get("maximum_iterations"))
    return tuple(result[1:])


def _ensure_bool_tensor(value):
    if isinstance(value, SymbolicTensor):
        return value
    return ops.constant(bool(value))


# ---------------------------------------------------------------------------
# ternary
# ---------------------------------------------------------------------------


def if_exp(cond, if_true, if_false):
    """Overload of ``x if cond else y`` (paper §7.2, Ternary).

    Args:
      cond: condition value.
      if_true/if_false: thunks for the two branch expressions.
    """
    backend = dispatch.staging_backend_for(cond)
    if backend is not None:
        return backend.if_stmt(cond, lambda: (if_true(),),
                               lambda: (if_false(),), ("<if_exp>",))[0]
    if isinstance(cond, SymbolicTensor):
        return ops.cond(cond, if_true, if_false)
    return if_true() if cond else if_false()
