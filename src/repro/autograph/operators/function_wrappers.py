"""Function scopes: per-call wrapper state (paper §7.2, Function Wrappers).

The function_wrappers converter wraps every converted function body in a
``FunctionScope``.  In graph mode it opens a name scope (readable graphs),
collects staged side effects (prints, asserts) and attaches them as
control dependencies of the returned tensor so they survive graph pruning;
it also intercepts framework errors to attach original-source context
(Appendix B).
"""

from __future__ import annotations

from repro.framework import context as fw_context
from repro.framework.graph.graph import Tensor as SymbolicTensor

__all__ = ["FunctionScope", "with_function_scope", "register_side_effect"]

_SCOPE_STACK = []


def register_side_effect(op_output):
    """Record a staged side-effect op with the innermost function scope."""
    if _SCOPE_STACK and isinstance(op_output, SymbolicTensor):
        _SCOPE_STACK[-1].side_effects.append(op_output)


class FunctionScope:
    """Context manager active for the duration of a converted call."""

    def __init__(self, function_name):
        self.function_name = function_name
        self.side_effects = []
        self._name_scope_cm = None

    def __enter__(self):
        _SCOPE_STACK.append(self)
        if fw_context.has_default_graph():
            graph = fw_context.get_default_graph()
            self._name_scope_cm = graph.name_scope(self.function_name)
            self._name_scope_cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        if _SCOPE_STACK and _SCOPE_STACK[-1] is self:
            _SCOPE_STACK.pop()
        if self._name_scope_cm is not None:
            self._name_scope_cm.__exit__(exc_type, exc, tb)
            self._name_scope_cm = None
        return False

    def ret(self, value):
        """Mark the function's return value.

        Attaches collected side effects as control dependencies so that
        fetching the result also runs staged prints/asserts.
        """
        from repro.autograph.operators.variables import Undefined, UndefinedReturnValue

        if isinstance(value, UndefinedReturnValue):
            value = None
        elif isinstance(value, Undefined):
            # Returning a symbol that was never assigned on the taken path.
            raise value.read_error()
        if self.side_effects and isinstance(value, SymbolicTensor):
            from repro.framework import ops

            value = ops.identity(value)
            for effect in self.side_effects:
                value.op.add_control_input(effect.op)
            self.side_effects = []
        return value


def with_function_scope(thunk, function_name):
    """Run ``thunk`` inside a fresh FunctionScope (non-decorator form)."""
    with FunctionScope(function_name) as scope:
        return scope.ret(thunk())
