"""Overloads of Python builtins (paper §6 and Appendix E Table 5).

``converted_call`` replaces select builtins with these dispatched
versions: ``print`` logs at graph run time instead of trace time,
``len``/``range``/``int``/``float`` stage when their arguments are
tensors.
"""

from __future__ import annotations

import builtins

from repro.framework import ops
from repro.framework.eager.tensor import EagerTensor
from repro.framework.graph.graph import Tensor as SymbolicTensor
from repro.framework.graph.tensor_array import TensorArray

from . import dispatch

__all__ = ["overload_of", "print_", "len_", "range_", "int_", "float_", "abs_"]


def _any_symbolic(values):
    return builtins.any(isinstance(v, SymbolicTensor) for v in values)


def print_(*args, **kwargs):
    """Overload of ``print``.

    With symbolic arguments, stages a print op that logs when the graph
    executes (and registers it with the enclosing FunctionScope so it is
    not pruned).  Otherwise prints immediately, unwrapping eager tensors
    for readability.
    """
    if _any_symbolic(args):
        sep = kwargs.get("sep", " ")
        end = kwargs.get("end", "\n")
        out = ops.print_v2(*args, sep=sep, end=end)
        from .function_wrappers import register_side_effect

        register_side_effect(out)
        return None
    unwrapped = [a.numpy() if isinstance(a, EagerTensor) else a for a in args]
    return builtins.print(*unwrapped, **kwargs)


def len_(x):
    """Overload of ``len``: leading dimension for tensors."""
    if isinstance(x, TensorArray):
        return x.size()
    if isinstance(x, SymbolicTensor):
        if x.shape.dims is not None and x.shape.rank and x.shape.dims[0] is not None:
            return x.shape.dims[0]
        return ops.get_item(ops.shape(x), 0)
    if isinstance(x, EagerTensor):
        return len(x)
    return builtins.len(x)


def range_(start_or_stop, stop=None, step=None):
    """Overload of ``range``: stages when any bound is a tensor."""
    args = [a for a in (start_or_stop, stop, step) if a is not None]
    if builtins.any(
        isinstance(a, (SymbolicTensor, EagerTensor)) for a in args
    ):
        if stop is None:
            return ops.range(start_or_stop)
        if step is None:
            return ops.range(start_or_stop, stop)
        return ops.range(start_or_stop, stop, step)
    if stop is None:
        return builtins.range(start_or_stop)
    if step is None:
        return builtins.range(start_or_stop, stop)
    return builtins.range(start_or_stop, stop, step)


def int_(x=0, base=None):
    """Overload of ``int``: a cast for tensors."""
    if isinstance(x, (SymbolicTensor, EagerTensor)) and base is None:
        return ops.cast(x, dtype="int32")
    if base is not None:
        return builtins.int(x, base)
    return builtins.int(x)


def float_(x=0.0):
    """Overload of ``float``: a cast for tensors."""
    if isinstance(x, (SymbolicTensor, EagerTensor)):
        return ops.cast(x, dtype="float32")
    return builtins.float(x)


def abs_(x):
    """Overload of ``abs``."""
    if isinstance(x, (SymbolicTensor, EagerTensor)):
        return ops.abs(x)
    return builtins.abs(x)


_OVERLOADS = {
    builtins.print: print_,
    builtins.len: len_,
    builtins.range: range_,
    builtins.int: int_,
    builtins.float: float_,
    builtins.abs: abs_,
}


def overload_of(fn):
    """The dispatched overload for builtin ``fn``, or ``fn`` itself."""
    return _OVERLOADS.get(fn, fn)
