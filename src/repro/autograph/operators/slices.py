"""Slice operator overloads (paper §7.2, Slices).

Slice *writes* get value semantics: ``x[i] = y`` was rewritten to
``x = ag__.set_item(x, i, y)`` by the slices converter, because the
target IR requires functional updates.  Reads dispatch mechanically.
"""

from __future__ import annotations

from repro.framework import ops
from repro.framework.eager.tensor import EagerTensor
from repro.framework.graph.graph import Tensor as SymbolicTensor
from repro.framework.graph.tensor_array import TensorArray

from . import dispatch

__all__ = ["get_item", "set_item"]


def get_item(target, key):
    """Overload of ``target[key]``."""
    backend = dispatch.staging_backend_for(target)
    if backend is not None and hasattr(backend, "get_item"):
        return backend.get_item(target, key)
    if isinstance(target, TensorArray):
        return target.read(key)
    if isinstance(target, (SymbolicTensor, EagerTensor)):
        return ops.get_item(target, key)
    if isinstance(key, (SymbolicTensor, EagerTensor)) and hasattr(target, "__getitem__"):
        # Python container indexed by a tensor: use its concrete value when
        # available (eager), otherwise this is a staging error surfaced by
        # the container itself.
        if isinstance(key, EagerTensor):
            return target[int(key)]
    return target[key]


def set_item(target, key, value):
    """Overload of ``target[key] = value`` with value semantics."""
    backend = dispatch.staging_backend_for(target)
    if backend is not None and hasattr(backend, "set_item"):
        return backend.set_item(target, key, value)
    if isinstance(target, TensorArray):
        return target.write(key, value)
    if isinstance(target, (SymbolicTensor, EagerTensor)):
        return ops.set_item(target, key, value)
    # Native mutation; returning the target preserves the functional form
    # the converter generates.
    target[key] = value
    return target
