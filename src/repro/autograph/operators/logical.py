"""Logical and comparison operator overloads (paper §7.2).

Python cannot overload ``and``/``or``/``not`` (they are lazy), and the
framework's tensors deliberately do not overload ``==`` (see
``TensorOpsMixin``).  The logical_expressions converter therefore rewrites
these into the functions below, which dispatch on runtime types.

Lazy semantics are preserved when staging: ``a and b`` becomes
``cond(a, lambda: b, lambda: a)`` (paper Appendix E, footnote h).
"""

from __future__ import annotations

from repro.framework import ops
from repro.framework.eager.tensor import EagerTensor
from repro.framework.graph.graph import Tensor as SymbolicTensor

from . import dispatch

__all__ = ["and_", "or_", "not_", "eq", "not_eq", "gt_", "gt_e", "lt_", "lt_e"]


def _is_tensor(value):
    return isinstance(value, (SymbolicTensor, EagerTensor)) or (
        dispatch.staging_backend_for(value) is not None
    )


def and_(a_fn, b_fn):
    """Lazy ``a and b``; operands passed as thunks to preserve laziness."""
    a = a_fn()
    backend = dispatch.staging_backend_for(a)
    if backend is not None and hasattr(backend, "and_"):
        return backend.and_(a, b_fn)
    if isinstance(a, SymbolicTensor):
        return ops.cond(a, lambda: _as_cond_tensor(b_fn()), lambda: a)
    if isinstance(a, EagerTensor):
        return ops.logical_and(a, b_fn()) if bool(a) else a
    return a and b_fn()


def or_(a_fn, b_fn):
    """Lazy ``a or b``."""
    a = a_fn()
    backend = dispatch.staging_backend_for(a)
    if backend is not None and hasattr(backend, "or_"):
        return backend.or_(a, b_fn)
    if isinstance(a, SymbolicTensor):
        return ops.cond(a, lambda: a, lambda: _as_cond_tensor(b_fn()))
    if isinstance(a, EagerTensor):
        return a if bool(a) else ops.logical_or(a, b_fn())
    return a or b_fn()


def _as_cond_tensor(value):
    if isinstance(value, SymbolicTensor):
        return value
    return ops.constant(bool(value))


def not_(a):
    """``not a`` with tensor dispatch."""
    backend = dispatch.staging_backend_for(a)
    if backend is not None and hasattr(backend, "not_"):
        return backend.not_(a)
    if _is_tensor(a):
        return ops.logical_not(a)
    return not a


def _comparison(op_fn, py_fn, name):
    def compare(a, b):
        if _is_tensor(a) or _is_tensor(b):
            return op_fn(a, b)
        return py_fn(a, b)

    compare.__name__ = name
    compare.__doc__ = f"Dispatched ``{name}`` comparison."
    return compare


eq = _comparison(ops.equal, lambda a, b: a == b, "eq")
not_eq = _comparison(ops.not_equal, lambda a, b: a != b, "not_eq")
gt_ = _comparison(ops.greater, lambda a, b: a > b, "gt_")
gt_e = _comparison(ops.greater_equal, lambda a, b: a >= b, "gt_e")
lt_ = _comparison(ops.less, lambda a, b: a < b, "lt_")
lt_e = _comparison(ops.less_equal, lambda a, b: a <= b, "lt_e")
