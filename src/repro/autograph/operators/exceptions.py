"""Assert statement overload (paper §7.2, Assert Statements)."""

from __future__ import annotations

from repro.framework import ops
from repro.framework.graph.graph import Tensor as SymbolicTensor

__all__ = ["assert_stmt"]


def assert_stmt(expression_fn, message_fn=None):
    """Functional overload of ``assert``.

    Args:
      expression_fn: thunk evaluating the asserted expression.
      message_fn: optional thunk evaluating the assertion message.
    """
    expression = expression_fn()
    if isinstance(expression, SymbolicTensor):
        message = message_fn() if message_fn is not None else "Assertion failed"
        data = []
        if isinstance(message, SymbolicTensor):
            data = [message]
            message = "Assertion failed"
        out = ops.assert_op(expression, data=data, message=str(message))
        from .function_wrappers import register_side_effect

        register_side_effect(out)
        return None
    if not expression:
        if message_fn is not None:
            raise AssertionError(message_fn())
        raise AssertionError()
    return None
