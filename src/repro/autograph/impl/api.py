"""Public AutoGraph API: ``convert``, ``to_graph``, ``converted_call``.

``converted_call`` is the runtime heart of §7.2 (Function Calls): every
call site in converted code routes through it, and it decides — per the
target's runtime type — to recursively convert, substitute an overload
(builtins), or call unconverted (allowlisted modules, constructors,
functions without source).
"""

from __future__ import annotations

import functools
import inspect
import warnings

from .. import errors
from ..core.config import is_allowlisted_module
from ..core.converter import ConversionOptions
from ..operators import dispatch as op_dispatch
from ..operators import py_builtins
from . import conversion

__all__ = ["convert", "to_graph", "converted_call", "do_not_convert"]

# Conversion cache: code object -> (converted_fn, module, freevar names).
_CONVERSION_CACHE = {}
_FAILED_CONVERSIONS = set()


def do_not_convert(fn):
    """Decorator marking ``fn`` to always be called unconverted."""
    fn.__ag_do_not_convert__ = True
    return fn


def _converted_entity(fn, options):
    """Convert (or fetch from cache) and refresh closure bindings."""
    key = fn.__code__
    record = _CONVERSION_CACHE.get(key)
    if record is None:
        converted, module, _ = conversion.convert_entity(fn, options)
        record = (converted, module, fn.__code__.co_freevars)
        _CONVERSION_CACHE[key] = record
    else:
        converted, module, freevars = record
        # Refresh free variables: the same code object may be bound to
        # different closures across calls (factory functions).
        if freevars and fn.__closure__:
            ns = module.__dict__
            for name, cell in zip(freevars, fn.__closure__):
                try:
                    ns[name] = cell.cell_contents
                except ValueError:
                    pass
    return record[0]


def _should_convert(f):
    """Apply the allowlist/convertibility rules of Appendix E Table 5."""
    if getattr(f, "__ag_do_not_convert__", False):
        return False
    if getattr(f, "__ag_compiled__", False):
        return False
    code = getattr(f, "__code__", None)
    if code is None:
        return False
    if conversion.is_generated_file(code.co_filename):
        return False
    if code in _FAILED_CONVERSIONS:
        return False
    module = getattr(f, "__module__", None)
    if is_allowlisted_module(module):
        return False
    return True


def converted_call(f, args=(), kwargs=None, options=None):
    """Call ``f``, converting it first when appropriate.

    This is the overload substituted for every call site (§7.2): builtins
    may be replaced, user functions are converted recursively, everything
    else is called as-is.
    """
    kwargs = kwargs or {}
    options = options or ConversionOptions()

    # Replaced builtins (print, len, range, int, float).
    overload = py_builtins.overload_of(f)
    if overload is not f:
        return overload(*args, **kwargs)

    # Staged-call interception (Lantern's __call_staged, §8): backends that
    # stage recursion claim calls to registered functions here.
    if op_dispatch._CALL_INTERCEPTORS:
        result = op_dispatch.intercept_call(f, args, kwargs)
        if result is not op_dispatch.NOT_INTERCEPTED:
            return result

    # @convert-decorated wrappers: unwrap so the cache is shared.
    original = getattr(f, "__ag_original__", None)
    if original is not None:
        f = original

    # Constructors are not converted (Appendix E Table 5).
    if isinstance(f, type):
        return f(*args, **kwargs)

    # Bound methods: convert the underlying function, pass self explicitly.
    if inspect.ismethod(f):
        if _should_convert(f.__func__) and options.recursive:
            converted = _try_convert(f.__func__, options)
            if converted is not None:
                return converted(f.__self__, *args, **kwargs)
        return f(*args, **kwargs)

    if inspect.isfunction(f):
        if options.recursive and _should_convert(f):
            converted = _try_convert(f, options)
            if converted is not None:
                return converted(*args, **kwargs)
        return f(*args, **kwargs)

    # Callable objects: route through their (possibly convertible) __call__.
    if callable(f) and hasattr(f, "__call__") and inspect.ismethod(f.__call__):
        return converted_call(f.__call__, args, kwargs, options)

    return f(*args, **kwargs)


def _try_convert(f, options):
    try:
        return _converted_entity(f, options)
    except errors.ConversionError as e:
        _FAILED_CONVERSIONS.add(f.__code__)
        warnings.warn(
            f"AutoGraph could not convert {getattr(f, '__name__', f)!r} and "
            f"will run it as-is. Cause: {e}",
            stacklevel=2,
        )
        return None


def to_graph(f, recursive=True):
    """Convert ``f`` now and return the converted function (paper §5).

    Entities passed directly are always converted (Appendix E footnote b).
    """
    options = ConversionOptions(recursive=recursive)
    original = getattr(f, "__ag_original__", None)
    if original is not None:
        f = original
    if inspect.ismethod(f):
        converted = _converted_entity(f.__func__, options)
        return functools.partial(converted, f.__self__)
    if not inspect.isfunction(f):
        raise errors.ConversionError(
            f"to_graph requires a function or method, got {type(f).__name__}"
        )
    return _converted_entity(f, options)


def convert(recursive=True):
    """The function decorator of Listing 1: ``@ag.convert()``.

    Conversion happens lazily on first call and is cached; errors raised
    by converted code are rewritten to point at the original source
    (Appendix B).
    """

    def decorator(f):
        options = ConversionOptions(recursive=recursive)

        @functools.wraps(f)
        def wrapper(*args, **kwargs):
            converted = _converted_entity(f, options)
            try:
                return converted(*args, **kwargs)
            except errors.AutoGraphError:
                raise
            except Exception as e:
                raise errors.rewrite_error(e) from None

        wrapper.__ag_original__ = f
        return wrapper

    return decorator
