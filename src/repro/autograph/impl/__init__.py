"""Conversion driver and public API implementation."""

from . import api, conversion

__all__ = ["api", "conversion"]
