"""Whole-function conversion driver (paper §6, General Approach).

Steps, as listed in the paper:

1. read the source and closure of the function;
2. parse to AST;
3. run each conversion pass (static analysis + transformation);
4. serialize the final AST to output code;
5. load it back as a Python function, attaching the original closure and
   globals.
"""

from __future__ import annotations

import ast
import inspect

from .. import converters, errors
from ..core.converter import ConversionOptions
from ..pyct import loader, origin_info, parser, transformer

__all__ = ["convert_entity", "is_generated_file", "GENERATED_PREFIX"]

GENERATED_PREFIX = "repro_generated_"


def is_generated_file(filename):
    return GENERATED_PREFIX in filename


def _lambda_to_functiondef(lambda_node, name):
    return ast.FunctionDef(
        name=name,
        args=lambda_node.args,
        body=[ast.Return(value=lambda_node.body)],
        decorator_list=[],
        returns=None,
    )


def _closure_dict(fn):
    out = {}
    if fn.__closure__:
        for name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
            try:
                out[name] = cell.cell_contents
            except ValueError:
                pass  # empty cell (still being defined)
    return out


def convert_entity(fn, options=None):
    """Convert a live function into its staged form.

    Returns:
      (converted_fn, generated_module, generated_source): the converted
      callable (whose globals are the generated module's namespace), the
      module, and its source code.

    Raises:
      errors.ConversionError: when the source cannot be obtained/converted.
    """
    options = options or ConversionOptions()

    try:
        node, source = parser.parse_entity(fn)
    except parser.ConversionSourceError as e:
        raise errors.ConversionError(str(e)) from e

    entity_name = fn.__name__ if fn.__name__ != "<lambda>" else "lam"
    if isinstance(node, ast.Lambda):
        node = _lambda_to_functiondef(node, entity_name)
        ast.fix_missing_locations(node)

    filename = inspect.getsourcefile(fn) or "<unknown>"
    lineno_offset = max(fn.__code__.co_firstlineno - 1, 0)
    origin_info.resolve(node, source, filename, entity_name, lineno_offset)

    # Strip decorators: re-applying @ag.convert in generated code would
    # recurse (§6 step 1 obtains the undecorated function body).
    node.decorator_list = []

    info = transformer.EntityInfo(
        name=entity_name,
        source=source,
        filename=filename,
        namespace=dict(fn.__globals__),
    )
    ctx = transformer.Context(info)

    try:
        for conversion_pass in converters.PASS_ORDER:
            node = conversion_pass.transform(node, ctx)
    except errors.AutoGraphError:
        raise
    except Exception as e:
        raise errors.ConversionError(
            f"Failed to convert {entity_name!r}: {type(e).__name__}: {e}"
        ) from e

    module, generated_source, generated_filename = loader.ast_to_object(node)
    source_map = origin_info.create_source_map(
        node, generated_source, generated_filename
    )
    errors.register_source_map(generated_filename, source_map)

    converted = getattr(module, entity_name)

    # Attach the original function's world: globals, then closure values
    # (closure shadows globals), then the operator namespace.
    module.__dict__.update(
        {k: v for k, v in fn.__globals__.items() if k not in module.__dict__}
    )
    module.__dict__.update(_closure_dict(fn))
    from .. import operators as _operators

    module.__dict__["ag__"] = _operators

    converted.__ag_compiled__ = True
    converted.__ag_source__ = generated_source
    converted.__ag_module__ = module
    converted.__wrapped_original__ = fn
    return converted, module, generated_source
