"""Conversion allowlist configuration (paper Appendix E).

Functions from these modules are never converted: they *are* the staging
machinery or are known tensor-safe (the framework itself plays the role of
TF's whitelisted module; NumPy and the stdlib run as ordinary Python).
"""

from __future__ import annotations

__all__ = ["DO_NOT_CONVERT_PREFIXES", "is_allowlisted_module"]

DO_NOT_CONVERT_PREFIXES = (
    "repro.framework",
    "repro.autograph",
    "repro.lantern",
    "repro.nn",
    "numpy",
    "builtins",
    "collections",
    "functools",
    "itertools",
    "math",
    "random",
    "time",
    "os",
    "sys",
    "typing",
    "dataclasses",
    "scipy",
)


def is_allowlisted_module(module_name):
    """True when functions of ``module_name`` are called unconverted."""
    if module_name is None:
        return False
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in DO_NOT_CONVERT_PREFIXES
    )
