"""Conversion options and the shared analysis runner (paper §7).

Each conversion pass that needs dataflow facts re-runs the static
analyses over the (possibly already partially transformed) tree — this is
the "multiple passes, each preceded by static analysis" structure of §6.
"""

from __future__ import annotations

from ..pyct import cfg, qual_names
from ..pyct.static_analysis import activity, liveness, reaching_definitions

__all__ = ["ConversionOptions", "analyze"]


class ConversionOptions:
    """User-facing knobs of the conversion.

    Attributes:
      recursive: convert functions called by converted functions.
      convert_lambdas: attempt source conversion of lambdas.
      internal_convert_user_code: escape hatch used by tests.
    """

    def __init__(self, recursive=True, convert_lambdas=True):
        self.recursive = recursive
        self.convert_lambdas = convert_lambdas

    def __repr__(self):
        return (
            f"ConversionOptions(recursive={self.recursive}, "
            f"convert_lambdas={self.convert_lambdas})"
        )


def analyze(node):
    """Run the full §7.1 analysis stack over ``node``; returns ``node``."""
    qual_names.resolve(node)
    activity.resolve(node)
    graphs = cfg.build_all(node)
    reaching_definitions.resolve(node, graphs)
    liveness.resolve(node, graphs)
    return node
