"""Static analyses run before each conversion pass (paper §7.1)."""

from . import activity, liveness, reaching_definitions

__all__ = ["activity", "liveness", "reaching_definitions"]
