"""Activity analysis: symbols read and modified per statement (§7.1).

Annotates AST nodes with :class:`Scope` objects listing the qualified
names each statement reads and modifies.  Only *direct* modifications
count as writes: ``a.b = c`` modifies ``a.b`` and reads ``a``, but does
not modify ``a`` (paper §7.1).

Function and lambda bodies are *isolated* scopes: their local writes stay
local, while their free reads propagate to the enclosing statement (a
closure read is a read at the definition site for liveness purposes).
"""

from __future__ import annotations

import ast

from .. import anno
from ..qual_names import QN

__all__ = ["Scope", "resolve"]


class Scope:
    """Symbols read/modified/bound within a syntactic region."""

    def __init__(self, parent=None, isolated=False):
        self.parent = parent
        self.isolated = isolated
        self.read = set()
        self.modified = set()
        self.bound = set()      # params and scope-local bindings
        self.deleted = set()
        self.globals = set()
        self.nonlocals = set()

    def mark_read(self, qn):
        self.read.add(qn)

    def mark_modified(self, qn):
        self.modified.add(qn)

    def mark_bound(self, qn):
        self.bound.add(qn)

    def merge_into_parent(self):
        """Propagate activity to the parent scope on region exit."""
        if self.parent is None:
            return
        if self.isolated:
            # Only free reads escape an isolated (function) scope.
            free_reads = {
                qn for qn in self.read
                if not (qn.support_set() & {b for b in self.bound if b.is_simple})
            }
            self.parent.read |= free_reads
        else:
            self.parent.read |= self.read
            self.parent.modified |= self.modified
            self.parent.bound |= self.bound
            self.parent.deleted |= self.deleted

    @property
    def modified_simple(self):
        """Plain (non-composite) modified symbol names, as strings."""
        return {str(qn) for qn in self.modified if qn.is_simple}

    @property
    def read_simple(self):
        return {str(qn) for qn in self.read if qn.is_simple}

    def __repr__(self):
        return (
            f"Scope(read={sorted(map(str, self.read))}, "
            f"modified={sorted(map(str, self.modified))})"
        )


def _qn_of(node):
    return anno.getanno(node, anno.Basic.QN)


class _Analyzer(ast.NodeVisitor):
    def __init__(self):
        self.scope = Scope()

    # -- scope plumbing ----------------------------------------------------

    def _enter(self, isolated=False):
        self.scope = Scope(parent=self.scope, isolated=isolated)
        return self.scope

    def _exit(self):
        scope = self.scope
        scope.merge_into_parent()
        self.scope = scope.parent
        return scope

    def _scoped_visit(self, nodes, isolated=False):
        self._enter(isolated=isolated)
        if isinstance(nodes, list):
            for n in nodes:
                self.visit(n)
        elif nodes is not None:
            self.visit(nodes)
        return self._exit()

    # -- leaves -------------------------------------------------------------

    def visit_Name(self, node):
        qn = _qn_of(node)
        if qn is None:
            return
        if isinstance(node.ctx, ast.Load):
            self.scope.mark_read(qn)
        elif isinstance(node.ctx, ast.Store):
            self.scope.mark_modified(qn)
            self.scope.mark_bound(qn)
        elif isinstance(node.ctx, ast.Del):
            self.scope.deleted.add(qn)

    def visit_Attribute(self, node):
        qn = _qn_of(node)
        if isinstance(node.ctx, ast.Store) and qn is not None:
            self.scope.mark_modified(qn)
            # Setting a.b reads a.
            self._visit_as_load(node.value)
        elif isinstance(node.ctx, ast.Load) and qn is not None:
            self.scope.mark_read(qn)
            self._visit_as_load(node.value)
        else:
            self.generic_visit(node)

    def visit_Subscript(self, node):
        qn = _qn_of(node)
        if isinstance(node.ctx, ast.Store):
            if qn is not None:
                self.scope.mark_modified(qn)
            else:
                base = _qn_of(node.value)
                if base is not None:
                    # Dynamic index write: x[i] = v reads and "composite
                    # modifies" x; record a read so liveness keeps x.
                    self.scope.mark_read(base)
            self._visit_as_load(node.value)
            self.visit(node.slice)
        else:
            if qn is not None:
                self.scope.mark_read(qn)
            self._visit_as_load(node.value)
            self.visit(node.slice)

    def _visit_as_load(self, node):
        # Visit a sub-expression in read position.
        self.visit(node)

    # -- statements ----------------------------------------------------------

    def _annotate_stmt(self, node):
        scope = self._enter()
        self.generic_visit(node)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, scope)

    def visit_Assign(self, node):
        scope = self._enter()
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, scope)

    def visit_AugAssign(self, node):
        scope = self._enter()
        self.visit(node.value)
        # x += 1 both reads and writes x.
        target_qn = _qn_of(node.target)
        if target_qn is not None:
            self.scope.mark_read(target_qn)
        self.visit(node.target)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, scope)

    def visit_AnnAssign(self, node):
        scope = self._enter()
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, scope)

    def visit_Expr(self, node):
        self._annotate_stmt(node)

    def visit_Return(self, node):
        self._annotate_stmt(node)

    def visit_Delete(self, node):
        self._annotate_stmt(node)

    def visit_Assert(self, node):
        self._annotate_stmt(node)

    def visit_Raise(self, node):
        self._annotate_stmt(node)

    def visit_Global(self, node):
        for name in node.names:
            self.scope.globals.add(QN(name))

    def visit_Nonlocal(self, node):
        for name in node.names:
            self.scope.nonlocals.add(QN(name))

    # -- compound statements -----------------------------------------------------

    def visit_If(self, node):
        outer = self._enter()
        cond_scope = self._scoped_visit(node.test)
        anno.setanno(node, anno.Static.COND_SCOPE, cond_scope)
        body_scope = self._scoped_visit(node.body)
        anno.setanno(node, anno.Static.BODY_SCOPE, body_scope)
        orelse_scope = self._scoped_visit(node.orelse)
        anno.setanno(node, anno.Static.ORELSE_SCOPE, orelse_scope)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, outer)

    def visit_While(self, node):
        outer = self._enter()
        cond_scope = self._scoped_visit(node.test)
        anno.setanno(node, anno.Static.COND_SCOPE, cond_scope)
        body_scope = self._scoped_visit(node.body)
        anno.setanno(node, anno.Static.BODY_SCOPE, body_scope)
        if node.orelse:
            self._scoped_visit(node.orelse)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, outer)

    def visit_For(self, node):
        outer = self._enter()
        iterate_scope = self._scoped_visit(node.iter)
        anno.setanno(node, anno.Static.ITERATE_SCOPE, iterate_scope)
        # The target is written by the loop machinery on each iteration.
        self.visit(node.target)
        body_scope = self._scoped_visit(node.body)
        anno.setanno(node, anno.Static.BODY_SCOPE, body_scope)
        if node.orelse:
            self._scoped_visit(node.orelse)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, outer)

    def visit_With(self, node):
        outer = self._enter()
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        body_scope = self._scoped_visit(node.body)
        anno.setanno(node, anno.Static.BODY_SCOPE, body_scope)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, outer)

    def visit_Try(self, node):
        outer = self._enter()
        self._scoped_visit(node.body)
        for handler in node.handlers:
            if handler.name:
                self.scope.mark_bound(QN(handler.name))
                self.scope.mark_modified(QN(handler.name))
            self._scoped_visit(handler.body)
        self._scoped_visit(node.orelse)
        self._scoped_visit(node.finalbody)
        self._exit()
        anno.setanno(node, anno.Static.SCOPE, outer)

    # -- nested callables: isolated scopes -------------------------------------------

    def visit_FunctionDef(self, node):
        # The def itself binds the function name in the enclosing scope.
        self.scope.mark_modified(QN(node.name))
        self.scope.mark_bound(QN(node.name))
        for dec in node.decorator_list:
            self.visit(dec)
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)

        fn_scope = self._enter(isolated=True)
        args = node.args
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            fn_scope.mark_bound(QN(a.arg))
        if args.vararg:
            fn_scope.mark_bound(QN(args.vararg.arg))
        if args.kwarg:
            fn_scope.mark_bound(QN(args.kwarg.arg))
        anno.setanno(node, anno.Static.ARGS_SCOPE, fn_scope)
        for stmt in node.body:
            self.visit(stmt)
        self._exit()
        anno.setanno(node, anno.Static.BODY_SCOPE, fn_scope)
        scope = Scope()
        scope.modified = {QN(node.name)}
        scope.bound = {QN(node.name)}
        # Free reads of the nested function count as reads at the def site
        # (conservative: the closure may be called any time after binding).
        bound_simple = {b for b in fn_scope.bound if b.is_simple}
        scope.read = {
            qn for qn in fn_scope.read if not (qn.support_set() & bound_simple)
        }
        anno.setanno(node, anno.Static.SCOPE, scope)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node):
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        fn_scope = self._enter(isolated=True)
        for a in node.args.args:
            fn_scope.mark_bound(QN(a.arg))
        if node.args.vararg:
            fn_scope.mark_bound(QN(node.args.vararg.arg))
        if node.args.kwarg:
            fn_scope.mark_bound(QN(node.args.kwarg.arg))
        self.visit(node.body)
        self._exit()
        anno.setanno(node, anno.Static.BODY_SCOPE, fn_scope)

    def _visit_comprehension(self, node):
        comp_scope = self._enter(isolated=True)
        for gen in node.generators:
            self.visit(gen.iter)
            self.visit(gen.target)
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._exit()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def resolve(node):
    """Run activity analysis over ``node`` (QNs must be resolved first)."""
    analyzer = _Analyzer()
    analyzer.visit(node)
    return node
