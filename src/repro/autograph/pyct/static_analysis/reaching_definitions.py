"""Reaching definitions (§7.1): which symbols are possibly defined where.

Forward may-analysis over the CFG.  Compound statements get a
:class:`DefinednessInfo` annotation; the control-flow converter consults
``possibly_undefined`` to decide which state symbols need reification with
the special ``Undefined`` value (paper §7.2, Control Flow).
"""

from __future__ import annotations

import ast

from .. import anno, cfg
from .annos import DefinednessInfo, node_reads_writes

__all__ = ["resolve"]


def _function_params(fn_node):
    args = fn_node.args
    names = set()
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


class _ReachingDefs(cfg.GraphVisitor):
    def __init__(self, graph, entry_defs):
        super().__init__(graph)
        self.entry_defs = frozenset(entry_defs)
        self._gen = {}

    def init_state(self, node):
        self.in_[id(node)] = frozenset()
        self.out[id(node)] = frozenset()
        _, writes = node_reads_writes(node)
        self._gen[id(node)] = frozenset(writes)

    def visit_node(self, node):
        if node.kind == "entry":
            in_ = self.entry_defs
        else:
            in_ = frozenset().union(*(self.out[id(p)] for p in node.prev)) if node.prev else frozenset()
        out = in_ | self._gen[id(node)]
        changed = (in_ != self.in_[id(node)]) or (out != self.out[id(node)])
        self.in_[id(node)] = in_
        self.out[id(node)] = out
        return changed


def _local_symbols(fn_node):
    """All simple symbols bound anywhere in the function body."""
    body_scope = anno.getanno(fn_node, anno.Static.BODY_SCOPE)
    if body_scope is not None:
        return {str(qn) for qn in body_scope.bound if qn.is_simple}
    # Fallback: syntactic scan.
    names = set(_function_params(fn_node))
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def resolve(root, graphs=None):
    """Run reaching definitions for every function under ``root``."""
    graphs = graphs or cfg.build_all(root)
    for fn_node, graph in graphs.items():
        params = _function_params(fn_node)
        solver = _ReachingDefs(graph, params)
        solver.visit_forward()
        local_syms = _local_symbols(fn_node) | params
        for stmt, header in graph.index.items():
            if isinstance(stmt, (ast.If, ast.While, ast.For)):
                info = DefinednessInfo(solver.in_[id(header)], local_syms)
                anno.setanno(stmt, anno.Static.DEFINED_VARS_IN, info)
    return root
