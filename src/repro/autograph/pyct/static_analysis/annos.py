"""Shared helpers for CFG-based analyses: per-node gen/kill extraction."""

from __future__ import annotations

import ast

from .. import anno

__all__ = ["node_reads_writes", "target_names", "DefinednessInfo"]


def target_names(target):
    """Simple names bound by an assignment/loop target node."""
    names = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _simple_reads(scope):
    """Simple-name reads of a scope: plain reads plus composite supports."""
    reads = set()
    for qn in scope.read:
        for s in qn.support_set():
            reads.add(str(s))
    return reads


def node_reads_writes(cfg_node):
    """(reads, writes) of simple symbol names for a CFG node.

    Compound-statement header nodes contribute only their test/iterate
    activity; their bodies are separate CFG nodes.
    """
    node = cfg_node.ast_node
    if node is None or cfg_node.kind == "join":
        return set(), set()

    if isinstance(node, ast.If) or isinstance(node, ast.While):
        cond_scope = anno.getanno(node, anno.Static.COND_SCOPE)
        reads = _simple_reads(cond_scope) if cond_scope else set()
        return reads, set()
    if isinstance(node, ast.For):
        iterate_scope = anno.getanno(node, anno.Static.ITERATE_SCOPE)
        reads = _simple_reads(iterate_scope) if iterate_scope else set()
        # Injected extra loop tests (break/return lowering) read their
        # flags "at the header" even though the expression lives in an
        # annotation rather than the tree; keep those flags live.
        extra_test = anno.getanno(node, anno.Basic.EXTRA_LOOP_TEST)
        if extra_test is not None:
            reads |= _expr_reads(extra_test)
        return reads, target_names(node.target)
    if isinstance(node, (ast.With, ast.Try)):
        scope = anno.getanno(node, anno.Static.SCOPE)
        # Headers of with/try only: approximate with empty activity (their
        # bodies carry the real reads/writes).
        if isinstance(node, ast.With):
            reads = set()
            writes = set()
            for item in node.items:
                sub = _expr_reads(item.context_expr)
                reads |= sub
                if item.optional_vars is not None:
                    writes |= target_names(item.optional_vars)
            return reads, writes
        return set(), set()

    scope = anno.getanno(node, anno.Static.SCOPE)
    if scope is None:
        return set(), set()
    reads = _simple_reads(scope)
    writes = {str(qn) for qn in scope.modified if qn.is_simple}
    return reads, writes


def _expr_reads(expr):
    reads = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            reads.add(node.id)
    return reads


class DefinednessInfo:
    """Attached to compound statements by reaching-definitions analysis.

    Attributes:
      defined_in: local symbols with at least one reaching definition at
        statement entry ("possibly defined").
      local_syms: all symbols bound anywhere in the enclosing function;
        symbols outside this set resolve to globals/closure and are never
        considered undefined.
    """

    __slots__ = ("defined_in", "local_syms")

    def __init__(self, defined_in, local_syms):
        self.defined_in = frozenset(defined_in)
        self.local_syms = frozenset(local_syms)

    def possibly_undefined(self, symbol):
        """True when ``symbol`` may be unbound at statement entry."""
        return symbol in self.local_syms and symbol not in self.defined_in

    def __repr__(self):
        return f"DefinednessInfo(defined_in={sorted(self.defined_in)})"
