"""Liveness analysis (§7.1): symbols live into/out of compound statements.

Backward may-analysis over the CFG.  The control-flow converter uses:

- ``LIVE_VARS_OUT`` on an ``If``: symbols live after the statement —
  the modified symbols in this set become the staged conditional's
  returned state.
- ``LIVE_VARS_IN_HEADER`` on a loop: symbols live at the loop header
  (i.e. carried around the back edge or out of the loop) — the modified
  symbols in this set become the staged loop's state.
"""

from __future__ import annotations

import ast

from .. import anno, cfg
from .annos import node_reads_writes

__all__ = ["resolve"]


class _Liveness(cfg.GraphVisitor):
    def __init__(self, graph):
        super().__init__(graph)
        self._gen = {}
        self._kill = {}

    def init_state(self, node):
        self.in_[id(node)] = frozenset()
        self.out[id(node)] = frozenset()
        reads, writes = node_reads_writes(node)
        self._gen[id(node)] = frozenset(reads)
        self._kill[id(node)] = frozenset(writes)

    def visit_node(self, node):
        out = frozenset().union(*(self.in_[id(s)] for s in node.next)) if node.next else frozenset()
        in_ = self._gen[id(node)] | (out - self._kill[id(node)])
        changed = (out != self.out[id(node)]) or (in_ != self.in_[id(node)])
        self.out[id(node)] = out
        self.in_[id(node)] = in_
        return changed


def resolve(root, graphs=None):
    """Run liveness for every function under ``root`` and annotate
    If/While/For statements."""
    graphs = graphs or cfg.build_all(root)
    for fn_node, graph in graphs.items():
        solver = _Liveness(graph)
        solver.visit_reverse()
        for stmt, header in graph.index.items():
            if isinstance(stmt, ast.If):
                join = graph.joins.get(stmt)
                live_out = solver.in_[id(join)] if join is not None else frozenset()
                anno.setanno(stmt, anno.Static.LIVE_VARS_OUT, set(live_out))
            elif isinstance(stmt, (ast.While, ast.For)):
                join = graph.joins.get(stmt)
                live_out = solver.in_[id(join)] if join is not None else frozenset()
                anno.setanno(stmt, anno.Static.LIVE_VARS_OUT, set(live_out))
                anno.setanno(
                    stmt, anno.Static.LIVE_VARS_IN_HEADER,
                    set(solver.in_[id(header)]),
                )
    return root
