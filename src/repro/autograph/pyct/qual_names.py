"""Qualified names: symbols extended to compound names like ``a.b`` (§7.1).

A :class:`QN` abstracts over ``Name``, ``Attribute`` and literal-keyed
``Subscript`` AST nodes so the static analyses can track reads/writes of
``a``, ``a.b`` and ``a[0]`` uniformly.  Per the paper, a write to ``a.b``
modifies ``a.b`` but *not* ``a``.
"""

from __future__ import annotations

import ast

from . import anno

__all__ = ["QN", "resolve"]


class QN:
    """A qualified name: a symbol, possibly with attribute/subscript parts."""

    __slots__ = ("_parent", "_leaf", "_kind", "_hash")

    def __init__(self, base, attr=None, subscript=None):
        if attr is not None and subscript is not None:
            raise ValueError("QN cannot be both attribute and subscript")
        if attr is not None:
            if not isinstance(base, QN):
                raise TypeError("attribute QN requires a QN base")
            self._parent = base
            self._leaf = attr
            self._kind = "attr"
        elif subscript is not None:
            if not isinstance(base, QN):
                raise TypeError("subscript QN requires a QN base")
            self._parent = base
            self._leaf = subscript
            self._kind = "sub"
        else:
            if isinstance(base, QN):
                raise TypeError("cannot wrap a QN in a QN")
            self._parent = None
            self._leaf = str(base)
            self._kind = "name"
        self._hash = hash((self._parent, self._leaf, self._kind))

    # -- structure -----------------------------------------------------------

    @property
    def is_simple(self):
        """True for a plain symbol like ``x`` (no dots/subscripts)."""
        return self._kind == "name"

    @property
    def is_composite(self):
        return self._kind != "name"

    @property
    def parent(self):
        if self._parent is None:
            raise ValueError(f"{self} is not composite")
        return self._parent

    @property
    def owner_set(self):
        """All prefixes of this QN, including itself."""
        out = {self}
        if self._parent is not None:
            out |= self._parent.owner_set
        return out

    def support_set(self):
        """The simple symbols this QN's value depends on."""
        if self.is_simple:
            return {self}
        return self._parent.support_set()

    # -- identity ---------------------------------------------------------------

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        return (
            isinstance(other, QN)
            and self._kind == other._kind
            and self._leaf == other._leaf
            and self._parent == other._parent
        )

    def __str__(self):
        if self._kind == "name":
            return self._leaf
        if self._kind == "attr":
            return f"{self._parent}.{self._leaf}"
        return f"{self._parent}[{self._leaf!r}]"

    def __repr__(self):
        return f"QN({str(self)!r})"

    def ast(self):
        """An AST expression (Load ctx) denoting this QN."""
        if self._kind == "name":
            return ast.Name(id=self._leaf, ctx=ast.Load())
        if self._kind == "attr":
            return ast.Attribute(value=self._parent.ast(), attr=self._leaf,
                                 ctx=ast.Load())
        return ast.Subscript(
            value=self._parent.ast(),
            slice=ast.Constant(value=self._leaf),
            ctx=ast.Load(),
        )


class _Resolver(ast.NodeVisitor):
    """Annotates Name/Attribute/Subscript nodes with their QN."""

    def visit_Name(self, node):
        anno.setanno(node, anno.Basic.QN, QN(node.id))

    def visit_Attribute(self, node):
        self.visit(node.value)
        base = anno.getanno(node.value, anno.Basic.QN)
        if base is not None:
            anno.setanno(node, anno.Basic.QN, QN(base, attr=node.attr))

    def visit_Subscript(self, node):
        self.visit(node.value)
        self.visit(node.slice)
        base = anno.getanno(node.value, anno.Basic.QN)
        if base is None:
            return
        sl = node.slice
        if isinstance(sl, ast.Constant) and isinstance(sl.value, (int, str)):
            anno.setanno(node, anno.Basic.QN, QN(base, subscript=sl.value))
        # Non-literal subscripts have no stable QN; reads/writes fall back
        # to the base symbol in the activity analysis.


def resolve(node):
    """Annotate ``node``'s tree with QNs; returns ``node``."""
    _Resolver().visit(node)
    return node
