"""Templated code rewriting (paper Appendix C).

``replace`` parses a quoted code template and splices string symbols or
AST nodes into the placeholder names, with integrity checks: expression
replacements get their contexts (Load/Store/Del) fixed to match the
placeholder's position, and statement-list replacements are only accepted
in statement position.
"""

from __future__ import annotations

import ast
import copy

from . import parser
from .qual_names import QN

__all__ = ["replace", "replace_as_expression"]


def _set_ctx(node, ctx_type):
    """Recursively apply a Load/Store/Del context to an expression."""
    if hasattr(node, "ctx"):
        node.ctx = ctx_type()
    if isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            _set_ctx(elt, ctx_type)
    elif isinstance(node, ast.Starred):
        _set_ctx(node.value, ctx_type)
    # Attribute/Subscript: only the outermost node's ctx changes; the
    # .value chain remains Load (e.g. `a.b.c = 1` stores into `a.b`.c,
    # loading `a.b`).


def _as_expression(value):
    """Coerce a replacement value to an AST expression node."""
    if isinstance(value, str):
        return ast.Name(id=value, ctx=ast.Load())
    if isinstance(value, QN):
        return value.ast()
    if isinstance(value, ast.Expr):
        return copy.deepcopy(value.value)
    if isinstance(value, ast.expr):
        return copy.deepcopy(value)
    raise ValueError(f"Cannot use {value!r} as an expression replacement")


def _as_statements(value):
    if isinstance(value, (list, tuple)):
        out = []
        for v in value:
            out.extend(_as_statements(v))
        return out
    if isinstance(value, ast.Module):
        return [copy.deepcopy(s) for s in value.body]
    if isinstance(value, ast.stmt):
        return [copy.deepcopy(value)]
    if isinstance(value, ast.expr):
        return [ast.Expr(value=copy.deepcopy(value))]
    raise ValueError(f"Cannot use {value!r} as a statement replacement")


class _ReplaceTransformer(ast.NodeTransformer):
    def __init__(self, replacements):
        self.replacements = replacements

    # -- names ------------------------------------------------------------

    def visit_Name(self, node):
        repl = self.replacements.get(node.id)
        if repl is None:
            return node
        new = _as_expression(repl)
        if isinstance(node.ctx, ast.Store):
            _set_ctx(new, ast.Store)
        elif isinstance(node.ctx, ast.Del):
            _set_ctx(new, ast.Del)
        return new

    def visit_Attribute(self, node):
        self.generic_visit(node)
        return node

    # -- function defs: name and argument placeholders ------------------------

    def visit_FunctionDef(self, node):
        self.generic_visit(node)
        if node.name in self.replacements:
            repl = self.replacements[node.name]
            if not isinstance(repl, str):
                raise ValueError(
                    f"Function name placeholder {node.name!r} must be replaced "
                    f"with a string, got {repl!r}"
                )
            node.name = repl
        new_args = []
        for a in node.args.args:
            repl = self.replacements.get(a.arg)
            if repl is None:
                new_args.append(a)
            elif isinstance(repl, str):
                new_args.append(ast.arg(arg=repl))
            elif isinstance(repl, (list, tuple)):
                for r in repl:
                    if not isinstance(r, str):
                        raise ValueError(
                            f"Argument placeholder {a.arg!r} replacement must "
                            f"be strings, got {r!r}"
                        )
                    new_args.append(ast.arg(arg=r))
            else:
                raise ValueError(
                    f"Argument placeholder {a.arg!r} must be replaced with "
                    f"str or list of str, got {repl!r}"
                )
        node.args.args = new_args
        return node

    # -- statement splices ---------------------------------------------------

    def _visit_block(self, stmts):
        out = []
        for stmt in stmts:
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id in self.replacements
            ):
                repl = self.replacements[stmt.value.id]
                try:
                    out.extend(_as_statements(repl))
                    continue
                except ValueError:
                    pass  # fall through: expression substitution
            result = self.visit(stmt)
            if isinstance(result, list):
                out.extend(result)
            elif result is not None:
                out.append(result)
        return out

    def generic_visit(self, node):
        for field in node._fields:
            value = getattr(node, field, None)
            if isinstance(value, list):
                if value and all(isinstance(v, ast.stmt) for v in value):
                    setattr(node, field, self._visit_block(value))
                else:
                    new_list = []
                    for item in value:
                        if isinstance(item, ast.AST):
                            item = self.visit(item)
                        if isinstance(item, list):
                            new_list.extend(item)
                        elif item is not None:
                            new_list.append(item)
                    setattr(node, field, new_list)
            elif isinstance(value, ast.AST):
                setattr(node, field, self.visit(value))
        return node


def replace(template, **replacements):
    """Instantiate a code template.

    Args:
      template: Python code with placeholder Names.
      **replacements: placeholder -> str | QN | AST node | list of nodes.

    Returns:
      A list of statement nodes.
    """
    if not isinstance(template, str):
        raise TypeError(f"Template must be a string, got {type(template).__name__}")
    module = parser.parse_str(template)
    transformer = _ReplaceTransformer(replacements)
    body = transformer._visit_block(module.body)
    for stmt in body:
        ast.fix_missing_locations(stmt)
    return body


def replace_as_expression(template, **replacements):
    """Like :func:`replace` but returns a single expression node."""
    body = replace(template, **replacements)
    if len(body) != 1 or not isinstance(body[0], ast.Expr):
        raise ValueError(
            f"Template did not produce a single expression: {template!r}"
        )
    return body[0].value
