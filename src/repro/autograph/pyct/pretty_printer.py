"""AST pretty printer: ``fmt(node)`` (paper Appendix C).

Renders an AST in the indented field-per-line format shown in the paper,
which makes transformation passes easy to debug.
"""

from __future__ import annotations

import ast

__all__ = ["fmt"]

_INDENT = "|   "


def fmt(node, indent=0):
    """Return a pretty-printable string representing the AST."""
    prefix = _INDENT * indent
    if isinstance(node, ast.AST):
        lines = [f"{prefix}{type(node).__name__}:"]
        for field in node._fields:
            value = getattr(node, field, None)
            lines.append(_fmt_field(field, value, indent + 1))
        return "\n".join(lines)
    return f"{prefix}{node!r}"


def _fmt_field(name, value, indent):
    prefix = _INDENT * indent
    if isinstance(value, ast.AST):
        sub = fmt(value, indent)
        # Inline the node type after the field name.
        sub = sub[len(prefix):]
        return f"{prefix}{name}={sub}"
    if isinstance(value, list):
        if not value:
            return f"{prefix}{name}=[]"
        lines = [f"{prefix}{name}=["]
        for item in value:
            if isinstance(item, ast.AST):
                lines.append(fmt(item, indent + 1))
            else:
                lines.append(f"{_INDENT * (indent + 1)}{item!r}")
        lines.append(f"{prefix}]")
        return "\n".join(lines)
    return f"{prefix}{name}={value!r}"
