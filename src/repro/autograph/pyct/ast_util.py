"""AST manipulation helpers: scope-aware renaming, clean copies, matching."""

from __future__ import annotations

import ast
import copy

__all__ = ["rename_symbols", "copy_clean", "collect_bound_names",
           "matches_name_call"]


def copy_clean(node):
    """A deep copy of ``node`` with annotation payloads dropped."""
    new = copy.deepcopy(node)
    for child in ast.walk(new):
        if hasattr(child, "__repro_anno__"):
            delattr(child, "__repro_anno__")
    return new


def collect_bound_names(fn_node):
    """Names bound inside a function scope: params and direct assignments.

    Does not descend into nested function definitions (those bind in their
    own scope).
    """
    bound = set()
    args = fn_node.args
    for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        bound.add(a.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)

    body = fn_node.body if isinstance(fn_node.body, list) else [fn_node.body]

    class _Collector(ast.NodeVisitor):
        def visit_Name(self, node):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                bound.add(node.id)

        def visit_FunctionDef(self, node):
            bound.add(node.name)  # the def binds its own name

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_ClassDef(self, node):
            bound.add(node.name)

        def visit_Lambda(self, node):
            pass  # separate scope

        def visit_Import(self, node):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])

        visit_ImportFrom = visit_Import

    collector = _Collector()
    for stmt in body:
        collector.visit(stmt)
    return bound


class _Renamer(ast.NodeTransformer):
    """Renames free occurrences of symbols, respecting nested scopes."""

    def __init__(self, name_map):
        self.name_map = dict(name_map)

    def visit_Name(self, node):
        new_name = self.name_map.get(node.id)
        if new_name is not None:
            node.id = new_name
        return node

    def _visit_new_scope(self, node):
        bound = collect_bound_names(node)
        remaining = {k: v for k, v in self.name_map.items() if k not in bound}
        if not remaining:
            return node
        inner = _Renamer(remaining)
        for field in ("body", "decorator_list", "returns"):
            value = getattr(node, field, None)
            if isinstance(value, list):
                setattr(node, field, [inner.visit(v) for v in value])
            elif isinstance(value, ast.AST):
                setattr(node, field, inner.visit(value))
        # Default expressions evaluate in the *outer* scope.
        for field in ("defaults", "kw_defaults"):
            value = getattr(node.args, field, None)
            if value:
                setattr(
                    node.args, field,
                    [self.visit(v) if v is not None else None for v in value],
                )
        return node

    def visit_FunctionDef(self, node):
        return self._visit_new_scope(node)

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = _visit_new_scope


def rename_symbols(node, name_map):
    """Rename free simple names per ``name_map`` (str -> str), in place.

    Nested function scopes that re-bind a name shadow the rename, matching
    Python scoping.  Returns the (mutated) node for chaining.
    """
    if not name_map:
        return node
    renamer = _Renamer({str(k): str(v) for k, v in name_map.items()})
    if isinstance(node, list):
        return [renamer.visit(n) for n in node]
    return renamer.visit(node)


def matches_name_call(node, dotted_names):
    """True if ``node`` is a Call whose callee unparsess to one of the
    given dotted names (e.g. ``{"ag.set_loop_options"}``)."""
    if not isinstance(node, ast.Call):
        return False
    try:
        callee = ast.unparse(node.func)
    except Exception:  # pragma: no cover - malformed nodes
        return False
    return callee in dotted_names
