"""AST annotation utilities.

Static analyses decorate AST nodes with extra information (paper §6 step
3a); the conversion passes read those annotations.  Annotations live in a
dedicated dict attribute so they never collide with ``ast`` fields, and
survive ``copy.deepcopy``.
"""

from __future__ import annotations

import enum

__all__ = ["Basic", "Static", "setanno", "getanno", "hasanno", "delanno",
           "copyanno", "dup"]

_FIELD = "__repro_anno__"


class Basic(enum.Enum):
    """General-purpose annotation keys."""

    QN = "qn"                      # qualified name of a Name/Attribute node
    SKIP_PROCESSING = "skip"       # do not convert this subtree
    ORIGIN = "origin"              # OriginInfo for error source maps
    DIRECTIVES = "directives"      # {directive_fn: kwargs} on loop nodes
    EXTRA_LOOP_TEST = "extra_loop_test"  # injected by break/return lowering


class Static(enum.Enum):
    """Static-analysis annotation keys."""

    SCOPE = "scope"                     # activity Scope of a statement
    ARGS_SCOPE = "args_scope"           # function args scope
    COND_SCOPE = "cond_scope"           # if condition scope
    BODY_SCOPE = "body_scope"           # compound statement body scope
    ORELSE_SCOPE = "orelse_scope"       # else branch scope
    ITERATE_SCOPE = "iterate_scope"     # for-loop iterate expression scope
    DEFINED_VARS_IN = "defined_in"      # symbols possibly defined on entry
    LIVE_VARS_OUT = "live_out"          # symbols live after the statement
    LIVE_VARS_IN_HEADER = "live_header" # symbols live entering the loop header


def _annos(node, create=False):
    annos = getattr(node, _FIELD, None)
    if annos is None and create:
        annos = {}
        setattr(node, _FIELD, annos)
    return annos


def setanno(node, key, value):
    _annos(node, create=True)[key] = value


def hasanno(node, key):
    annos = _annos(node)
    return annos is not None and key in annos


def getanno(node, key, default=None, required=False):
    annos = _annos(node)
    if annos is None or key not in annos:
        if required:
            raise KeyError(f"Node {node!r} has no annotation {key!r}")
        return default
    return annos[key]


def delanno(node, key):
    annos = _annos(node)
    if annos is not None:
        annos.pop(key, None)


def copyanno(from_node, to_node, key):
    if hasanno(from_node, key):
        setanno(to_node, key, getanno(from_node, key))


def dup(node, copy_keys):
    """Copy the given annotation keys from ``node`` onto itself-clones."""
    out = {}
    for key in copy_keys:
        if hasanno(node, key):
            out[key] = getanno(node, key)
    return out
