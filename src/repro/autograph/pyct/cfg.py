"""Intra-procedural control flow graphs and a generic dataflow solver (§7.1).

The CFG is built per function.  Leaf statements become nodes; compound
statements are represented by a *header* node (the test / iterate
expression) plus a synthetic *join* node marking the point after the
statement.  ``break``/``continue``/``return`` wire to the loop join, loop
header and function exit respectively.

Reaching-definitions (forward, may) and liveness (backward) run as
worklist fixpoints over this graph via :class:`GraphVisitor`.
"""

from __future__ import annotations

import ast

__all__ = ["Node", "Graph", "build", "build_all", "GraphVisitor"]


class Node:
    """A CFG node.

    Attributes:
      ast_node: the statement (or compound-statement header) this node
        represents; None for synthetic nodes.
      kind: 'stmt' | 'entry' | 'exit' | 'join'.
    """

    __slots__ = ("ast_node", "kind", "next", "prev", "id")

    _counter = [0]

    def __init__(self, ast_node, kind="stmt"):
        self.ast_node = ast_node
        self.kind = kind
        self.next = set()
        self.prev = set()
        Node._counter[0] += 1
        self.id = Node._counter[0]

    def __repr__(self):
        label = type(self.ast_node).__name__ if self.ast_node is not None else self.kind
        return f"<cfg.Node {self.id} {label}>"


class Graph:
    """The CFG of a single function."""

    def __init__(self, entry, exit_node, fn_node):
        self.entry = entry
        self.exit = exit_node
        self.fn_node = fn_node
        # ast statement -> its primary CFG node (header node for compounds)
        self.index = {}
        # compound ast statement -> its synthetic join node
        self.joins = {}
        self.nodes = []

    def add_node(self, node):
        self.nodes.append(node)
        if node.ast_node is not None and node.kind in ("stmt",):
            self.index[node.ast_node] = node
        return node

    def connect(self, a, b):
        a.next.add(b)
        b.prev.add(a)


class _Builder:
    def __init__(self, fn_node):
        self.graph = Graph(Node(None, "entry"), Node(None, "exit"), fn_node)
        self.graph.nodes.extend([self.graph.entry, self.graph.exit])
        # Stack of (loop_header, loop_join) for break/continue targets.
        self.loop_stack = []

    def build(self):
        fn = self.graph.fn_node
        leads = self._build_block(fn.body, {self.graph.entry})
        for lead in leads:
            self.graph.connect(lead, self.graph.exit)
        return self.graph

    # ``frontier`` is the set of nodes whose control falls through to the
    # next statement.  Each _build_* returns the new frontier (empty when
    # control never falls through, e.g. after a return).

    def _build_block(self, stmts, frontier):
        for stmt in stmts:
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _leaf(self, stmt, frontier):
        node = self.graph.add_node(Node(stmt))
        for f in frontier:
            self.graph.connect(f, node)
        return node

    def _build_stmt(self, stmt, frontier):
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, frontier)
        if isinstance(stmt, ast.For):
            return self._build_for(stmt, frontier)
        if isinstance(stmt, (ast.With,)):
            return self._build_with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.Break,)):
            node = self._leaf(stmt, frontier)
            if self.loop_stack:
                self.graph.connect(node, self.loop_stack[-1][1])
            return set()
        if isinstance(stmt, (ast.Continue,)):
            node = self._leaf(stmt, frontier)
            if self.loop_stack:
                self.graph.connect(node, self.loop_stack[-1][0])
            return set()
        if isinstance(stmt, ast.Return):
            node = self._leaf(stmt, frontier)
            self.graph.connect(node, self.graph.exit)
            return set()
        if isinstance(stmt, ast.Raise):
            node = self._leaf(stmt, frontier)
            self.graph.connect(node, self.graph.exit)
            return set()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested definition is a leaf that binds a name; its body has
            # its own CFG (see build_all).
            return {self._leaf(stmt, frontier)}
        # Simple statement.
        return {self._leaf(stmt, frontier)}

    def _build_if(self, stmt, frontier):
        header = self.graph.add_node(Node(stmt))
        self.graph.index[stmt] = header
        for f in frontier:
            self.graph.connect(f, header)
        join = self.graph.add_node(Node(stmt, "join"))
        self.graph.joins[stmt] = join

        body_out = self._build_block(stmt.body, {header})
        for n in body_out:
            self.graph.connect(n, join)
        if stmt.orelse:
            else_out = self._build_block(stmt.orelse, {header})
            for n in else_out:
                self.graph.connect(n, join)
        else:
            self.graph.connect(header, join)
        return {join}

    def _build_loop(self, stmt, frontier):
        header = self.graph.add_node(Node(stmt))
        self.graph.index[stmt] = header
        for f in frontier:
            self.graph.connect(f, header)
        join = self.graph.add_node(Node(stmt, "join"))
        self.graph.joins[stmt] = join

        self.loop_stack.append((header, join))
        body_out = self._build_block(stmt.body, {header})
        self.loop_stack.pop()
        for n in body_out:
            self.graph.connect(n, header)
        # Normal exit: test fails.
        self.graph.connect(header, join)
        if stmt.orelse:
            else_out = self._build_block(stmt.orelse, {join})
            return else_out if else_out else {join}
        return {join}

    _build_while = _build_loop
    _build_for = _build_loop

    def _build_with(self, stmt, frontier):
        header = self.graph.add_node(Node(stmt))
        self.graph.index[stmt] = header
        for f in frontier:
            self.graph.connect(f, header)
        return self._build_block(stmt.body, {header})

    def _build_try(self, stmt, frontier):
        header = self.graph.add_node(Node(stmt))
        self.graph.index[stmt] = header
        for f in frontier:
            self.graph.connect(f, header)
        join = self.graph.add_node(Node(stmt, "join"))
        self.graph.joins[stmt] = join
        body_out = self._build_block(stmt.body, {header})
        for n in body_out:
            self.graph.connect(n, join)
        for handler in stmt.handlers:
            h_out = self._build_block(handler.body, {header})
            for n in h_out:
                self.graph.connect(n, join)
        if stmt.orelse:
            else_out = self._build_block(stmt.orelse, {join})
        else:
            else_out = {join}
        if stmt.finalbody:
            return self._build_block(stmt.finalbody, else_out)
        return else_out


def build(fn_node):
    """Build the CFG of a single FunctionDef/Lambda node."""
    return _Builder(fn_node).build()


def build_all(root):
    """Build CFGs for every function under ``root``.

    Returns:
      dict mapping FunctionDef node -> Graph.
    """
    out = {}
    for node in ast.walk(root):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node] = build(node)
    return out


class GraphVisitor:
    """Worklist fixpoint solver over a CFG.

    Subclasses implement ``init_state(node)`` and ``visit_node(node)``
    (returning True when the node's state changed) and choose a direction.
    """

    def __init__(self, graph):
        self.graph = graph
        self.in_ = {}
        self.out = {}

    def visit_forward(self):
        self._run(lambda n: n.next)

    def visit_reverse(self):
        self._run(lambda n: n.prev)

    def _run(self, successors):
        for node in self.graph.nodes:
            self.init_state(node)
        work = list(self.graph.nodes)
        in_work = set(id(n) for n in work)
        while work:
            node = work.pop()
            in_work.discard(id(node))
            if self.visit_node(node):
                for succ in successors(node):
                    if id(succ) not in in_work:
                        work.append(succ)
                        in_work.add(id(succ))

    # -- to be overridden ------------------------------------------------

    def init_state(self, node):
        raise NotImplementedError

    def visit_node(self, node):
        raise NotImplementedError
