"""Source maps: generated code lines -> original user code (Appendix B).

Every AST node is annotated with an :class:`OriginInfo` before conversion.
After code generation, :func:`create_source_map` pairs each line of the
generated file with the origin of the node that produced it, enabling the
error-rewriting machinery in :mod:`repro.autograph.errors`.
"""

from __future__ import annotations

import ast
from collections import namedtuple

from . import anno

__all__ = ["OriginInfo", "resolve", "create_source_map"]


class OriginInfo(namedtuple("OriginInfo",
                            ["filename", "function_name", "lineno", "col_offset",
                             "source_line"])):
    """Location of a node in the user's original source."""

    def as_frame(self):
        """(filename, lineno, function_name, source_line) traceback tuple."""
        return (self.filename, self.lineno, self.function_name, self.source_line)

    def __str__(self):
        return f"{self.filename}:{self.lineno} ({self.function_name})"


def resolve(root, source, filename, entity_name, entity_lineno_offset=0):
    """Annotate every node under ``root`` with its OriginInfo.

    Args:
      root: the parsed entity AST (before any transformation).
      source: the (dedented) source the AST was parsed from.
      filename: the original file.
      entity_name: name of the function being converted.
      entity_lineno_offset: line offset of ``source`` within ``filename``
        (0 when ``source`` starts at the top of the file).
    """
    lines = source.splitlines()
    current_fn = [entity_name]

    def annotate(node, fn_name):
        lineno = getattr(node, "lineno", None)
        if lineno is not None and 1 <= lineno <= len(lines):
            info = OriginInfo(
                filename=filename,
                function_name=fn_name,
                lineno=lineno + entity_lineno_offset,
                col_offset=getattr(node, "col_offset", 0),
                source_line=lines[lineno - 1].strip(),
            )
            anno.setanno(node, anno.Basic.ORIGIN, info)

    def walk(node, fn_name):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn_name = node.name
        annotate(node, fn_name)
        for child in ast.iter_child_nodes(node):
            walk(child, fn_name)

    walk(root, entity_name)
    return root


def create_source_map(converted_node, generated_source, generated_filename):
    """Map generated-file line numbers to OriginInfo.

    The converted AST carries ORIGIN annotations (copied through the
    transforms), but its linenos predate unparsing.  We therefore re-parse
    the generated source and walk both trees in parallel — they are
    structurally identical by construction — reading line numbers from the
    re-parsed tree and origins from the converted tree.
    """
    source_map = {}
    try:
        reparsed = ast.parse(generated_source)
    except SyntaxError:  # pragma: no cover - generated code is valid
        return source_map

    converted_nodes = list(ast.walk(converted_node))
    # The reparsed tree is a Module wrapping the converted entity.
    reparsed_nodes = list(ast.walk(reparsed))
    if reparsed_nodes and isinstance(reparsed_nodes[0], ast.Module):
        reparsed_nodes = reparsed_nodes[1:]

    if len(converted_nodes) != len(reparsed_nodes):
        # Structure drifted (e.g. wrapper statements); map what we can by
        # first-line annotation only.
        reparsed_nodes = []

    for conv, repr_node in zip(converted_nodes, reparsed_nodes):
        origin = anno.getanno(conv, anno.Basic.ORIGIN)
        lineno = getattr(repr_node, "lineno", None)
        if origin is None or lineno is None:
            continue
        key = (generated_filename, lineno)
        if key not in source_map:
            source_map[key] = origin
    return source_map
