"""Base class for conversion passes.

Provides the shared context (entity info, naming) and an origin-preserving
``visit`` so that source maps survive multiple transformation passes
(paper §6: "each pass consists of static analysis then transformation").
"""

from __future__ import annotations

import ast

from . import anno

__all__ = ["EntityInfo", "Context", "Base"]


class EntityInfo:
    """Description of the entity being converted."""

    def __init__(self, name, source, filename, namespace):
        self.name = name
        self.source = source
        self.filename = filename
        # The namespace (globals + closure) the original function saw;
        # passes may consult it for binding-time decisions.
        self.namespace = namespace


class Context:
    """Carried through every pass of a single conversion."""

    def __init__(self, info):
        self.info = info
        self._name_counts = {}

    def fresh_name(self, base):
        """A unique generated symbol name, stable within this conversion."""
        count = self._name_counts.get(base, 0)
        self._name_counts[base] = count + 1
        if count == 0:
            return f"{base}"
        return f"{base}_{count}"


class Base(ast.NodeTransformer):
    """Origin-preserving node transformer with conversion context."""

    def __init__(self, ctx):
        self.ctx = ctx

    def visit(self, node):
        origin = anno.getanno(node, anno.Basic.ORIGIN) if isinstance(node, ast.AST) else None
        result = super().visit(node)
        if origin is not None:
            for out in result if isinstance(result, list) else [result]:
                if isinstance(out, ast.AST) and not anno.hasanno(out, anno.Basic.ORIGIN):
                    anno.setanno(out, anno.Basic.ORIGIN, origin)
        return result

    def visit_block(self, stmts):
        """Visit a statement list, flattening replacements."""
        out = []
        for stmt in stmts:
            result = self.visit(stmt)
            if isinstance(result, list):
                out.extend(result)
            elif result is not None:
                out.append(result)
        return out
