"""Source extraction and parsing (paper Appendix C utilities).

``parse_entity`` turns a live Python function or class into an AST,
handling indentation, decorators and the usual ``inspect`` corner cases.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

__all__ = ["parse_entity", "parse_str", "parse_expression", "unparse",
           "ConversionSourceError"]


class ConversionSourceError(Exception):
    """Source code for the entity could not be obtained or parsed."""


def parse_str(src):
    """Parse a string of Python source into a Module node."""
    return ast.parse(textwrap.dedent(src))


def parse_expression(src):
    """Parse a single expression; returns the expression node."""
    module = parse_str(src)
    if len(module.body) != 1 or not isinstance(module.body[0], ast.Expr):
        raise ValueError(f"Expected a single expression, got: {src!r}")
    return module.body[0].value


def getsource(entity):
    """Best-effort source for a function/class, dedented."""
    try:
        source = inspect.getsource(entity)
    except (OSError, TypeError) as e:
        raise ConversionSourceError(
            f"Could not get source for {entity!r}: {e}. Functions defined in "
            "interactive shells or via exec() cannot be converted."
        ) from e
    return textwrap.dedent(source)


def parse_entity(entity, future_features=()):
    """Parse a live function or class.

    Returns:
      (node, source): the ``FunctionDef``/``ClassDef``/``Lambda`` node and
      the dedented source string it was parsed from.

    Raises:
      ConversionSourceError: when source is unavailable or unparsable.
    """
    source = getsource(entity)
    try:
        module = ast.parse(source)
    except SyntaxError:
        # A common failure: a decorated nested function whose source starts
        # mid-expression. Wrap and retry.
        try:
            module = ast.parse("if True:\n" + textwrap.indent(source, "    "))
            module = ast.Module(body=module.body[0].body, type_ignores=[])
        except SyntaxError as e:
            raise ConversionSourceError(
                f"Could not parse source of {entity!r}: {e}"
            ) from e

    if inspect.isfunction(entity) and entity.__name__ == "<lambda>":
        node = _find_lambda(module, entity)
        if node is None:
            raise ConversionSourceError(
                f"Could not isolate the lambda expression for {entity!r}; "
                "define it on its own line to enable conversion."
            )
        return node, source

    for stmt in module.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return stmt, source
    raise ConversionSourceError(
        f"No function or class definition found in source of {entity!r}"
    )


def _find_lambda(module, fn):
    """Locate the Lambda node matching ``fn``'s signature (best effort)."""
    arg_names = list(inspect.signature(fn).parameters)
    candidates = [
        node for node in ast.walk(module)
        if isinstance(node, ast.Lambda)
        and [a.arg for a in node.args.args] == arg_names
    ]
    if len(candidates) == 1:
        return candidates[0]
    return None


def unparse(node):
    """Serialize an AST (node or list of statements) back to source."""
    if isinstance(node, (list, tuple)):
        return "\n".join(unparse(n) for n in node)
    if isinstance(node, ast.Module):
        return ast.unparse(ast.fix_missing_locations(node))
    if isinstance(node, ast.stmt):
        module = ast.Module(body=[node], type_ignores=[])
        return ast.unparse(ast.fix_missing_locations(module))
    if isinstance(node, ast.expr):
        return ast.unparse(ast.fix_missing_locations(ast.Expression(body=node)))
    return ast.unparse(node)
