"""Loading generated code back into Python (paper §6 steps 4-5).

``ast_to_object`` serializes an AST to source, writes it to a real
temporary file (so ``inspect``/tracebacks work on generated code, which
Appendix B's error rewriting relies on), and executes it as a module.
"""

from __future__ import annotations

import ast
import atexit
import importlib.util
import os
import sys
import tempfile

from . import parser

__all__ = ["ast_to_source", "ast_to_object", "load_source"]

_GENERATED_FILES = []


def _cleanup():
    for path in _GENERATED_FILES:
        try:
            os.unlink(path)
        except OSError:
            pass


atexit.register(_cleanup)


def ast_to_source(node):
    """Unparse an AST (node or statement list) into Python source."""
    return parser.unparse(node)


def load_source(source, delete_on_exit=True):
    """Write ``source`` to a temp .py file and import it as a module.

    Returns:
      (module, filename)
    """
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".py", prefix="repro_generated_", delete=False
    ) as f:
        f.write(source)
        filename = f.name
    if delete_on_exit:
        _GENERATED_FILES.append(filename)

    module_name = os.path.splitext(os.path.basename(filename))[0]
    spec = importlib.util.spec_from_file_location(module_name, filename)
    module = importlib.util.module_from_spec(spec)
    # Registering in sys.modules keeps inspect.getsource working for
    # nested entities of the generated module.
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module, filename


def ast_to_object(nodes):
    """Compile an AST into a live module.

    Returns:
      (module, source, filename)
    """
    source = ast_to_source(nodes)
    module, filename = load_source(source)
    return module, source, filename
