"""pyct: the source-code-transformation toolkit (paper Appendix C).

Parsing, pretty-printing, templated rewriting, AST loading, qualified
names, CFG construction and the static analyses of Section 7.1.
"""

from . import (
    anno,
    ast_util,
    cfg,
    loader,
    origin_info,
    parser,
    pretty_printer,
    qual_names,
    templates,
    transformer,
)
from . import static_analysis

__all__ = [
    "anno",
    "ast_util",
    "cfg",
    "loader",
    "origin_info",
    "parser",
    "pretty_printer",
    "qual_names",
    "templates",
    "transformer",
    "static_analysis",
]
