"""Error handling across the three execution steps (paper Appendix B).

AutoGraph distinguishes conversion errors (legal Python that cannot be
converted), staging errors (converted code that cannot build a graph) and
runtime errors (graph execution failures).  For the latter two, frames
pointing into generated temporary files are re-associated with the user's
original source via the per-conversion source maps.
"""

from __future__ import annotations

import traceback

__all__ = [
    "ConversionError",
    "AutoGraphError",
    "register_source_map",
    "rewrite_error",
]


class AutoGraphError(Exception):
    """Base class for AutoGraph-specific errors."""


class ConversionError(AutoGraphError):
    """The entity could not be converted (paper App. B, Conversion Errors)."""


# Global registry: generated filename -> {(filename, lineno): OriginInfo}.
_SOURCE_MAPS = {}


def register_source_map(generated_filename, source_map):
    _SOURCE_MAPS[generated_filename] = source_map


def _origin_for_frame(frame):
    source_map = _SOURCE_MAPS.get(frame.filename)
    if source_map is None:
        return None
    return source_map.get((frame.filename, frame.lineno))


def rewrite_error(error):
    """Attach original-source context to an exception raised in generated
    code.

    Walks the traceback; any frame located in a converted (generated)
    file is mapped back through the source map and reported as a note on
    the exception (keeping the original exception type and traceback, as
    the paper's "error rewriting" does).

    Returns the same exception object, for ``raise ... from None`` chains.
    """
    try:
        frames = traceback.extract_tb(error.__traceback__)
    except Exception:  # pragma: no cover - defensive
        return error

    user_frames = []
    for frame in frames:
        origin = _origin_for_frame(frame)
        if origin is not None:
            user_frames.append(origin)

    if user_frames:
        lines = ["in user code:"]
        for origin in user_frames:
            lines.append(
                f'  File "{origin.filename}", line {origin.lineno}, '
                f"in {origin.function_name}"
            )
            if origin.source_line:
                lines.append(f"    {origin.source_line}")
        note = "\n".join(lines)
        if hasattr(error, "add_note"):
            # Avoid duplicate notes when the error crosses several
            # converted frames.
            existing = getattr(error, "__notes__", ())
            if note not in existing:
                error.add_note(note)
        else:  # pragma: no cover - py<3.11
            error.args = (f"{error.args[0] if error.args else ''}\n{note}",) + tuple(
                error.args[1:]
            )
    return error
