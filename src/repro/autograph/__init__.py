"""AutoGraph: staged programming for Python via source code transformation.

The paper's single-function API (Section 5):

    import repro.autograph as ag

    @ag.convert()
    def f(x):
        if x > 0:           # stages into the graph IR when x is a tensor
            x = x * x
        return x

Plus the compilation directives (``set_element_type``, ``set_loop_options``),
the ``stack`` list idiom, ``to_graph`` for explicit conversion, and
``do_not_convert`` to opt functions out.
"""

from . import converters, errors, operators, pyct
from .errors import AutoGraphError, ConversionError
from .impl.api import convert, converted_call, do_not_convert, to_graph
from .operators.data_structures import list_stack as _list_stack

__all__ = [
    "convert",
    "to_graph",
    "converted_call",
    "do_not_convert",
    "stack",
    "set_element_type",
    "set_loop_options",
    "AutoGraphError",
    "ConversionError",
    "converters",
    "operators",
    "pyct",
    "errors",
]


def stack(list_or_tensor, strict=False):
    """Stack a (possibly staged) list into a tensor (paper §7.2, Lists)."""
    return _list_stack(list_or_tensor, strict=strict)


def set_element_type(target_list, dtype, shape=None):
    """Directive: declare the staged element type of a list.

    Inside converted code this is applied at conversion time (the list
    becomes a TensorArray).  Outside converted code it is a no-op so the
    same source also runs eagerly unchanged.
    """
    del target_list, dtype, shape
    return None


def set_loop_options(**options):
    """Directive: set options (e.g. ``maximum_iterations``) on the
    innermost enclosing loop.  No-op outside converted code."""
    del options
    return None
