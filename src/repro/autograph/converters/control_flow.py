"""Control flow conversion (paper §7.2, Control Flow).

Replaces ``if``/``while``/``for`` statements with calls to the
dynamically-dispatched operators:

- ``if``: stateless; branches become niladic functions returning the
  symbols either branch modifies that are live afterwards.  Symbols the
  branch does not define are aliased from the enclosing scope (renamed to
  fresh names, exactly as in the paper's Listing 1); symbols possibly
  undefined at entry are reified with ``ag__.Undefined``.
- ``while``/``for``: stateful; the test and body become functions whose
  parameters and return values are the loop state — the symbols modified
  in the body that are live at the loop header.

All decisions come from the Section 7.1 analyses (activity, reaching
definitions, liveness) that ran immediately before this pass.
"""

from __future__ import annotations

import ast

from ..core import converter
from ..pyct import anno, ast_util, templates, transformer

__all__ = ["transform"]


def _modified_simple(scope):
    return scope.modified_simple if scope is not None else set()


def _opts_expression(node):
    directives = anno.getanno(node, anno.Basic.DIRECTIVES)
    if not directives:
        return ast.Constant(value=None)
    keys = []
    values = []
    for key, value_expr in directives.items():
        keys.append(ast.Constant(value=str(key)))
        values.append(value_expr)
    return ast.Dict(keys=keys, values=values)


def _names_tuple(names):
    return ast.Tuple(
        elts=[ast.Constant(value=n) for n in names], ctx=ast.Load()
    )


def _symbols_tuple(names, ctx_type=ast.Load):
    return ast.Tuple(
        elts=[ast.Name(id=n, ctx=ctx_type()) for n in names], ctx=ctx_type()
    )


def _expr_reads(expr):
    return {
        n.id for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


class _ControlFlowTransformer(transformer.Base):
    # ------------------------------------------------------------------ if

    def visit_If(self, node):
        self.generic_visit(node)

        body_scope = anno.getanno(node, anno.Static.BODY_SCOPE)
        orelse_scope = anno.getanno(node, anno.Static.ORELSE_SCOPE)
        live_out = anno.getanno(node, anno.Static.LIVE_VARS_OUT, default=set())
        defined = anno.getanno(node, anno.Static.DEFINED_VARS_IN)

        modified = _modified_simple(body_scope) | _modified_simple(orelse_scope)
        state = sorted(modified & set(live_out))

        # Symbols both read and modified inside a branch must be aliased
        # (renamed to branch-locals seeded from the enclosing scope) even
        # when they are not live afterwards — otherwise the assignment
        # would shadow them as locals of the generated branch function and
        # break reads that expect the outer value.
        reads = (
            {str(q) for q in body_scope.read if q.is_simple}
            | {str(q) for q in orelse_scope.read if q.is_simple}
        ) if body_scope is not None and orelse_scope is not None else set()
        aliased = sorted(set(state) | (modified & reads))

        undefined = [
            s for s in aliased
            if defined is not None and defined.possibly_undefined(s)
        ]

        body_name = self.ctx.fresh_name("if_body")
        orelse_name = self.ctx.fresh_name("else_body")

        out = []
        for sym in undefined:
            out.extend(
                templates.replace(
                    "sym_ = ag__.Undefined(name_)",
                    sym_=sym,
                    name_=ast.Constant(value=sym),
                )
            )

        out.append(self._make_branch_fn(body_name, node.body, state, aliased))
        out.append(self._make_branch_fn(orelse_name, node.orelse, state, aliased))

        call = templates.replace_as_expression(
            "ag__.if_stmt(test_, body_name_, orelse_name_, names_)",
            test_=node.test,
            body_name_=body_name,
            orelse_name_=orelse_name,
            names_=_names_tuple(state),
        )
        if state:
            out.append(
                ast.Assign(
                    targets=[_symbols_tuple(state, ast.Store)], value=call
                )
            )
        else:
            out.append(ast.Expr(value=call))
        for stmt in out:
            ast.fix_missing_locations(stmt)
        return out

    def _make_branch_fn(self, fn_name, body_stmts, state, aliased=None):
        """Build ``def fn(): <aliases>; <renamed body>; return (...)``."""
        aliased = aliased if aliased is not None else list(state)
        rename_map = {s: self.ctx.fresh_name(f"{s}__") for s in aliased}
        aliases = [
            ast.Assign(
                targets=[ast.Name(id=rename_map[s], ctx=ast.Store())],
                value=ast.Name(id=s, ctx=ast.Load()),
            )
            for s in aliased
        ]
        renamed_body = ast_util.rename_symbols(list(body_stmts), rename_map)
        ret = ast.Return(
            value=ast.Tuple(
                elts=[ast.Name(id=rename_map[s], ctx=ast.Load()) for s in state],
                ctx=ast.Load(),
            )
        )
        fn = ast.FunctionDef(
            name=fn_name,
            args=ast.arguments(
                posonlyargs=[], args=[], vararg=None, kwonlyargs=[],
                kw_defaults=[], kwarg=None, defaults=[],
            ),
            body=aliases + renamed_body + [ret],
            decorator_list=[],
            returns=None,
        )
        return ast.fix_missing_locations(fn)

    # ------------------------------------------------------------- while

    def visit_While(self, node):
        self.generic_visit(node)

        body_scope = anno.getanno(node, anno.Static.BODY_SCOPE)
        live_header = anno.getanno(
            node, anno.Static.LIVE_VARS_IN_HEADER, default=set()
        )
        defined = anno.getanno(node, anno.Static.DEFINED_VARS_IN)

        state = sorted(_modified_simple(body_scope) & set(live_header))

        test_name = self.ctx.fresh_name("loop_test")
        body_name = self.ctx.fresh_name("loop_body")

        out = []
        for sym in state:
            if defined is not None and defined.possibly_undefined(sym):
                out.extend(
                    templates.replace(
                        "sym_ = ag__.Undefined(name_)",
                        sym_=sym,
                        name_=ast.Constant(value=sym),
                    )
                )

        out.append(self._make_state_fn(
            test_name, state, [ast.Return(value=node.test)]
        ))
        body_ret = ast.Return(value=_symbols_tuple(state))
        out.append(self._make_state_fn(
            body_name, state, list(node.body) + [body_ret]
        ))

        call = templates.replace_as_expression(
            "ag__.while_stmt(test_name_, body_name_, init_, names_, opts_)",
            test_name_=test_name,
            body_name_=body_name,
            init_=_symbols_tuple(state),
            names_=_names_tuple(state),
            opts_=_opts_expression(node),
        )
        if state:
            out.append(
                ast.Assign(
                    targets=[_symbols_tuple(state, ast.Store)], value=call
                )
            )
        else:
            out.append(ast.Expr(value=call))
        # A while...else with no break always runs the else after the loop
        # (break-containing loops had their else lowered by the break pass).
        out.extend(node.orelse)
        for stmt in out:
            ast.fix_missing_locations(stmt)
        return out

    def _make_state_fn(self, fn_name, state, body):
        fn = ast.FunctionDef(
            name=fn_name,
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg=s) for s in state],
                vararg=None, kwonlyargs=[], kw_defaults=[], kwarg=None,
                defaults=[],
            ),
            body=body,
            decorator_list=[],
            returns=None,
        )
        return ast.fix_missing_locations(fn)

    # --------------------------------------------------------------- for

    def visit_For(self, node):
        self.generic_visit(node)

        body_scope = anno.getanno(node, anno.Static.BODY_SCOPE)
        live_header = anno.getanno(
            node, anno.Static.LIVE_VARS_IN_HEADER, default=set()
        )
        live_out = anno.getanno(node, anno.Static.LIVE_VARS_OUT, default=set())
        defined = anno.getanno(node, anno.Static.DEFINED_VARS_IN)
        extra_test_expr = anno.getanno(node, anno.Basic.EXTRA_LOOP_TEST)

        targets = {
            n.id for n in ast.walk(node.target)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        }
        modified = _modified_simple(body_scope)
        state = (modified & set(live_header)) - targets
        # A loop variable leaking past the loop must thread through state.
        state |= targets & set(live_out)
        if extra_test_expr is not None:
            # Flags read by the injected extra test live outside the tree
            # the liveness pass saw; keep them in state explicitly.
            state |= _expr_reads(extra_test_expr) & (modified | targets)
        state = sorted(state)

        body_name = self.ctx.fresh_name("loop_body")
        iterate_name = self.ctx.fresh_name("itr")

        out = []
        for sym in state:
            if defined is not None and defined.possibly_undefined(sym):
                out.extend(
                    templates.replace(
                        "sym_ = ag__.Undefined(name_)",
                        sym_=sym,
                        name_=ast.Constant(value=sym),
                    )
                )

        if extra_test_expr is not None:
            extra_name = self.ctx.fresh_name("extra_test")
            out.append(self._make_state_fn(
                extra_name, state, [ast.Return(value=extra_test_expr)]
            ))
            extra_ref = ast.Name(id=extra_name, ctx=ast.Load())
        else:
            extra_ref = ast.Constant(value=None)

        target_assign = ast.Assign(
            targets=[node.target],
            value=ast.Name(id=iterate_name, ctx=ast.Load()),
        )
        body_ret = ast.Return(value=_symbols_tuple(state))
        body_fn = ast.FunctionDef(
            name=body_name,
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg=iterate_name)] + [ast.arg(arg=s) for s in state],
                vararg=None, kwonlyargs=[], kw_defaults=[], kwarg=None,
                defaults=[],
            ),
            body=[target_assign] + list(node.body) + [body_ret],
            decorator_list=[],
            returns=None,
        )
        out.append(ast.fix_missing_locations(body_fn))

        call = templates.replace_as_expression(
            "ag__.for_stmt(iter_, extra_, body_name_, init_, names_, opts_)",
            iter_=node.iter,
            extra_=extra_ref,
            body_name_=body_name,
            init_=_symbols_tuple(state),
            names_=_names_tuple(state),
            opts_=_opts_expression(node),
        )
        if state:
            out.append(
                ast.Assign(
                    targets=[_symbols_tuple(state, ast.Store)], value=call
                )
            )
        else:
            out.append(ast.Expr(value=call))
        out.extend(node.orelse)
        for stmt in out:
            ast.fix_missing_locations(stmt)
        return out


def transform(node, ctx):
    converter.analyze(node)
    return _ControlFlowTransformer(ctx).visit(node)
