"""Ternary conversion (paper §7.2, Ternary Conditional Expressions).

``x if cond else y`` converts inline to ``ag__.if_exp(cond, lambda: x,
lambda: y)``; thunks preserve lazy branch evaluation.
"""

from __future__ import annotations

from ..pyct import templates, transformer

__all__ = ["transform"]


class _TernaryTransformer(transformer.Base):
    def visit_IfExp(self, node):
        self.generic_visit(node)
        return templates.replace_as_expression(
            "ag__.if_exp(cond_, lambda: true_, lambda: false_)",
            cond_=node.test,
            true_=node.body,
            false_=node.orelse,
        )


def transform(node, ctx):
    return _TernaryTransformer(ctx).visit(node)
