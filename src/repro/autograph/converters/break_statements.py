"""Break statement lowering (paper §7.2, Break).

``break`` has no representation in the target IRs, so it is removed by
introducing a flag:

- ``break_ = False`` before the loop;
- ``break`` becomes ``break_ = True; continue`` (the continue pass that
  follows lowers the ``continue`` into body guards);
- ``while test:`` becomes ``while not break_ and test:``;
- ``for`` loops get an ``extra_test`` annotation (``not break_``) consumed
  by the control-flow pass, since their termination cannot be expressed in
  the header syntax.
"""

from __future__ import annotations

import ast

from ..pyct import anno, templates, transformer

__all__ = ["transform"]


def _block_contains_break(stmts):
    """True if the block has a ``break`` belonging to this loop level."""
    stack = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Break):
            return True
        if isinstance(node, (ast.While, ast.For, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.Lambda)):
            continue  # break inside belongs to the inner loop/scope
        stack.extend(ast.iter_child_nodes(node))
    return False


class _BreakRewriter(ast.NodeTransformer):
    """Replaces this loop level's breaks with flag set + continue."""

    def __init__(self, flag_name):
        self.flag_name = flag_name

    def visit_Break(self, node):
        return templates.replace(
            """
            flag_ = True
            continue
            """,
            flag_=self.flag_name,
        )

    # Don't descend into constructs that own their breaks.
    def visit_While(self, node):
        return node

    def visit_For(self, node):
        return node

    def visit_FunctionDef(self, node):
        return node

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node):
        return node


class _BreakTransformer(transformer.Base):
    def _process_loop(self, node, is_while):
        # Inner loops first.
        self.generic_visit(node)
        if not _block_contains_break(node.body):
            return node
        flag = self.ctx.fresh_name("break_")
        rewriter = _BreakRewriter(flag)
        node.body = [
            s for stmt in node.body
            for s in _as_list(rewriter.visit(stmt))
        ]
        init = templates.replace("flag_ = False", flag_=flag)
        extra_test = templates.replace_as_expression("not flag_", flag_=flag)
        if is_while:
            node.test = ast.BoolOp(op=ast.And(), values=[extra_test, node.test])
        else:
            existing = anno.getanno(node, anno.Basic.EXTRA_LOOP_TEST)
            if existing is not None:
                extra_test = ast.BoolOp(op=ast.And(),
                                        values=[extra_test, existing])
            anno.setanno(node, anno.Basic.EXTRA_LOOP_TEST, extra_test)
        # ``while ... else`` / ``for ... else`` semantics depend on whether
        # a break occurred; lower the else into a flag check.
        if node.orelse:
            orelse_guard = templates.replace(
                """
                if not flag_:
                    orelse_
                """,
                flag_=flag,
                orelse_=node.orelse,
            )
            node.orelse = []
            return init + [node] + orelse_guard
        return init + [node]

    def visit_While(self, node):
        return self._process_loop(node, is_while=True)

    def visit_For(self, node):
        return self._process_loop(node, is_while=False)


def _as_list(value):
    return value if isinstance(value, list) else [value]


def transform(node, ctx):
    return _BreakTransformer(ctx).visit(node)
