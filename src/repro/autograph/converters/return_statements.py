"""Return statement lowering (paper §7.2, Return Statements).

Rewrites every function so it has a single ``return`` at the end:

- each ``return x`` becomes ``do_return = True; retval = x`` (plus a
  ``break`` when inside a loop, lowered by the break pass that follows);
- statements following a possibly-returning statement are guarded with
  ``if not do_return:`` so control skips them once a return executed —
  the paper's if/else balancing, generalized;
- the function ends with a single ``return retval``, later rewritten by
  the function-wrappers pass into ``return fscope.ret(retval)``.
"""

from __future__ import annotations

import ast

from ..pyct import templates, transformer

__all__ = ["transform"]


def _contains_return_scoped(node):
    """True if ``node`` contains a return belonging to the same function
    (returns inside nested function definitions do not count)."""
    stack = [node]
    first = True
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Return):
            return True
        if not first and isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # different scope
        first = False
        stack.extend(ast.iter_child_nodes(current))
    return False


class _FunctionRewriter:
    """Rewrites one function's body (nested functions handled separately)."""

    def __init__(self, ctx, fn_name):
        self.ctx = ctx
        self.do_return_name = ctx.fresh_name(f"do_return")
        self.retval_name = ctx.fresh_name(f"retval_")

    def rewrite(self, fn_node):
        if not _contains_return_scoped_body(fn_node):
            return fn_node
        new_body = self._rewrite_block(fn_node.body, in_loop=False)
        prologue = templates.replace(
            """
            do_return = False
            retval_ = ag__.UndefinedReturnValue()
            """,
            do_return=self.do_return_name,
            retval_=self.retval_name,
        )
        epilogue = templates.replace(
            "return retval_", retval_=self.retval_name
        )
        # Avoid a double return when the body already ends with one that the
        # rewrite turned into assignments — the epilogue is always safe.
        fn_node.body = prologue + new_body + epilogue
        return fn_node

    def _rewrite_block(self, stmts, in_loop):
        out = []
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Return):
                out.extend(self._lower_return(stmt, in_loop))
                # Anything after an unconditional return is dead code.
                break
            may_return = _contains_return_scoped(stmt)
            rewritten = self._rewrite_stmt(stmt, in_loop)
            if may_return:
                # stmt could have set do_return; guard the remainder.
                out.extend(rewritten)
                rest = self._rewrite_block(stmts[i + 1:], in_loop)
                if rest:
                    guard = templates.replace(
                        """
                        if not do_return:
                            rest_
                        """,
                        do_return=self.do_return_name,
                        rest_=rest,
                    )
                    out.extend(guard)
                return out
            out.extend(rewritten)
        return out

    def _rewrite_stmt(self, stmt, in_loop):
        if isinstance(stmt, ast.If):
            stmt.body = self._rewrite_block(stmt.body, in_loop)
            stmt.orelse = self._rewrite_block(stmt.orelse, in_loop)
            return [stmt]
        if isinstance(stmt, (ast.While, ast.For)):
            stmt.body = self._rewrite_block(stmt.body, in_loop=True)
            stmt.orelse = self._rewrite_block(stmt.orelse, in_loop)
            return [stmt]
        if isinstance(stmt, ast.With):
            stmt.body = self._rewrite_block(stmt.body, in_loop)
            return [stmt]
        if isinstance(stmt, ast.Try):
            stmt.body = self._rewrite_block(stmt.body, in_loop)
            for handler in stmt.handlers:
                handler.body = self._rewrite_block(handler.body, in_loop)
            stmt.orelse = self._rewrite_block(stmt.orelse, in_loop)
            stmt.finalbody = self._rewrite_block(stmt.finalbody, in_loop)
            return [stmt]
        return [stmt]

    def _lower_return(self, stmt, in_loop):
        value = stmt.value if stmt.value is not None else ast.Constant(value=None)
        lowered = templates.replace(
            """
            do_return = True
            retval_ = value_
            """,
            do_return=self.do_return_name,
            retval_=self.retval_name,
            value_=value,
        )
        if in_loop:
            lowered.append(ast.Break())
        return lowered


def _contains_return_scoped_body(fn_node):
    for stmt in fn_node.body:
        if _contains_return_scoped(stmt):
            return True
    return False


class _ReturnTransformer(transformer.Base):
    def visit_FunctionDef(self, node):
        # Depth-first: rewrite nested functions first.
        self.generic_visit(node)
        return _FunctionRewriter(self.ctx, node.name).rewrite(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def transform(node, ctx):
    return _ReturnTransformer(ctx).visit(node)
