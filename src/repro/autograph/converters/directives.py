"""Directives pass (paper §7.2, Directives).

Recognizes calls to AutoGraph compilation directives:

- ``ag.set_element_type(l, dtype)`` — replaced in-place with a staged-list
  construction so subsequent ``append``/``stack`` thread a TensorArray;
- ``ag.set_loop_options(...)`` — removed from the body and recorded as an
  annotation on the enclosing loop, consumed by the control-flow pass.
"""

from __future__ import annotations

import ast

from ..pyct import anno, templates, transformer

__all__ = ["transform"]

_DIRECTIVE_NAMES = ("set_element_type", "set_loop_options")


def _directive_name(call):
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _DIRECTIVE_NAMES:
        return func.attr
    if isinstance(func, ast.Name) and func.id in _DIRECTIVE_NAMES:
        return func.id
    return None


class _DirectivesTransformer(transformer.Base):
    def __init__(self, ctx):
        super().__init__(ctx)
        self._loop_stack = []

    def visit_While(self, node):
        node.test = self.visit(node.test)
        self._loop_stack.append(node)
        node.body = self.visit_block(node.body)
        self._loop_stack.pop()
        node.orelse = self.visit_block(node.orelse)
        return node

    def visit_For(self, node):
        node.iter = self.visit(node.iter)
        self._loop_stack.append(node)
        node.body = self.visit_block(node.body)
        self._loop_stack.pop()
        node.orelse = self.visit_block(node.orelse)
        return node

    def visit_Expr(self, node):
        if isinstance(node.value, ast.Call):
            name = _directive_name(node.value)
            if name == "set_element_type":
                return self._apply_set_element_type(node.value)
            if name == "set_loop_options":
                self._apply_loop_options(node.value)
                return []
        return self.generic_visit(node)

    def _apply_set_element_type(self, call):
        if len(call.args) != 2:
            raise ValueError(
                "set_element_type expects exactly (list, dtype) arguments"
            )
        target, dtype_expr = call.args
        if not isinstance(target, ast.Name):
            raise ValueError(
                "set_element_type must be applied to a simple variable"
            )
        return templates.replace(
            "target = ag__.new_list_of_type(target, dtype_)",
            target=target.id,
            dtype_=dtype_expr,
        )

    def _apply_loop_options(self, call):
        if not self._loop_stack:
            raise ValueError(
                "set_loop_options may only appear inside a loop body"
            )
        loop = self._loop_stack[-1]
        opts = anno.getanno(loop, anno.Basic.DIRECTIVES, default=None)
        if opts is None:
            opts = {}
            anno.setanno(loop, anno.Basic.DIRECTIVES, opts)
        for kw in call.keywords:
            opts[kw.arg] = kw.value


def transform(node, ctx):
    return _DirectivesTransformer(ctx).visit(node)
