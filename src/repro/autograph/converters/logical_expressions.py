"""Logical expression conversion (paper §7.2, Logical Expressions).

``and``/``or``/``not`` cannot be overloaded in Python, and ``==`` is
deliberately not overloaded on tensors; these convert inline to the
dispatched operator functions, with thunks preserving lazy evaluation of
boolean chains.
"""

from __future__ import annotations

import ast

from ..pyct import templates, transformer

__all__ = ["transform"]


class _LogicalTransformer(transformer.Base):
    def visit_BoolOp(self, node):
        self.generic_visit(node)
        op_name = "and_" if isinstance(node.op, ast.And) else "or_"
        # Fold a chain right-associatively: a and b and c
        #   -> and_(lambda: a, lambda: and_(lambda: b, lambda: c))
        result = node.values[-1]
        for value in reversed(node.values[:-1]):
            result = templates.replace_as_expression(
                f"ag__.{op_name}(lambda: left_, lambda: right_)",
                left_=value,
                right_=result,
            )
        return result

    def visit_UnaryOp(self, node):
        self.generic_visit(node)
        if isinstance(node.op, ast.Not):
            return templates.replace_as_expression(
                "ag__.not_(operand_)", operand_=node.operand
            )
        return node

    def visit_Compare(self, node):
        self.generic_visit(node)
        # Only single comparisons convert; chains (a < b < c) keep Python
        # semantics (a documented limitation, rare on tensors).
        if len(node.ops) != 1:
            return node
        op = node.ops[0]
        if isinstance(op, ast.Eq):
            fn = "eq"
        elif isinstance(op, ast.NotEq):
            fn = "not_eq"
        else:
            # <, <=, >, >= dispatch through the tensor operator overloads;
            # is/in have no tensor equivalent.
            return node
        return templates.replace_as_expression(
            f"ag__.{fn}(left_, right_)",
            left_=node.left,
            right_=node.comparators[0],
        )


def transform(node, ctx):
    return _LogicalTransformer(ctx).visit(node)
