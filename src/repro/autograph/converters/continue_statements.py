"""Continue statement lowering (paper §7.2 and §6: "continue is lowered
using extra variables and conditionals").

Within each loop body containing ``continue``:

- ``continue_ = False`` is inserted at the top of the body;
- each ``continue`` becomes ``continue_ = True``;
- every statement that follows a possibly-continuing statement is guarded
  by ``if not continue_:``.
"""

from __future__ import annotations

import ast

from ..pyct import templates, transformer

__all__ = ["transform"]


def _contains_continue(node):
    stack = [node]
    first = True
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Continue):
            return True
        if not first and isinstance(
            current, (ast.While, ast.For, ast.FunctionDef,
                      ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        first = False
        stack.extend(ast.iter_child_nodes(current))
    return False


def _block_contains_continue(stmts):
    return any(_contains_continue(s) for s in stmts)


class _BodyRewriter:
    def __init__(self, flag_name):
        self.flag_name = flag_name

    def rewrite_block(self, stmts):
        out = []
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Continue):
                out.extend(
                    templates.replace("flag_ = True", flag_=self.flag_name)
                )
                # Statements after a bare continue are dead code.
                break
            may_continue = _contains_continue(stmt)
            out.append(self._rewrite_stmt(stmt))
            if may_continue:
                rest = self.rewrite_block(stmts[i + 1:])
                if rest:
                    out.extend(
                        templates.replace(
                            """
                            if not flag_:
                                rest_
                            """,
                            flag_=self.flag_name,
                            rest_=rest,
                        )
                    )
                return out
        return out

    def _rewrite_stmt(self, stmt):
        if isinstance(stmt, ast.If):
            stmt.body = self.rewrite_block(stmt.body)
            stmt.orelse = self.rewrite_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            stmt.body = self.rewrite_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            stmt.body = self.rewrite_block(stmt.body)
            for handler in stmt.handlers:
                handler.body = self.rewrite_block(handler.body)
            stmt.orelse = self.rewrite_block(stmt.orelse)
            stmt.finalbody = self.rewrite_block(stmt.finalbody)
        # While/For own their continues; leave them intact.
        return stmt


class _ContinueTransformer(transformer.Base):
    def _process_loop(self, node):
        self.generic_visit(node)  # inner loops first
        if not _block_contains_continue(node.body):
            return node
        flag = self.ctx.fresh_name("continue_")
        rewriter = _BodyRewriter(flag)
        new_body = rewriter.rewrite_block(node.body)
        init = templates.replace("flag_ = False", flag_=flag)
        node.body = init + new_body
        return node

    visit_While = _process_loop
    visit_For = _process_loop


def transform(node, ctx):
    return _ContinueTransformer(ctx).visit(node)
