"""Conversion passes, in order of application (paper §7.2)."""

from . import (
    asserts,
    break_statements,
    call_trees,
    conditional_expressions,
    continue_statements,
    control_flow,
    directives,
    function_wrappers,
    lists,
    logical_expressions,
    return_statements,
    slices,
)

# The paper's pass order: directives; break/continue/return; asserts;
# lists; slices; function calls; control flow; ternary; logical
# expressions; function wrappers.  Return lowering runs first among the
# nonlocal-flow passes because it emits `break` statements that the break
# pass then lowers.
PASS_ORDER = (
    directives,
    return_statements,
    break_statements,
    continue_statements,
    asserts,
    lists,
    slices,
    call_trees,
    control_flow,
    conditional_expressions,
    logical_expressions,
    function_wrappers,
)

__all__ = [
    "PASS_ORDER",
    "asserts",
    "break_statements",
    "call_trees",
    "conditional_expressions",
    "continue_statements",
    "control_flow",
    "directives",
    "function_wrappers",
    "lists",
    "logical_expressions",
    "return_statements",
    "slices",
]
