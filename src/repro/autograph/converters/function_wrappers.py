"""Function wrapper conversion (paper §7.2, Function Wrappers).

Wraps each converted function's body in an ``ag__.FunctionScope`` which:
opens a graph name scope (readable graphs), collects staged side effects,
and routes return values through ``fscope.ret`` so collected effects
become control dependencies and undefined-return markers map to None.
"""

from __future__ import annotations

import ast

from ..pyct import templates, transformer

__all__ = ["transform"]


class _ReturnRouter(ast.NodeTransformer):
    """Rewrites this function's returns to go through fscope.ret."""

    def __init__(self, fscope_name):
        self.fscope_name = fscope_name

    def visit_Return(self, node):
        value = node.value if node.value is not None else ast.Constant(value=None)
        new = templates.replace(
            "return fscope_.ret(value_)",
            fscope_=self.fscope_name,
            value_=value,
        )[0]
        return ast.copy_location(new, node)

    # Nested functions route through their own scopes.
    def visit_FunctionDef(self, node):
        return node

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node):
        return node


class _FunctionWrapperTransformer(transformer.Base):
    def __init__(self, ctx, top_level_only=True):
        super().__init__(ctx)
        self._wrapped_top = False

    def visit_FunctionDef(self, node):
        # Only the outermost (converted entity) function gets a scope;
        # generated branch/body functions must stay lightweight, and
        # nested user functions get their own scope when converted via
        # converted_call.
        if self._wrapped_top:
            return node
        self._wrapped_top = True

        fscope_name = self.ctx.fresh_name("fscope")
        body = [_ReturnRouter(fscope_name).visit(stmt) for stmt in node.body]

        # Docstring stays outside the with block.
        docstring = []
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            docstring = [body[0]]
            body = body[1:]
        if not body:
            body = [ast.Pass()]

        wrapped = templates.replace(
            """
            with ag__.FunctionScope(name_) as fscope_:
                body_
            """,
            name_=ast.Constant(value=node.name),
            fscope_=fscope_name,
            body_=body,
        )
        node.body = docstring + wrapped
        return ast.fix_missing_locations(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def transform(node, ctx):
    return _FunctionWrapperTransformer(ctx).visit(node)
