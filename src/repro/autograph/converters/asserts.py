"""Assert conversion (paper §7.2, Assert Statements).

``assert e, msg`` is converted in-place to the overloadable functional
form ``ag__.assert_stmt(lambda: e, lambda: msg)``; thunks preserve the
lazy evaluation of the message.
"""

from __future__ import annotations

import ast

from ..pyct import templates, transformer

__all__ = ["transform"]


class _AssertTransformer(transformer.Base):
    def visit_Assert(self, node):
        self.generic_visit(node)
        if node.msg is None:
            return templates.replace(
                "ag__.assert_stmt(lambda: test_)", test_=node.test
            )
        return templates.replace(
            "ag__.assert_stmt(lambda: test_, lambda: msg_)",
            test_=node.test,
            msg_=node.msg,
        )


def transform(node, ctx):
    return _AssertTransformer(ctx).visit(node)
