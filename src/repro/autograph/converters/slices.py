"""Slice conversion (paper §7.2, Slices).

Slice writes are rewritten to value semantics: ``x[i] = y`` becomes
``x = ag__.set_item(x, i, y)`` (the target IR requires functional
updates).  Slice reads convert mechanically to ``ag__.get_item`` so that
staged lists (TensorArrays) support indexing.
"""

from __future__ import annotations

import ast

from ..pyct import templates, transformer

__all__ = ["transform"]


def _key_expression(subscript):
    """Build an expression evaluating the subscript's key."""
    sl = subscript.slice
    return _slice_to_expr(sl)


def _slice_to_expr(sl):
    if isinstance(sl, ast.Slice):
        return ast.Call(
            func=ast.Name(id="slice", ctx=ast.Load()),
            args=[
                sl.lower if sl.lower is not None else ast.Constant(value=None),
                sl.upper if sl.upper is not None else ast.Constant(value=None),
                sl.step if sl.step is not None else ast.Constant(value=None),
            ],
            keywords=[],
        )
    if isinstance(sl, ast.Tuple):
        return ast.Tuple(
            elts=[_slice_to_expr(e) for e in sl.elts], ctx=ast.Load()
        )
    return sl


class _SliceTransformer(transformer.Base):
    def visit_Assign(self, node):
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Subscript):
            target = node.targets[0]
            base = ast.copy_location(
                ast.fix_missing_locations(_load(target.value)), target
            )
            key = _key_expression(target)
            return templates.replace(
                "base_ = ag__.set_item(base_, key_, value_)",
                base_=base,
                key_=key,
                value_=node.value,
            )
        return node

    def visit_AugAssign(self, node):
        self.generic_visit(node)
        if isinstance(node.target, ast.Subscript):
            target = node.target
            base = _load(target.value)
            key = _key_expression(target)
            combined = ast.BinOp(
                left=templates.replace_as_expression(
                    "ag__.get_item(base_, key_)", base_=base, key_=key
                ),
                op=node.op,
                right=node.value,
            )
            return templates.replace(
                "base_ = ag__.set_item(base_, key_, value_)",
                base_=base,
                key_=key,
                value_=combined,
            )
        return node

    def visit_Subscript(self, node):
        self.generic_visit(node)
        if not isinstance(node.ctx, ast.Load):
            return node
        return templates.replace_as_expression(
            "ag__.get_item(base_, key_)",
            base_=node.value,
            key_=_key_expression(node),
        )


def _load(expr):
    """A Load-context copy of an assignment-target expression."""
    import copy as _copy

    new = _copy.deepcopy(expr)
    for child in ast.walk(new):
        if hasattr(child, "ctx"):
            child.ctx = ast.Load()
    return new


def transform(node, ctx):
    return _SliceTransformer(ctx).visit(node)
