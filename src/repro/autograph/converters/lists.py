"""List idiom conversion (paper §7.2, Lists).

- empty list literals become ``ag__.new_list()`` so directives can retype
  them into staged TensorArrays;
- ``l.append(x)`` statements become ``l = ag__.list_append(l, x)``;
- ``x = l.pop()`` becomes ``l, x = ag__.list_pop(l)``.

Only simple-name targets are converted: rewriting ``obj.attr.append`` into
an assignment would change object-mutation semantics (paper Appendix E's
object-mutation caveats).
"""

from __future__ import annotations

import ast

from ..pyct import templates, transformer

__all__ = ["transform"]


def _is_method_call(expr, method):
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == method
        and isinstance(expr.func.value, ast.Name)
    )


class _ListTransformer(transformer.Base):
    def visit_List(self, node):
        self.generic_visit(node)
        if isinstance(node.ctx, ast.Load) and not node.elts:
            return templates.replace_as_expression("ag__.new_list()")
        return node

    def visit_Expr(self, node):
        self.generic_visit(node)
        if _is_method_call(node.value, "append") and len(node.value.args) == 1:
            target = node.value.func.value.id
            return templates.replace(
                "target_ = ag__.list_append(target_, elem_)",
                target_=target,
                elem_=node.value.args[0],
            )
        if _is_method_call(node.value, "pop") and not node.value.args:
            target = node.value.func.value.id
            return templates.replace(
                "target_, _ = ag__.list_pop(target_)", target_=target
            )
        return node

    def visit_Assign(self, node):
        self.generic_visit(node)
        if (
            len(node.targets) == 1
            and _is_method_call(node.value, "pop")
            and not node.value.args
        ):
            list_name = node.value.func.value.id
            target = node.targets[0]
            # Avoid rewriting when the popped value is assigned back onto
            # the list symbol itself (l = l.pop() — pathological).
            if isinstance(target, ast.Name) and target.id == list_name:
                return node
            return templates.replace(
                "target_, dst_ = ag__.list_pop(target_)",
                target_=list_name,
                dst_=target,
            )
        return node


def transform(node, ctx):
    return _ListTransformer(ctx).visit(node)
