#!/usr/bin/env python
"""In-graph training (paper §9, Table 2 workload).

Trains a single linear layer on (synthetic) MNIST with SGD where the
*entire training loop* — forward pass, gradients, parameter updates —
executes inside one graph, written as an ordinary Python ``while`` loop
and staged by AutoGraph.  One ``Session.run`` call performs all steps.
"""

import numpy as np

import repro.autograph as ag
from repro import framework as fw
from repro.datasets import load_mnist_synthetic
from repro.framework import ops


def train_all_steps(batches_x, batches_y, w0, b0, num_steps, learning_rate):
    """The full SGD loop, imperatively (converted by AutoGraph)."""
    num_batches = ops.shape(batches_x)[0]
    w = w0
    b = b0
    loss = 0.0
    i = 0
    while i < num_steps:
        idx = i % num_batches
        x = batches_x[idx]
        y = batches_y[idx]
        logits = ops.add(ops.matmul(x, w), b)
        losses = ops.softmax_cross_entropy_with_logits(y, logits)
        loss = ops.reduce_mean(losses)
        dw, db = fw.gradients(loss, [w, b])
        w = ops.subtract(w, ops.multiply(dw, learning_rate))
        b = ops.subtract(b, ops.multiply(db, learning_rate))
        i = i + 1
    return w, b, loss


def main():
    batch_size, steps = 200, 300
    images, labels = load_mnist_synthetic(num_examples=4000, seed=0)
    n_batches = images.shape[0] // batch_size
    bx = images[: n_batches * batch_size].reshape(n_batches, batch_size, 784)
    onehot = np.eye(10, dtype=np.float32)[labels]
    by = onehot[: n_batches * batch_size].reshape(n_batches, batch_size, 10)

    train = ag.to_graph(train_all_steps)

    graph = fw.Graph()
    with graph.as_default():
        px = ops.placeholder(fw.float32, bx.shape)
        py = ops.placeholder(fw.float32, by.shape)
        w0 = ops.zeros((784, 10))
        b0 = ops.zeros((10,))
        steps_t = ops.constant(steps)
        w_f, b_f, loss_f = train(px, py, w0, b0, steps_t, 0.3)

    sess = fw.Session(graph)
    # Initial loss for reference: -log(1/10).
    print(f"initial loss (uniform): {np.log(10.0):.4f}")
    w, b, final_loss = sess.run((w_f, b_f, loss_f), {px: bx, py: by})
    print(f"final loss after {steps} in-graph SGD steps: {float(final_loss):.4f}")

    preds = np.argmax(images @ w + b, axis=1)
    acc = float(np.mean(preds == labels))
    print(f"train accuracy: {acc:.3f}")
    assert float(final_loss) < np.log(10.0), "training should reduce the loss"
    print("OK: the entire training process ran inside the graph "
          "(one Session.run call).")


if __name__ == "__main__":
    main()
