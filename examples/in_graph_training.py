#!/usr/bin/env python
"""In-graph training (paper §9, Table 2 workload) via ``@repro.function``.

Trains a single linear layer on (synthetic) MNIST with SGD where the
*entire training loop* — forward pass, gradients, parameter updates —
executes inside one graph, written as an ordinary Python ``while`` loop.

Where this example previously hand-wired ``ag.to_graph`` + ``Graph`` +
placeholders + ``Session``, the tracing JIT now does all of it behind one
decorator: the first call traces, optimizes and compiles; every later
call with the same input signature reuses the cached plan.
"""

import time

import numpy as np

import repro
from repro import framework as fw
from repro.datasets import load_mnist_synthetic
from repro.framework import ops


@repro.function
def train_all_steps(batches_x, batches_y, w0, b0, num_steps, learning_rate):
    """The full SGD loop, imperatively (staged by the tracing JIT)."""
    num_batches = ops.shape(batches_x)[0]
    w = w0
    b = b0
    loss = 0.0
    i = 0
    while i < num_steps:
        idx = i % num_batches
        x = batches_x[idx]
        y = batches_y[idx]
        logits = ops.add(ops.matmul(x, w), b)
        losses = ops.softmax_cross_entropy_with_logits(y, logits)
        loss = ops.reduce_mean(losses)
        dw, db = fw.gradients(loss, [w, b])
        w = ops.subtract(w, ops.multiply(dw, learning_rate))
        b = ops.subtract(b, ops.multiply(db, learning_rate))
        i = i + 1
    return w, b, loss


def main():
    batch_size, steps = 200, 300
    images, labels = load_mnist_synthetic(num_examples=4000, seed=0)
    n_batches = images.shape[0] // batch_size
    bx = images[: n_batches * batch_size].reshape(n_batches, batch_size, 784)
    onehot = np.eye(10, dtype=np.float32)[labels]
    by = onehot[: n_batches * batch_size].reshape(n_batches, batch_size, 10)

    w0 = np.zeros((784, 10), np.float32)
    b0 = np.zeros((10,), np.float32)
    # num_steps rides in as a tensor so the loop stages in-graph; the
    # learning rate is a Python constant baked into the trace.
    steps_t = np.int32(steps)

    print(f"initial loss (uniform): {np.log(10.0):.4f}")
    t0 = time.perf_counter()
    w, b, final_loss = train_all_steps(bx, by, w0, b0, steps_t, 0.3)
    t1 = time.perf_counter()
    w, b, final_loss = train_all_steps(bx, by, w0, b0, steps_t, 0.3)
    t2 = time.perf_counter()

    print(f"final loss after {steps} in-graph SGD steps: "
          f"{float(final_loss.numpy()):.4f}")
    print(f"first call (trace + optimize + run): {t1 - t0:.3f}s; "
          f"second call (cached plan): {t2 - t1:.3f}s")
    assert train_all_steps.trace_count == 1, "same signature must not retrace"

    preds = np.argmax(images @ w.numpy() + b.numpy(), axis=1)
    acc = float(np.mean(preds == labels))
    print(f"train accuracy: {acc:.3f}")
    assert float(final_loss.numpy()) < np.log(10.0), "training should reduce the loss"
    print("OK: the entire training process ran inside one traced graph "
          "(no hand-built Graph/Session), and staging was paid once.")


if __name__ == "__main__":
    main()
