#!/usr/bin/env python
"""The paper's §9 RNN example: an imperative dynamic RNN.

The exact code shape from the paper — Python ``for`` over ``tf.range``,
a list with ``ag.set_element_type``, ``break``-free masking via
``tf.where`` — converted by AutoGraph and verified to produce results
identical to the library (``Official``) graph implementation.
"""

import numpy as np

import repro
import repro.autograph as ag
from repro import framework as fw
from repro import nn
from repro.datasets import random_sequences
from repro.framework import ops


def ag_dynamic_rnn(rnn_cell, input_data, initial_state, sequence_len):
    """The paper's imperative dynamic_rnn (§9, "RNN cells")."""
    input_data = ops.transpose(input_data, (1, 0, 2))
    outputs = []
    ag.set_element_type(outputs, fw.float32)
    state = initial_state
    if sequence_len is None:
        max_len = ops.shape(input_data)[0]
    else:
        max_len = ops.reduce_max(sequence_len)
    for i in range(max_len):
        prev_state = state
        output, state = rnn_cell(input_data[i], state)
        if sequence_len is not None:
            state = ops.where(i < sequence_len, state, prev_state)
            output = ops.where(i < sequence_len, output, ops.zeros_like(output))
        outputs.append(output)
    outputs = ag.stack(outputs)
    outputs = ops.transpose(outputs, (1, 0, 2))
    return outputs, state


def main():
    batch, seq, dim, hidden = 8, 16, 32, 64
    data, lengths = random_sequences(batch, seq, dim, seed=3)
    cell = nn.BasicRNNCell(hidden, input_dim=dim, rng=np.random.default_rng(7))

    # Official (library, hand-built while_loop + TensorArray) graph.
    g1 = fw.Graph()
    with g1.as_default():
        x1 = ops.placeholder(fw.float32, [batch, seq, dim])
        l1 = ops.placeholder(fw.int32, [batch])
        out_official, state_official = nn.dynamic_rnn(
            cell, x1, cell.zero_state(batch), sequence_length=l1
        )
    official_out, official_state = fw.Session(g1).run(
        (out_official, state_official), {x1: data, l1: lengths}
    )

    # The tracing JIT: the same imperative function behind @repro.function.
    # No Graph/Session wiring — the cell keys the cache by identity, the
    # data/lengths by dtype and shape.
    traced_rnn = repro.function(ag_dynamic_rnn)
    out_t, state_t = traced_rnn(cell, data, cell.zero_state(batch), lengths)
    ag_out, ag_state = out_t.numpy(), state_t.numpy()
    # Second batch with the same shapes: cache hit, no retrace.
    data2, lengths2 = random_sequences(batch, seq, dim, seed=9)
    traced_rnn(cell, data2, cell.zero_state(batch), lengths2)
    assert traced_rnn.trace_count == 1, "same signature must not retrace"

    print("official outputs shape:", official_out.shape)
    print("repro.function outputs shape:", ag_out.shape)
    print("max |official - repro.function| (outputs):",
          float(np.max(np.abs(official_out - ag_out))))
    print("max |official - repro.function| (state):  ",
          float(np.max(np.abs(official_state - ag_state))))
    assert np.allclose(official_out, ag_out, atol=1e-5)
    assert np.allclose(official_state, ag_state, atol=1e-5)
    print("OK: the @repro.function-traced imperative RNN matches the library "
          "graph implementation (paper: 'produces results identical to "
          "tf.dynamic_rnn'), and staging was paid once across batches.")


if __name__ == "__main__":
    main()
