#!/usr/bin/env python
"""Quickstart: the paper's Listing 1, end to end.

Demonstrates:
  1. the usability problem — symbolic tensors cannot drive Python ``if``;
  2. ``@ag.convert()`` — the single-function API;
  3. dynamic dispatch — the same function runs imperatively on Python
     values and stages into the graph IR on tensors;
  4. inspecting the generated code (paper §5: "the generated code can be
     inspected, and even modified by the user");
  5. ``@repro.function`` — the tracing JIT that wraps all of the above:
     trace once per input signature, then re-execute the cached compiled
     graph.
"""

import numpy as np

import repro
import repro.autograph as ag
from repro import framework as fw
from repro.framework import ops


@ag.convert()
def f(x):
    if x > 0:
        x = x * x
    return x


def main():
    # --- Imperative mode: plain Python semantics, unstaged. ---------------
    print("f(3)  =", f(3), " (plain Python int: runs imperatively)")
    print("f(-3) =", f(-3))

    # --- The problem AutoGraph solves. ------------------------------------
    graph = fw.Graph()
    with graph.as_default():
        x = ops.placeholder(fw.float32, [], name="x")
        try:
            if x > 0:  # symbolic tensor as a Python bool: refused
                pass
        except TypeError as e:
            print("\nWithout AutoGraph, `if tensor:` raises:")
            print(" ", str(e).splitlines()[0])

        # --- Staged mode: the same f builds graph ops. ---------------------
        y = f(x)

    sess = fw.Session(graph)
    print("\nStaged into the graph IR (one cond node, data-dependent):")
    print("  f(3.0)  =", sess.run(y, {x: 3.0}))
    print("  f(-3.0) =", sess.run(y, {x: -3.0}))

    # --- The tracing JIT: no Graph/Session wiring at all. -------------------
    jitted = repro.function(f)
    print("\nWith @repro.function (trace once, run from cache):")
    print("  f(3.0)  =", float(jitted(np.float32(3.0)).numpy()))
    print("  f(-3.0) =", float(jitted(np.float32(-3.0)).numpy()))
    print("  traces:", jitted.trace_count,
          " (both calls share one traced graph)")
    assert jitted.trace_count == 1

    # --- The generated code (paper Listing 1, bottom). ----------------------
    converted = ag.to_graph(f)
    print("\nGenerated code:")
    print(converted.__ag_source__)


if __name__ == "__main__":
    main()
