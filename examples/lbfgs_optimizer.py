#!/usr/bin/env python
"""L-BFGS with data-dependent termination (paper Appendix D.2).

The optimizer's outer loop runs *until the gradient norm passes a
tolerance* — control flow the graph cannot know in advance.  The same
source runs eagerly and staged; staged, the convergence check happens
inside the graph and one Session.run performs the whole optimization.
"""

import numpy as np

import repro.autograph as ag
from repro import framework as fw
from repro.apps.lbfgs import lbfgs_minimize, make_problem
from repro.framework import ops


def main():
    a, b, x0 = make_problem(batch_size=6, dim=16, cond=25.0, seed=9)

    # Eager: define-by-run, each iteration interpreted.
    x_e, iters_e, gnorm_e = lbfgs_minimize(
        ops.constant(a), ops.constant(b), ops.constant(x0),
        m=5, max_iter=100, tol=1e-5,
    )
    print(f"eager : converged in {int(iters_e)} iterations, "
          f"|grad| = {float(np.asarray(gnorm_e)):.2e}")

    # Staged: the full optimizer is one graph.
    converted = ag.to_graph(lbfgs_minimize)
    g = fw.Graph()
    with g.as_default():
        outs = converted(ops.constant(a), ops.constant(b), ops.constant(x0),
                         m=5, max_iter=100, tol=1e-5)
    x_s, iters_s, gnorm_s = fw.Session(g).run(outs)
    print(f"staged: converged in {int(iters_s)} iterations, "
          f"|grad| = {float(gnorm_s):.2e}")

    residual = np.max(np.abs(np.einsum("bij,bj->bi", a, np.asarray(x_s)) - b))
    print(f"max residual |Ax - b| = {residual:.2e}")
    assert int(iters_e) == int(iters_s)
    assert np.allclose(np.asarray(x_e), x_s, atol=1e-4)
    assert residual < 1e-2
    print("OK: staged L-BFGS matches eager, including the data-dependent "
          "early exit.")


if __name__ == "__main__":
    main()
