#!/usr/bin/env python
"""Fleet serving: one socket, N worker processes, shared-memory swaps.

``examples/serving.py`` serves from one process; this example runs the
production-shaped version — ``repro.serving.FleetServer``:

  1. **export** — two versions of a linear model are saved with
     ``freeze=False`` (graph + named weight checkpoint), the loadable
     unit a fleet worker boots from;
  2. **prefork** — the parent binds the socket, creates the shared
     state, and forks worker processes; the kernel load-balances
     accepts across them;
  3. **shared weights** — capture values live in POSIX shared memory
     with a generation counter, so one ``swap_weights`` call rebinds
     every worker atomically (a pointer bump, not N copies);
  4. **fleet control** — version activation and canary splits
     propagate the same way: write once, every worker follows;
  5. **observability** — ``GET /v1/models`` merges per-worker request
     counts and latency percentiles into one fleet view.
"""

import collections
import tempfile
import threading
import time

import numpy as np

import repro
from repro import framework as fw
from repro.framework import ops
from repro.serving import FleetServer, ServingClient, save

N_FEATURES = 4


def export(path, scale, bias):
    """Save y = x @ W + b with W = scale * ones, b = bias * ones."""
    w = fw.Variable(np.full((N_FEATURES, 1), scale, np.float32),
                    name=f"w{scale}")
    b = fw.Variable(np.full((1,), bias, np.float32), name=f"b{scale}")

    @repro.function
    def predict(x):
        return ops.matmul(x, w.value()) + b.value()

    save(predict, path, repro.TensorSpec([None, N_FEATURES], "float32"),
         freeze=False)
    return w.name, b.name


def wait_ready(client):
    for _ in range(200):
        try:
            client.list_models()
            return
        except Exception:  # noqa: BLE001 - workers still booting
            time.sleep(0.05)
    raise AssertionError("fleet never became reachable")


def main():
    # --- 1. export two versions -------------------------------------------
    v1 = tempfile.mkdtemp(prefix="repro-fleet-v1-")
    v2 = tempfile.mkdtemp(prefix="repro-fleet-v2-")
    w_name, b_name = export(v1, scale=1.0, bias=0.0)   # y = sum(x)
    export(v2, scale=2.0, bias=1.0)                    # y = 2 sum(x) + 1

    # --- 2. prefork a two-worker fleet ------------------------------------
    fleet = FleetServer(n_workers=2)
    fleet.register("score", v1)
    fleet.register("score", v2, version="2")

    x = np.ones((N_FEATURES,), np.float32)  # sum(x) = 4

    with fleet:
        client = ServingClient(fleet.url)  # binary wire by default
        wait_ready(client)

        # Both workers answer from the same shared weights.
        values = [float(np.asarray(client.predict("score", [x])
                                   ["outputs"][0]).reshape(()))
                  for _ in range(20)]
        assert set(values) == {4.0}, values

        # --- 3. one swap, every worker ------------------------------------
        client.swap_weights("score", weights={
            w_name: np.full((N_FEATURES, 1), -1.0, np.float32),
            b_name: np.full((1,), 10.0, np.float32),
        })
        swapped = [float(np.asarray(client.predict("score", [x])
                                    ["outputs"][0]).reshape(()))
                   for _ in range(20)]
        assert set(swapped) == {6.0}, swapped  # -4 + 10, never torn
        print("fleet-wide weight swap: 4.0 -> 6.0 on every worker")

        # --- 4. canary, then promote --------------------------------------
        client.set_canary("score", version="2", fraction=0.25)
        drawn = collections.Counter(
            client.predict("score", [x])["version"] for _ in range(100))
        assert set(drawn) == {"1", "2"}, drawn
        print(f"canary at 25%: {drawn['2']}/100 requests went to v2")

        client.swap_weights("score", version="2")
        client.set_canary("score", fraction=0.0)
        assert client.predict("score", [x])["version"] == "2"
        print("promoted version 2 fleet-wide")

        # --- 5. fleet observability ---------------------------------------
        def hammer():
            c = ServingClient(fleet.url, retries=3)
            for _ in range(25):
                c.predict("score", [x])

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        info = client.list_models()
        workers = info["fleet"]["workers"]
        served = sum(w.get("requests", 0) for w in workers)
        generations = info["fleet"]["weight_generations"]

    assert len(workers) == 2
    assert served >= 100
    print(f"{len(workers)} workers served {served} requests "
          f"(weight generations: {generations})")
    print("OK")


if __name__ == "__main__":
    main()
