#!/usr/bin/env python
"""AutoGraph targeting the Lantern backend (paper §8 and §9.1).

1. Stages the paper's recursive ``tree_prod`` into the S-expression IR
   (printing the IR, the Python → S-Expr step of the paper's pipeline)
   and runs the compiled code, gradients included.
2. Trains the TreeLSTM sentiment model on the synthetic treebank with the
   AutoGraph→Lantern pipeline and checks it against the unstaged
   reference.
"""

import numpy as np

from repro import lantern
from repro.datasets import load_treebank_synthetic
from repro.datasets.treebank import EMPTY, Tree


def build_value_tree(depth, rng):
    if depth == 0:
        node = Tree(value=float(rng.uniform(0.5, 1.5)))
        node.left = EMPTY
        node.right = EMPTY
        return node
    return Tree(
        left=build_value_tree(depth - 1, rng),
        right=build_value_tree(depth - 1, rng),
        value=float(rng.uniform(0.5, 1.5)),
    )


def reference_prod(base, tree):
    if tree.is_empty:
        return base
    return (
        reference_prod(base, tree.left)
        * reference_prod(base, tree.right)
        * tree.value
    )


def main():
    # --- Part 1: tree_prod, recursion staged into the IR. -----------------
    compiled, program, _ = lantern.stage_tree_prod()
    print("S-expression IR for tree_prod (paper §8):")
    print(program.to_string())
    print()

    rng = np.random.default_rng(0)
    tree = build_value_tree(4, rng)
    staged = compiled.run("tree_prod", 2.0, tree)
    reference = reference_prod(2.0, tree)
    print(f"tree_prod(2.0, tree): staged={staged:.6f} reference={reference:.6f}")
    assert abs(staged - reference) < 1e-9

    # Gradient through the recursion (the CPS backward of the paper's
    # generated C++).
    value, bwd = compiled.namespace["tree_prod"](2.0, tree)[0], \
        compiled.namespace["tree_prod"](2.0, tree)[-1]
    d_base, _ = bwd(1.0)
    eps = 1e-6
    numeric = (reference_prod(2.0 + eps, tree) - reference_prod(2.0 - eps, tree)) / (2 * eps)
    print(f"d(tree_prod)/d(base): cps={d_base:.6f} numeric={numeric:.6f}")

    # --- Part 2: TreeLSTM sentiment training (Table 3 workload). ------------
    trees = load_treebank_synthetic(num_trees=30, embed_dim=32, seed=1)
    model = lantern.LanternTreeLSTM(hidden_dim=32, num_classes=5)
    model.compile()

    staged_loss = model.loss(trees[0])
    ref_loss = model.eager_reference_loss(trees[0])
    print(f"\nTreeLSTM first-tree loss: staged={staged_loss:.6f} "
          f"reference={ref_loss:.6f}")
    assert abs(staged_loss - ref_loss) < 1e-4

    losses = []
    for epoch in range(3):
        total = 0.0
        for tree in trees:
            total += model.train_step(tree, learning_rate=0.05)
        losses.append(total / len(trees))
        print(f"epoch {epoch}: mean loss {losses[-1]:.4f}")
    assert losses[-1] < losses[0], "training should reduce the loss"
    print("OK: recursive model trained through AutoGraph -> Lantern.")


if __name__ == "__main__":
    main()
