#!/usr/bin/env python
"""Profiling with ``repro.observe``: where did the time go?

Demonstrates:
  1. ``repro.observe.profile()`` — record one block of work into a
     queryable :class:`~repro.observe.Timeline`;
  2. per-step kernel spans from the runtime engine (every executed plan
     step), per-level spans from the level-parallel scheduler, and
     per-block worker spans from the block scheduler;
  3. ``Timeline.top_kernels()`` / ``summary()`` — the textual answer;
  4. ``Timeline.save_chrome_trace()`` — a JSON file that loads straight
     into ``chrome://tracing`` or https://ui.perfetto.dev;
  5. the always-live counters (cache hits, plan-cache traffic) that feed
     ``GET /v1/metrics`` — no profiling session required.
"""

import json
import os
import tempfile

import numpy as np

import repro
import repro.observe as observe
from repro.blocks import BlockArray, BlockGrid
from repro.framework import ops


def main():
    # A blocked "training step": activations arrive block-partitioned,
    # the function is traced once and executed level-parallel.
    def step(x, w):
        h = ops.relu(ops.matmul(x, w))
        return ops.reduce_sum(ops.square(h))

    fn = repro.function(step, num_workers=4)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 48)).astype(np.float32)
    w = rng.normal(size=(48, 16)).astype(np.float32)
    xb = BlockArray.from_dense(x, grid=BlockGrid.regular((64, 48), (16, 16)))

    fn(xb, w)  # warm-up: tracing and plan compilation stay off-profile

    with observe.profile() as timeline:
        for _ in range(10):
            fn(xb, w)

    print(f"recorded {len(timeline)} events, "
          f"{len(timeline.spans)} spans\n")

    print("hottest kernels (total seconds over 10 calls):")
    for name, total, count in timeline.top_kernels(5):
        print(f"  {name:<12} {total * 1e3:8.3f} ms  x{count}")
    assert timeline.top_kernels(5), "expected per-step kernel spans"

    plan_time = timeline.total_time(name="plan.execute")
    level_spans = timeline.query(cat="level")
    block_spans = timeline.query(name="block_task")
    print(f"\nplan.execute total: {plan_time * 1e3:.3f} ms across "
          f"{len(timeline.query(name='plan.execute'))} calls")
    print(f"level spans: {len(level_spans)}, "
          f"block worker spans: {len(block_spans)}")
    assert level_spans and block_spans

    # Counter deltas for the profiled block: cache hits, no retraces.
    print("\ncounters during the block:")
    for name, value in sorted(timeline.counters.items()):
        print(f"  {name} = {value}")
    assert timeline.counters.get("function.cache_hits", 0) >= 10

    # Self time: subtracts nested child spans, so a parent that merely
    # waits on its children ranks low.
    roots = [(s, self_s) for s, self_s in timeline.self_times()
             if s.cat == "plan"]
    print(f"\nplan-span self time (orchestration overhead): "
          f"{sum(self_s for _, self_s in roots) * 1e3:.3f} ms")

    # Chrome trace export: load this file in chrome://tracing/Perfetto.
    path = os.path.join(tempfile.mkdtemp(), "profile_trace.json")
    timeline.save_chrome_trace(path)
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    print(f"\nwrote {path}: {len(doc['traceEvents'])} trace events")
    assert doc["displayTimeUnit"] == "ms"

    print("\nOK")


if __name__ == "__main__":
    main()
