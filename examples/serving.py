#!/usr/bin/env python
"""Serving: train a model, export it, serve it, hot-swap its weights.

The full deployment story built on the backend-neutral ``Executable``
protocol:

  1. **train** — a ``@repro.function``-traced gradient-descent step
     updates ``Variable`` weights.  The weights are *captures* — runtime
     inputs of the compiled plan — so every optimizer step is visible to
     the next traced call with zero retraces;
  2. **export** — the same inference function exports two ways:
     ``freeze=True`` bakes the weights into a self-contained artifact,
     ``freeze=False`` ships the graph plus a separate named weight
     checkpoint;
  3. **load** — artifacts rehydrate into ``Executable``s without
     retracing (and without the training code);
  4. **serve** — ``repro.serving.ModelServer`` exposes them over HTTP
     (binary tensor wire with JSON fallback), coalescing concurrent
     requests into micro-batches;
  5. **clients** — ``ServingClient`` threads hit the server
     concurrently and the batch statistics show the coalescing at work;
  6. **hot-swap** — ``client.swap_weights(...)`` replaces the served
     weights (and flips between registered versions) live, under
     traffic, without a restart or a retrace.

For the multi-process version of steps 4-6 — one socket, N worker
processes, shared-memory weight swaps — see ``fleet_serving.py``.
"""

import tempfile
import threading

import numpy as np

import repro
from repro import framework as fw
from repro.framework import ops
from repro.serving import ModelServer, ServingClient, load, save

RNG = np.random.default_rng(7)
N_FEATURES = 4

# Ground truth the model should recover: y = x @ w_true + b_true.
W_TRUE = RNG.normal(size=(N_FEATURES, 1)).astype(np.float32)
B_TRUE = np.float32(0.5)


def main():
    # --- 1. train ---------------------------------------------------------
    w = fw.Variable(np.zeros((N_FEATURES, 1), np.float32), name="w")
    b = fw.Variable(np.zeros((), np.float32), name="b")

    @repro.function
    def train_step(x, y):
        err = ops.matmul(x, w.value()) + b.value() - y
        loss = ops.reduce_mean(err * err)
        dw, db = fw.gradients(loss, [w.value(), b.value()])
        w.assign_sub(ops.multiply(dw, 0.1))
        b.assign_sub(ops.multiply(db, 0.1))
        return loss

    for step in range(200):
        x = RNG.normal(size=(32, N_FEATURES)).astype(np.float32)
        y = x @ W_TRUE + B_TRUE
        loss = train_step(x, y)
    print(f"trained: final loss {float(loss.numpy()):.6f} "
          f"(traces: {train_step.trace_count})")

    # --- 2. export a pure inference signature -----------------------------
    @repro.function
    def predict(x):
        return ops.matmul(x, w.value()) + b.value()

    path = tempfile.mkdtemp(prefix="repro-saved-")
    save(predict, path, repro.TensorSpec([None, N_FEATURES], "float32"))
    print(f"exported frozen signature to {path}")
    print("cache:", predict.pretty_cache())
    # The training step itself cannot leave the process — it mutates
    # Variables — and the diagnostics say so:
    print("train cache:", train_step.pretty_cache())

    # --- 3. load (no retracing, no Variables needed) ----------------------
    artifact = load(path)
    probe = RNG.normal(size=(1, N_FEATURES)).astype(np.float32)
    want = float((probe @ W_TRUE + B_TRUE)[0, 0])
    got = float(artifact.call_flat([probe]).numpy()[0, 0])
    assert abs(got - want) < 1e-2, (got, want)
    print(f"loaded artifact predicts {got:.4f} (true {want:.4f})")

    # --- 4 + 5. serve it, hit it with concurrent clients ------------------
    server = ModelServer()
    batcher = {"max_batch_size": 8, "batch_timeout": 0.01}
    server.register("regress", artifact, batcher=batcher)
    n_clients, n_requests = 8, 5
    errors = []

    def hit(i):
        rng = np.random.default_rng(100 + i)
        c = ServingClient(server.url)  # binary wire, JSON fallback
        try:
            for _ in range(n_requests):
                x1 = rng.normal(size=(N_FEATURES,)).astype(np.float32)
                reply = c.predict("regress", [x1])
                want = float(x1 @ W_TRUE[:, 0] + B_TRUE)
                got = float(np.asarray(reply["outputs"][0]).reshape(()))
                assert abs(got - want) < 1e-2, (got, want)
        except Exception as e:  # noqa: BLE001
            errors.append(e)

    # --- 6. hot-swap: a second version + live weight replacement ----------
    swap_path = tempfile.mkdtemp(prefix="repro-saved-v2-")
    save(predict, swap_path, repro.TensorSpec([None, N_FEATURES], "float32"),
         freeze=False)  # graph + named weight checkpoint, not frozen
    server.register("regress", load(swap_path), version="2",
                    batcher=batcher)

    with server:
        client = ServingClient(server.url)
        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        v1_stats = client.list_models()["models"]["regress"]
        v1_batches = v1_stats["batch_stats"]
        assert v1_batches["requests"] == n_clients * n_requests

        # Activate version 2 (a pointer swap: zero retraces), then push
        # doubled weights into it while the server keeps running.  The
        # binary wire carries the ndarrays as raw buffers.
        client.swap_weights("regress", version="2")
        reply = client.swap_weights(
            "regress",
            weights={"w": 2.0 * W_TRUE, "b": np.float32(2.0 * B_TRUE)})
        probe2 = np.ones(N_FEATURES, np.float32)
        doubled = client.predict("regress", [probe2])
        want2 = 2.0 * float(probe2 @ W_TRUE[:, 0] + B_TRUE)
        got2 = float(np.asarray(doubled["outputs"][0]).reshape(()))
        assert abs(got2 - want2) < 2e-2, (got2, want2)
        assert doubled["version"] == "2"
        print(f"hot-swapped to version {reply['active_version']} with "
              f"weights {reply['swapped']}: predicts {got2:.4f} "
              f"(want {want2:.4f})")

        stats = client.list_models()["models"]["regress"]
    assert not errors, errors
    latency = stats["latency"]
    print(f"served {stats['requests']} requests "
          f"(p50 {latency['p50_ms']}ms, p99 {latency['p99_ms']}ms) "
          f"across versions {stats['versions']}")
    print(f"version-1 batching: {v1_batches['requests']} requests in "
          f"{v1_batches['batches']} batches "
          f"(largest batch: {v1_batches['max_batch_size']})")
    print("OK")


if __name__ == "__main__":
    main()
