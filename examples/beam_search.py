#!/usr/bin/env python
"""Beam search with early exit (paper Appendix D.1).

Runs the same imperative beam-search code three ways — plain NumPy-eager,
eager tensors, and AutoGraph-staged — and checks they produce identical
beams.  The early ``while ... and not done`` exit is data-dependent
control flow that tracing-based systems cannot capture (paper §2's ONNX
discussion) but AutoGraph stages exactly.
"""

import numpy as np

import repro.autograph as ag
from repro import framework as fw
from repro.apps.beam_search import beam_search, make_model
from repro.framework import ops


def main():
    vocab, hidden, beam, max_len = 50, 32, 4, 24
    model = make_model(vocab, hidden, seed=5)

    # Eager (define-by-run).
    scores_e, tokens_e, len_e = beam_search(
        ops.constant(model.embeddings), ops.constant(model.w_xh),
        ops.constant(model.w_hh), ops.constant(model.w_out),
        beam, max_len, vocab,
    )
    print("eager:   scores", np.round(np.asarray(scores_e), 3),
          "steps:", int(len_e))

    # AutoGraph staged.
    converted = ag.to_graph(beam_search)
    g = fw.Graph()
    with g.as_default():
        scores_t, tokens_t, len_t = converted(
            ops.constant(model.embeddings), ops.constant(model.w_xh),
            ops.constant(model.w_hh), ops.constant(model.w_out),
            beam, max_len, vocab,
        )
    sess = fw.Session(g)
    scores_s, tokens_s, len_s = sess.run((scores_t, tokens_t, len_t))
    print("staged:  scores", np.round(scores_s, 3), "steps:", int(len_s))

    assert np.allclose(np.asarray(scores_e), scores_s, atol=1e-5)
    assert np.array_equal(np.asarray(tokens_e), tokens_s)
    assert int(len_e) == int(len_s)
    print(f"OK: staged beam search matches eager; early exit after "
          f"{int(len_s)}/{max_len} steps ran inside the graph.")


if __name__ == "__main__":
    main()
