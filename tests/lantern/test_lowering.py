"""Graph→Lantern lowering, new IR ops, and S-expression round-tripping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lantern
from repro.framework.graph.graph import Graph
from repro.lantern import compiler, ir, ops as lt, sexpr
from repro.lantern.lowering import (
    GRAPH_TO_LANTERN,
    LanternLoweringError,
    lower_graph,
)

# ---------------------------------------------------------------------------
# S-expression round-tripping (parse ∘ format == identity)
# ---------------------------------------------------------------------------

_atoms = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6).map(
        # repr/parse round-trips floats; integers-as-floats parse back
        # as ints, so keep a fractional part.
        lambda f: f + 0.5),
    st.text(alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F),
        min_size=0, max_size=8),
    st.text(alphabet="abcdefgxyz_-+*/?.", min_size=1, max_size=10).filter(
        lambda s: not _parses_numeric(s)).map(sexpr.Sym),
)


def _parses_numeric(token):
    for cast in (int, float):
        try:
            cast(token)
            return True
        except ValueError:
            pass
    return False


_sexprs = st.recursive(
    _atoms, lambda children: st.tuples(children, children, children),
    max_leaves=20)


class TestSexprRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_sexprs)
    def test_parse_format_roundtrip(self, expr):
        assert sexpr.parse_sexpr(sexpr.format_sexpr(expr)) == expr

    def test_roundtrip_real_program(self):
        _, program, _ = lantern.stage_tree_prod()
        text = program.to_string()
        assert sexpr.format_sexpr(sexpr.parse_sexpr(text)) == text

    def test_escaped_strings_roundtrip(self):
        expr = (sexpr.Sym("f"), 'say "hi"', 1, 2.5)
        assert sexpr.parse_sexpr(sexpr.format_sexpr(expr)) == expr


# ---------------------------------------------------------------------------
# New IR primitives: forward + CPS adjoints
# ---------------------------------------------------------------------------


class TestNewOps:
    @pytest.mark.parametrize("name,fn,np_fn", [
        ("sqrt", lt.sqrt, np.sqrt),
        ("square", lt.square, np.square),
        ("abs", lt.abs_, np.abs),
        ("mean", lt.mean, np.mean),
    ])
    def test_numpy_mode(self, name, fn, np_fn):
        x = np.asarray([[1.0, 4.0]], np.float32)
        assert np.allclose(fn(x), np_fn(x))

    def test_transpose_and_maximum_numpy(self):
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        assert lt.transpose(x).shape == (3, 2)
        assert np.allclose(lt.maximum(x, 3.0), np.maximum(x, 3.0))

    @pytest.mark.parametrize("op,np_ref,dref", [
        ("sqrt", np.sqrt, lambda x: 0.5 / np.sqrt(x)),
        ("square", np.square, lambda x: 2.0 * x),
        ("abs", np.abs, np.sign),
        ("mean", np.mean, lambda x: np.ones_like(x) / x.size),
        ("sum", np.sum, np.ones_like),
    ])
    def test_adjoints_match_analytic(self, op, np_ref, dref):
        program = ir.Program()
        b = ir.Builder(program)
        fdef = ir.FunctionDef("f", ["x"], ["tensor"], 1)
        program.functions["f"] = fdef
        b.push_block(fdef.block)
        out = b.emit(op, ir.StagedTensor("x", b))
        fdef.block.result_syms = (out.sym,)
        b.pop_block()
        compiled = compiler.compile_program(program)
        x = np.asarray([[0.7, 2.3]], np.float32)
        value, bwd = compiled.namespace["f"](x)
        assert np.allclose(value, np_ref(x), atol=1e-6)
        (dx,) = bwd(1.0)
        assert np.allclose(dx, dref(x), atol=1e-5)


# ---------------------------------------------------------------------------
# lower_graph: graph IR -> lantern IR
# ---------------------------------------------------------------------------


def _build_graph(build):
    g = Graph("t")
    with g.as_default():
        out = build(g)
    return g, out


class TestLowerGraph:
    def test_arith_chain_matches_session_semantics(self):
        g = Graph("t")
        with g.as_default():
            a = g.placeholder("float32", (), name="a")
            two = g.constant(2.0)
            prod = g.create_op("Mul", [a, two], {}).outputs[0]
            out = g.create_op("Tanh", [prod], {}).outputs[0]
        program, fdef, _ = lower_graph(g, [a], [out], name="f")
        compiled = compiler.compile_program(program)
        value, bwd = compiled.namespace["f"](0.5)
        assert np.isclose(value, np.tanh(1.0))
        (da,) = bwd(1.0)
        assert np.isclose(da, 2.0 * (1.0 - np.tanh(1.0) ** 2))

    def test_matmul_transpose_attrs(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 2)).astype(np.float32)
        w = rng.normal(size=(3, 4)).astype(np.float32)
        g = Graph("t")
        with g.as_default():
            pa = g.placeholder("float32", (3, 2), name="x")
            pb = g.placeholder("float32", (3, 4), name="w")
            out = g.create_op(
                "MatMul", [pa, pb], {"transpose_a": True}).outputs[0]
        program, _, _ = lower_graph(g, [pa, pb], [out], name="f")
        compiled = compiler.compile_program(program, with_grad=False)
        got = compiled.run("f", x, w)
        assert np.allclose(got, x.T @ w, atol=1e-6)

    def test_identity_passthrough(self):
        g = Graph("t")
        with g.as_default():
            a = g.placeholder("float32", (), name="a")
            ident = g.create_op("Identity", [a], {}).outputs[0]
            out = g.create_op("Neg", [ident], {}).outputs[0]
        program, _, _ = lower_graph(g, [a], [out], name="f")
        compiled = compiler.compile_program(program, with_grad=False)
        assert compiled.run("f", 3.0) == -3.0

    def test_unsupported_op_raises(self):
        g = Graph("t")
        with g.as_default():
            a = g.placeholder("float32", (), name="a")
            out = g.create_op("Floor", [a], {}).outputs[0]
        with pytest.raises(LanternLoweringError, match="Floor"):
            lower_graph(g, [a], [out], name="f")

    def test_axis_reductions_lower(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3)).astype(np.float32)
        for op_type, np_fn in (("Sum", np.sum), ("Mean", np.mean)):
            for axis in (0, 1):
                g = Graph("t")
                with g.as_default():
                    a = g.placeholder("float32", (2, 3), name="a")
                    out = g.create_op(op_type, [a], {"axis": axis}).outputs[0]
                program, fdef, _ = lower_graph(g, [a], [out], name="f")
                compiled = compiler.compile_program(program, with_grad=False)
                np.testing.assert_allclose(
                    compiled.run("f", x), np_fn(x, axis=axis), rtol=1e-6)

    def test_keepdims_reductions_lower(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 3)).astype(np.float32)
        for op_type, np_fn in (("Sum", np.sum), ("Mean", np.mean)):
            for axis in (None, 0, 1):
                g = Graph("t")
                with g.as_default():
                    a = g.placeholder("float32", (2, 3), name="a")
                    out = g.create_op(
                        op_type, [a],
                        {"axis": axis, "keepdims": True}).outputs[0]
                program, _, _ = lower_graph(g, [a], [out], name="f")
                compiled = compiler.compile_program(program, with_grad=False)
                np.testing.assert_allclose(
                    compiled.run("f", x),
                    np_fn(x, axis=axis, keepdims=True), rtol=1e-6)

    def test_negative_axis_reductions_lower(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 3)).astype(np.float32)
        for axis in (-1, -2):
            for keepdims in (False, True):
                g = Graph("t")
                with g.as_default():
                    a = g.placeholder("float32", (2, 3), name="a")
                    out = g.create_op(
                        "Sum", [a],
                        {"axis": axis, "keepdims": keepdims}).outputs[0]
                program, _, _ = lower_graph(g, [a], [out], name="f")
                compiled = compiler.compile_program(program, with_grad=False)
                np.testing.assert_allclose(
                    compiled.run("f", x),
                    np.sum(x, axis=axis, keepdims=keepdims), rtol=1e-6)

    def test_negative_axis_without_rank_refused(self):
        g = Graph("t")
        with g.as_default():
            a = g.placeholder("float32", None, name="a")  # unknown rank
            out = g.create_op("Sum", [a], {"axis": -1}).outputs[0]
        with pytest.raises(LanternLoweringError, match="rank"):
            lower_graph(g, [a], [out], name="f")

    def test_keepdims_reduction_adjoints(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 3)).astype(np.float32)
        for op_type in ("Sum", "Mean"):
            for axis in (None, 0, 1):
                g = Graph("t")
                with g.as_default():
                    a = g.placeholder("float32", (2, 3), name="a")
                    red = g.create_op(
                        op_type, [a],
                        {"axis": axis, "keepdims": True}).outputs[0]
                    out = g.create_op("Sum", [red], {}).outputs[0]
                program, _, _ = lower_graph(g, [a], [out], name="f")
                compiled = compiler.compile_program(program, with_grad=True)
                res, bwd = compiled.namespace["f"](x)
                (dx,) = bwd(1.0)
                # d(sum of reduction)/dx: ones for Sum, 1/n along the
                # reduced axis (or 1/size overall) for Mean.
                if op_type == "Sum":
                    expect = np.ones_like(x)
                elif axis is None:
                    expect = np.ones_like(x) / x.size
                else:
                    expect = np.ones_like(x) / x.shape[axis]
                np.testing.assert_allclose(
                    np.broadcast_to(dx, x.shape), expect, rtol=1e-6)

    def test_error_is_execution_error(self):
        from repro.framework.errors import ExecutionError

        assert issubclass(LanternLoweringError, ExecutionError)

    def test_mapping_targets_exist(self):
        for lantern_op in GRAPH_TO_LANTERN.values():
            assert lantern_op in ir.OPS


class TestProgramParams:
    def test_builder_registers_params(self):
        program = ir.Program()
        b = ir.Builder(program)
        fdef = ir.FunctionDef("f", ["x"], ["tensor"], 1)
        program.functions["f"] = fdef
        p = ir.Param("w", np.ones((1, 2), np.float32))
        b.push_block(fdef.block)
        out = b.as_staged(ir.StagedTensor("x", b) + p)
        fdef.block.result_syms = (out.sym,)
        b.pop_block()
        assert program.params == {"w": p}
        compiled = compiler.compile_program(program, with_grad=False)
        got = compiled.run("f", np.zeros((1, 2), np.float32))
        assert np.allclose(got, p.value)

    def test_duplicate_param_names_rejected(self):
        program = ir.Program()
        b = ir.Builder(program)
        b.push_block(ir.Block())
        b.as_staged(ir.Param("w", np.ones(1)))
        with pytest.raises(ValueError, match="unique"):
            b.as_staged(ir.Param("w", np.zeros(1)))
