"""Unit tests: the Lantern backend (§8) — S-expressions, IR, staging,
compilation and CPS gradients."""

import numpy as np
import pytest

from repro import lantern
from repro.datasets.treebank import EMPTY, Tree
from repro.lantern import compiler, ir, ops as lt, sexpr


class TestSexpr:
    def test_format_atoms(self):
        assert sexpr.format_sexpr(sexpr.Sym("abc")) == "abc"
        assert sexpr.format_sexpr(1.5) == "1.5"
        assert sexpr.format_sexpr("hi") == '"hi"'

    def test_format_nested(self):
        expr = (sexpr.Sym("add"), sexpr.Sym("x"), 1)
        assert sexpr.format_sexpr(expr) == "(add x 1)"

    def test_parse_roundtrip(self):
        text = "(def f (a b) (block (let x1 (mul a b)) (result x1)))"
        parsed = sexpr.parse_sexpr(text)
        assert sexpr.format_sexpr(parsed) == text

    def test_parse_numbers_and_strings(self):
        parsed = sexpr.parse_sexpr('(f 1 2.5 "s")')
        assert parsed[1] == 1
        assert parsed[2] == 2.5
        assert parsed[3] == "s"

    def test_parse_unbalanced_raises(self):
        with pytest.raises(ValueError):
            sexpr.parse_sexpr("(a (b)")

    def test_parse_trailing_raises(self):
        with pytest.raises(ValueError):
            sexpr.parse_sexpr("(a) b")


class TestIR:
    def _builder(self):
        program = ir.Program()
        b = ir.Builder(program)
        block = ir.Block()
        b.push_block(block)
        return program, b, block

    def test_emit_op(self):
        _, b, block = self._builder()
        x = b.as_staged(1.0)
        y = b.emit("tanh", x)
        assert isinstance(y, ir.StagedTensor)
        assert block.instructions[-1][0] == "op"

    def test_operator_overloads_emit(self):
        _, b, block = self._builder()
        x = b.as_staged(2.0)
        y = x * x + 1.0
        kinds = [i[2] for i in block.instructions if i[0] == "op"]
        assert "mul" in kinds and "add" in kinds

    def test_param_emission(self):
        _, b, block = self._builder()
        p = ir.Param("w", np.ones((2, 2)))
        staged = b.as_staged(p)
        assert block.instructions[-1] == ("param", staged.sym, "w")

    def test_tree_fields_typed(self):
        _, b, block = self._builder()
        t = ir.StagedTree("t0", b)
        assert isinstance(t.left, ir.StagedTree)
        assert isinstance(t.is_empty, ir.StagedBool)
        assert isinstance(t.value, ir.StagedTensor)

    def test_tree_unknown_field_raises(self):
        _, b, _ = self._builder()
        t = ir.StagedTree("t0", b)
        with pytest.raises(AttributeError):
            t.nonsense

    def test_staged_bool_raises(self):
        _, b, _ = self._builder()
        t = ir.StagedTree("t0", b)
        with pytest.raises(TypeError, match="AutoGraph"):
            bool(t.is_empty)

    def test_if_branch_count_mismatch(self):
        _, b, _ = self._builder()
        cond = ir.StagedBool("c", b)
        with pytest.raises(ValueError, match="same number"):
            b.emit_if(cond, lambda: (b.as_staged(1.0), b.as_staged(2.0)),
                      lambda: (b.as_staged(1.0),), 2)

    def test_program_sexpr_renders(self):
        program = ir.Program()
        b = ir.Builder(program)
        fdef = ir.FunctionDef("f", ["a"], ["tensor"], 1)
        program.functions["f"] = fdef
        b.push_block(fdef.block)
        out = b.as_staged(1.0) * 2.0
        fdef.block.result_syms = (out.sym,)
        b.pop_block()
        text = program.to_string()
        assert "(def" in text and "(mul" in text


class TestLanternOps:
    def test_numpy_fallback(self):
        assert np.isclose(lt.tanh(np.float32(0.5)), np.tanh(0.5))
        out = lt.matmul(np.ones((1, 2), np.float32), np.ones((2, 3), np.float32))
        assert out.shape == (1, 3)

    def test_xent_numpy(self):
        logits = np.array([[1.0, 2.0, 3.0]], np.float32)
        loss = lt.xent(logits, 2)
        probs = np.exp(logits - logits.max())
        probs /= probs.sum()
        assert np.isclose(loss, -np.log(probs[0, 2]), atol=1e-6)

    def test_param_unwrapped(self):
        p = lantern.Param("p", np.ones((1, 2)))
        out = lt.concat1(p, np.zeros((1, 2), np.float32))
        assert out.shape == (1, 4)


def _full_tree(depth, rng):
    if depth == 0:
        node = Tree(value=float(rng.uniform(0.5, 1.5)))
        node.left = EMPTY
        node.right = EMPTY
        return node
    return Tree(left=_full_tree(depth - 1, rng),
                right=_full_tree(depth - 1, rng),
                value=float(rng.uniform(0.5, 1.5)))


def _ref_prod(base, tree):
    if tree.is_empty:
        return base
    return _ref_prod(base, tree.left) * _ref_prod(base, tree.right) * tree.value


class TestTreeProd:
    def test_staged_value_matches_reference(self):
        compiled, program, _ = lantern.stage_tree_prod()
        rng = np.random.default_rng(1)
        for depth in (0, 1, 3):
            tree = _full_tree(depth, rng)
            assert np.isclose(compiled.run("tree_prod", 1.3, tree),
                              _ref_prod(1.3, tree))

    def test_recursion_in_ir(self):
        _, program, _ = lantern.stage_tree_prod()
        assert "(call tree_prod" in program.to_string()

    def test_cps_gradient_matches_numeric(self):
        compiled, _, _ = lantern.stage_tree_prod()
        rng = np.random.default_rng(2)
        tree = _full_tree(4, rng)
        _, bwd = compiled.namespace["tree_prod"](1.1, tree)
        d_base, _ = bwd(1.0)
        eps = 1e-6
        numeric = (_ref_prod(1.1 + eps, tree) - _ref_prod(1.1 - eps, tree)) / (2 * eps)
        assert np.isclose(d_base, numeric, rtol=1e-4)

    def test_forward_only_compile(self):
        stager = lantern.Stager()
        with stager.active():
            stager.def_staged(lantern.tree_prod, ["tensor", "tree"], 1)
        compiled = compiler.compile_program(stager.program, with_grad=False)
        tree = _full_tree(2, np.random.default_rng(0))
        assert np.isclose(compiled.run("tree_prod", 2.0, tree),
                          _ref_prod(2.0, tree))

    def test_generated_source_is_python(self):
        compiled, _, _ = lantern.stage_tree_prod()
        import ast

        ast.parse(compiled.source)
        assert "def tree_prod(" in compiled.source
        assert "def _bwd(" in compiled.source  # the continuation


class TestTreeLSTM:
    def _model_and_tree(self, hidden=12):
        from repro.datasets import load_treebank_synthetic

        trees = load_treebank_synthetic(num_trees=3, embed_dim=hidden, seed=3)
        model = lantern.LanternTreeLSTM(hidden_dim=hidden, num_classes=5)
        model.compile()
        return model, trees

    def test_staged_matches_unstaged(self):
        model, trees = self._model_and_tree()
        for tree in trees:
            assert np.isclose(model.loss(tree),
                              model.eager_reference_loss(tree), atol=1e-5)

    def test_param_gradients_numeric(self):
        model, trees = self._model_and_tree(hidden=6)
        tree = trees[0]
        model.compiled.zero_grads()
        model.compiled.run_with_grad("tree_loss", tree, tree.label)
        grads = model.compiled.grads()
        values = model.compiled.namespace["_P"]

        # Spot-check two parameters numerically.
        for pname in ("w_out", "w_i"):
            g = grads[pname]
            idx = np.unravel_index(np.argmax(np.abs(g)), g.shape)
            eps = 1e-3
            orig = values[pname][idx]
            values[pname][idx] = orig + eps
            up = model.eager_reference_loss(tree)
            values[pname][idx] = orig - eps
            down = model.eager_reference_loss(tree)
            values[pname][idx] = orig
            numeric = (up - down) / (2 * eps)
            assert np.isclose(g[idx], numeric, rtol=5e-2, atol=1e-4), pname

    def test_training_reduces_loss(self):
        model, trees = self._model_and_tree()
        first = np.mean([model.train_step(t) for t in trees])
        for _ in range(4):
            last = np.mean([model.train_step(t) for t in trees])
        assert last < first

    def test_loops_unsupported_message(self):
        stager = lantern.Stager()
        with pytest.raises(NotImplementedError, match="recursion"):
            stager.while_stmt(None, None, (), (), {})
