"""Property-based tests (hypothesis) on framework invariants.

Core invariant: for any program over the public ops, eager execution and
graph execution compute identical values — the modes differ only in
*when* the work happens, never in *what* is computed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import framework as fw
from repro.framework import nest, ops, shapes

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


small_floats = st.floats(min_value=-10, max_value=10, allow_nan=False,
                         width=32)


@st.composite
def float_vectors(draw, max_len=6):
    n = draw(st.integers(min_value=1, max_value=max_len))
    return np.asarray(draw(st.lists(small_floats, min_size=n, max_size=n)),
                      np.float32)


# Elementary op expressions, as (builder, n_args) pairs.
_EXPRS = [
    (lambda a, b: ops.add(a, b), 2),
    (lambda a, b: ops.subtract(a, b), 2),
    (lambda a, b: ops.multiply(a, b), 2),
    (lambda a, b: ops.maximum(a, b), 2),
    (lambda a, b: ops.minimum(a, b), 2),
    (lambda a, b: ops.where(ops.greater(a, b), a, b), 2),
    (lambda a: ops.tanh(a), 1),
    (lambda a: ops.relu(a), 1),
    (lambda a: ops.square(a), 1),
    (lambda a: ops.reduce_sum(a), 1),
    (lambda a: ops.reduce_mean(a), 1),
    (lambda a: ops.softmax(a), 1),
]


@given(data=st.data(), expr_index=st.integers(0, len(_EXPRS) - 1))
def test_eager_graph_equivalence(data, expr_index):
    builder, n_args = _EXPRS[expr_index]
    vec = data.draw(float_vectors())
    other = data.draw(st.lists(small_floats, min_size=len(vec),
                               max_size=len(vec)))
    args = [vec, np.asarray(other, np.float32)][:n_args]

    eager = builder(*[ops.constant(a) for a in args])
    g = fw.Graph()
    with g.as_default():
        staged = builder(*[ops.constant(a) for a in args])
    staged_val = fw.Session(g).run(staged)
    assert np.allclose(np.asarray(eager), staged_val, rtol=1e-5, atol=1e-6)


@given(vec=float_vectors())
def test_while_loop_matches_python_loop(vec):
    """A staged accumulation loop equals the plain Python loop."""
    n = len(vec)
    expected = np.float32(0.0)
    for v in vec:
        expected = np.float32(expected + v)

    g = fw.Graph()
    with g.as_default():
        x = ops.constant(vec)

        def body(i, acc):
            return ops.add(i, 1), ops.add(acc, ops.get_item(x, i))

        _, total = fw.while_loop(lambda i, acc: ops.less(i, n), body,
                                 (ops.constant(0), ops.constant(0.0)))
    got = fw.Session(g).run(total)
    assert np.allclose(got, vec.sum(), rtol=1e-4, atol=1e-4)


@given(a=st.lists(st.integers(1, 5), min_size=1, max_size=3),
       b=st.lists(st.integers(1, 5), min_size=1, max_size=3))
def test_broadcast_shape_matches_numpy(a, b):
    try:
        expected = np.broadcast_shapes(tuple(a), tuple(b))
        ours = shapes.broadcast_shapes(a, b)
        assert tuple(ours.as_list()) == expected
    except ValueError:
        import pytest

        with pytest.raises(ValueError):
            shapes.broadcast_shapes(a, b)


@given(vec=float_vectors(), seed_grad=small_floats)
def test_unbroadcast_grad_shape_invariant(vec, seed_grad):
    """Gradients always match the shape of what they differentiate."""
    from repro.framework import GradientTape

    bias = ops.constant(np.float32(1.5))
    x = ops.constant(vec)
    with GradientTape() as tape:
        tape.watch(bias)
        tape.watch(x)
        y = ops.reduce_sum(ops.add(x, bias))
    gb, gx = tape.gradient(y, [bias, x])
    assert np.shape(gb.numpy()) == ()
    assert gx.numpy().shape == vec.shape
    assert np.isclose(float(gb), len(vec))


@given(structure=st.recursive(
    st.integers(0, 10),
    lambda children: st.lists(children, min_size=1, max_size=3) |
    st.dictionaries(st.sampled_from("abcd"), children, min_size=1, max_size=3),
    max_leaves=8,
))
def test_nest_flatten_pack_roundtrip(structure):
    flat = nest.flatten(structure)
    assert nest.pack_sequence_as(structure, flat) == structure


@given(vals=st.lists(small_floats, min_size=1, max_size=5))
def test_tensor_array_stack_roundtrip(vals):
    ta = fw.TensorArray(fw.float32, size=0)
    for i, v in enumerate(vals):
        ta = ta.write(i, ops.constant(np.float32(v)))
    stacked = np.asarray(ta.stack())
    assert np.allclose(stacked, np.asarray(vals, np.float32))


@given(vec=float_vectors(), k=st.integers(1, 3))
def test_top_k_agrees_with_numpy(vec, k):
    if k > len(vec):
        k = len(vec)
    values, indices = ops.top_k(ops.constant(vec), k)
    expected = np.sort(vec)[::-1][:k]
    assert np.allclose(np.asarray(values), expected)
    # Indices point at the right values.
    assert np.allclose(vec[np.asarray(indices)], np.asarray(values))
