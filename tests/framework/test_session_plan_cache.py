"""Regression tests: Session plan-cache keys must survive id() recycling.

The cache keys plans by ``id()`` of the fetch/feed tensors.  CPython
recycles ids aggressively once an object is garbage collected, so a key
that outlives its tensors could serve a stale plan compiled for a
*different* tensor.  The fix: every cache entry holds strong references
to its fetches and feed keys, making id reuse impossible while the entry
is alive.
"""

import gc

import numpy as np
import pytest

from repro import framework as fw
from repro.framework import ops


def test_plan_cache_holds_strong_references():
    g = fw.Graph()
    with g.as_default():
        x = ops.placeholder(fw.float32, [])
        y = ops.multiply(x, 2.0)
    sess = fw.Session(g)
    assert sess.run(y, {x: 3.0}) == 6.0

    entries = list(sess._plan_cache.values())
    assert len(entries) == 1
    fetch_refs, feed_refs = entries[0].refs
    assert any(t is y for t in fetch_refs)
    assert any(t is x for t in feed_refs)


def test_dead_fetch_id_cannot_alias_new_tensor():
    g = fw.Graph()
    with g.as_default():
        a = ops.constant(2.0)
        y = ops.multiply(a, 3.0)
    sess = fw.Session(g)
    assert sess.run(y) == 6.0

    # Drop every Python reference to the fetched tensor and collect. If
    # the cache did not hold a strong reference, a tensor allocated now
    # could reuse id(y) and silently hit y's compiled plan.
    del y
    gc.collect()

    g2 = fw.Graph()
    with g2.as_default():
        z = ops.multiply(ops.constant(10.0), 10.0)
    # Foreign-graph fetches must be rejected, never served a stale plan.
    with pytest.raises(fw.FetchError):
        sess.run(z)

    # The original plan still works via the cache's own strong reference.
    (kept_fetches, _) = list(sess._plan_cache.values())[0].refs
    assert sess.run(kept_fetches[0]) == 6.0


def test_distinct_fetches_get_distinct_plans():
    g = fw.Graph()
    with g.as_default():
        a = ops.constant(1.0)
        y1 = ops.add(a, 1.0)
        y2 = ops.add(a, 2.0)
    sess = fw.Session(g)
    assert sess.run(y1) == 2.0
    assert sess.run(y2) == 3.0
    assert len(sess._plan_cache) == 2


def test_feed_keys_kept_alive_per_entry():
    g = fw.Graph()
    with g.as_default():
        x = ops.placeholder(fw.float32, [2])
        y = ops.reduce_sum(x)
    sess = fw.Session(g)
    assert sess.run(y, {x: [1.0, 2.0]}) == 3.0
    (_, feed_refs) = list(sess._plan_cache.values())[0].refs
    assert feed_refs == (x,)
