"""Unit tests: graph cond/while_loop, capture, TensorArray, staging errors."""

import numpy as np
import pytest

from repro import framework as fw
from repro.framework import TensorArray, ops
from repro.framework.errors import StagingError


def _run(graph, fetches, feeds=None):
    return fw.Session(graph).run(fetches, feeds or {})


class TestCond:
    def test_branch_selection(self):
        g = fw.Graph()
        with g.as_default():
            p = ops.placeholder(fw.float32, [])
            out = fw.cond(ops.greater(p, 0.0), lambda: p * 2.0, lambda: p - 1.0)
        sess = fw.Session(g)
        assert sess.run(out, {p: 3.0}) == 6.0
        assert sess.run(out, {p: -3.0}) == -4.0

    def test_only_taken_branch_executes(self):
        g = fw.Graph()
        with g.as_default():
            p = ops.placeholder(fw.bool_, [])
            # The false branch fails at *run* time if executed (both
            # branches are traced, but only the taken one runs).
            out = fw.cond(
                p,
                lambda: ops.constant(1.0),
                lambda: ops.multiply(
                    ops.constant(0.0),
                    ops.cast(ops.assert_op(ops.constant(False)), "float32"),
                ),
            )
        sess = fw.Session(g)
        assert sess.run(out, {p: True}) == 1.0
        with pytest.raises(fw.ExecutionError):
            sess.run(out, {p: False})

    def test_capture_of_outer_tensor(self):
        g = fw.Graph()
        with g.as_default():
            x = ops.constant([1.0, 2.0])
            out = fw.cond(ops.constant(True), lambda: x * 2.0, lambda: x)
        assert np.allclose(_run(g, out), [2.0, 4.0])

    def test_structure_mismatch_raises(self):
        g = fw.Graph()
        with g.as_default():
            with pytest.raises(StagingError, match="structure"):
                fw.cond(ops.constant(True),
                        lambda: (ops.constant(1.0), ops.constant(2.0)),
                        lambda: ops.constant(1.0))

    def test_dtype_mismatch_raises(self):
        g = fw.Graph()
        with g.as_default():
            with pytest.raises(StagingError, match="dtype"):
                fw.cond(ops.constant(True),
                        lambda: ops.constant(1.0),
                        lambda: ops.constant(1))

    def test_nested_cond(self):
        g = fw.Graph()
        with g.as_default():
            p = ops.placeholder(fw.int32, [])
            out = fw.cond(
                ops.greater(p, 0),
                lambda: fw.cond(ops.greater(p, 10),
                                lambda: ops.constant(2.0),
                                lambda: ops.constant(1.0)),
                lambda: ops.constant(0.0),
            )
        sess = fw.Session(g)
        assert sess.run(out, {p: 20}) == 2.0
        assert sess.run(out, {p: 5}) == 1.0
        assert sess.run(out, {p: -1}) == 0.0

    def test_multiple_outputs(self):
        g = fw.Graph()
        with g.as_default():
            a, b = fw.cond(ops.constant(False),
                           lambda: (ops.constant(1.0), ops.constant(2.0)),
                           lambda: (ops.constant(3.0), ops.constant(4.0)))
        assert _run(g, (a, b)) == (3.0, 4.0)

    def test_eager_cond_runs_directly(self):
        out = ops.cond(ops.constant(True), lambda: ops.constant(5.0),
                       lambda: ops.constant(1.0))
        assert float(out) == 5.0


class TestWhileLoop:
    def test_counting(self):
        g = fw.Graph()
        with g.as_default():
            i, total = fw.while_loop(
                lambda i, t: ops.less(i, 5),
                lambda i, t: (ops.add(i, 1), ops.add(t, i)),
                (ops.constant(0), ops.constant(0)),
            )
        assert _run(g, (i, total)) == (5, 10)

    def test_zero_iterations(self):
        g = fw.Graph()
        with g.as_default():
            (i,) = fw.while_loop(
                lambda i: ops.less(i, 0), lambda i: (ops.add(i, 1),),
                (ops.constant(10),),
            )
        assert _run(g, i) == 10

    def test_capture(self):
        g = fw.Graph()
        with g.as_default():
            step = ops.placeholder(fw.int32, [])
            (i,) = fw.while_loop(
                lambda i: ops.less(i, 10),
                lambda i: (ops.add(i, step),),
                (ops.constant(0),),
            )
        assert _run(g, i, {step: 3}) == 12

    def test_maximum_iterations(self):
        g = fw.Graph()
        with g.as_default():
            (i,) = fw.while_loop(
                lambda i: ops.constant(True),
                lambda i: (ops.add(i, 1),),
                (ops.constant(0),),
                maximum_iterations=7,
            )
        assert _run(g, i) == 7

    def test_dtype_consistency_enforced(self):
        g = fw.Graph()
        with g.as_default():
            with pytest.raises(StagingError, match="dtype"):
                fw.while_loop(
                    lambda i: ops.less(i, 3),
                    lambda i: (ops.add(ops.cast(i, "float32"), 1.0),),
                    (ops.constant(0),),
                )

    def test_structure_mismatch(self):
        g = fw.Graph()
        with g.as_default():
            with pytest.raises(StagingError, match="structure"):
                fw.while_loop(
                    lambda i, j: ops.less(i, 3),
                    lambda i, j: (ops.add(i, 1),),
                    (ops.constant(0), ops.constant(0)),
                )

    def test_nested_while(self):
        g = fw.Graph()
        with g.as_default():
            def outer_body(i, total):
                def inner_body(j, t):
                    return ops.add(j, 1), ops.add(t, 1)

                _, total = fw.while_loop(
                    lambda j, t: ops.less(j, 3), inner_body,
                    (ops.constant(0), total),
                )
                return ops.add(i, 1), total

            _, total = fw.while_loop(
                lambda i, t: ops.less(i, 4), outer_body,
                (ops.constant(0), ops.constant(0)),
            )
        assert _run(g, total) == 12

    def test_while_with_cond_inside(self):
        g = fw.Graph()
        with g.as_default():
            def body(i, t):
                add = fw.cond(ops.equal(ops.mod(i, 2), 0),
                              lambda: ops.constant(10),
                              lambda: ops.constant(1))
                return ops.add(i, 1), ops.add(t, add)

            _, t = fw.while_loop(lambda i, t: ops.less(i, 4), body,
                                 (ops.constant(0), ops.constant(0)))
        assert _run(g, t) == 22  # 10 + 1 + 10 + 1

    def test_eager_while_runs_directly(self):
        i, = ops.while_loop(lambda i: i < 3, lambda i: (ops.add(i, 1),),
                            (ops.constant(0),))
        assert int(i) == 3

    def test_matrix_loop_state(self):
        g = fw.Graph()
        with g.as_default():
            m0 = ops.constant(np.eye(2, dtype=np.float32))
            a = ops.constant(np.array([[1.0, 1.0], [0.0, 1.0]], np.float32))
            _, m = fw.while_loop(
                lambda i, m: ops.less(i, 3),
                lambda i, m: (ops.add(i, 1), ops.matmul(m, a)),
                (ops.constant(0), m0),
            )
        out = _run(g, m)
        assert np.allclose(out, np.linalg.matrix_power(
            np.array([[1, 1], [0, 1]]), 3))


class TestTensorArray:
    def test_write_read_eager(self):
        ta = TensorArray(fw.float32, size=0)
        ta = ta.write(0, ops.constant([1.0]))
        ta = ta.write(1, ops.constant([2.0]))
        assert float(ta.read(0)[0]) == 1.0
        assert int(ta.size()) == 2

    def test_stack_eager(self):
        ta = TensorArray(fw.float32, size=0)
        for i in range(3):
            ta = ta.write(i, ops.constant([float(i)]))
        assert ta.stack().numpy().tolist() == [[0.0], [1.0], [2.0]]

    def test_value_semantics(self):
        ta = TensorArray(fw.float32, size=0)
        ta2 = ta.write(0, ops.constant(1.0))
        assert int(ta.size()) == 0
        assert int(ta2.size()) == 1

    def test_read_unwritten_raises(self):
        ta = TensorArray(fw.float32, size=0)
        with pytest.raises(fw.InvalidArgumentError):
            ta.read(0)

    def test_unstack(self):
        ta = TensorArray.unstack(ops.constant([[1.0], [2.0]]))
        assert int(ta.size()) == 2
        assert float(ta.read(1)[0]) == 2.0

    def test_as_while_loop_state(self):
        g = fw.Graph()
        with g.as_default():
            ta = TensorArray(fw.float32, size=0)

            def body(i, ta):
                return ops.add(i, 1), ta.write(i, ops.cast(i, "float32"))

            _, ta_final = fw.while_loop(
                lambda i, ta: ops.less(i, 4), body, (ops.constant(0), ta)
            )
            stacked = ta_final.stack()
        assert _run(g, stacked).tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_through_cond(self):
        g = fw.Graph()
        with g.as_default():
            ta = TensorArray(fw.float32, size=0).write(0, ops.constant(1.0))
            ta_out = fw.cond(
                ops.constant(True),
                lambda: ta.write(1, ops.constant(2.0)),
                lambda: ta,
            )
            out = ta_out.stack()
        assert _run(g, out).tolist() == [1.0, 2.0]


class TestVariables:
    def test_eager_lifecycle(self):
        v = fw.Variable(np.array([1.0], np.float32))
        v.assign([5.0])
        assert v.numpy().tolist() == [5.0]
        v.assign_add([1.0])
        assert v.numpy().tolist() == [6.0]
        v.assign_sub([2.0])
        assert v.numpy().tolist() == [4.0]

    def test_graph_requires_init(self):
        g = fw.Graph()
        with g.as_default():
            v = fw.Variable(np.zeros((2,), np.float32), name="v_init")
            read = v.value()
        with pytest.raises(fw.UninitializedVariableError):
            _run(g, read)

    def test_graph_init_and_update(self):
        g = fw.Graph()
        with g.as_default():
            v = fw.Variable(np.array([1.0, 2.0], np.float32), name="v_upd")
            init = fw.global_variables_initializer()
            upd = v.assign_add([10.0, 10.0])
            read = v.value()
        sess = fw.Session(g)
        sess.run(init)
        assert sess.run(read).tolist() == [1.0, 2.0]
        sess.run(upd)
        assert sess.run(read).tolist() == [11.0, 12.0]

    def test_read_cached_per_graph(self):
        g = fw.Graph()
        with g.as_default():
            v = fw.Variable(np.zeros((1,), np.float32), name="v_cache")
            r1 = v.value()
            r2 = v.value()
        assert r1 is r2

    def test_variable_in_expressions(self):
        v = fw.Variable(np.array([2.0], np.float32))
        out = ops.add(v, 3.0)
        assert out.numpy().tolist() == [5.0]
        assert (v * 2.0).numpy().tolist() == [4.0]

    def test_reinitialize(self):
        v = fw.Variable(np.array([7.0], np.float32))
        v.assign([0.0])
        v.initialize()
        assert v.numpy().tolist() == [7.0]
